"""Quickstart: train a PCSS model on synthetic data and attack it.

This walks through the full pipeline of the paper in one script:

1. generate a synthetic S3DIS-like indoor dataset;
2. train a ResGCN segmentation model;
3. run the norm-unbounded, colour-based performance-degradation attack;
4. report accuracy / aIoU before and after, plus the perturbation size.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AttackConfig, run_attack
from repro.datasets import generate_room_scene, generate_s3dis_dataset, s3dis_train_test_split
from repro.models import TrainingConfig, build_model, evaluate_model, train_model
from repro.visualization import render_ascii


def main() -> None:
    # 1. Data: synthetic indoor rooms with the 13 S3DIS classes.
    dataset = generate_s3dis_dataset(scenes_per_area=2, num_points=320, seed=0)
    train_scenes, test_scenes = s3dis_train_test_split(dataset)
    print(f"dataset: {len(dataset)} scenes, {dataset.num_classes} classes")

    # 2. Victim model: a ResGCN-style graph network.
    model = build_model("resgcn", num_classes=dataset.num_classes, hidden=24)
    print("training", model.describe())
    train_model(model, train_scenes.scenes,
                TrainingConfig(epochs=20, learning_rate=8e-3, log_every=5))
    clean = evaluate_model(model, test_scenes.scenes)
    print(f"clean accuracy {clean['accuracy']:.1%}, aIoU {clean['aiou']:.1%}")

    # 3. Attack: norm-unbounded (C&W-style) perturbation of the colour field.
    scene = generate_room_scene(num_points=320, room_type="office",
                                rng=np.random.default_rng(99), name="attack_target")
    config = AttackConfig.fast(objective="degradation", method="unbounded",
                               field="color")
    result = run_attack(model, scene, config)

    # 4. Report.
    print("\n--- attack result -------------------------------------------")
    print(f"scene: {result.scene_name}")
    print(f"accuracy: {result.outcome.clean_accuracy:.1%} -> {result.outcome.accuracy:.1%}")
    print(f"aIoU:     {result.outcome.clean_aiou:.1%} -> {result.outcome.aiou:.1%}")
    print(f"L2 perturbation (Eq. 6): {result.l2:.2f}   "
          f"L0: {result.l0:.0f}   L-inf: {result.linf:.3f}")
    print(f"iterations: {result.iterations}, converged: {result.converged}")

    print("\nsegmentation before the attack (top-down, one glyph per class):")
    print(render_ascii(result.original_coords, result.clean_prediction,
                       width=64, height=20))
    print("\nsegmentation after the attack:")
    print(render_ascii(result.adversarial_coords, result.adversarial_prediction,
                       width=64, height=20))


if __name__ == "__main__":
    main()
