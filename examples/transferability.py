"""Transferability: replay adversarial samples against a different model.

Reproduces the scenario of Table IX: adversarial clouds generated against one
model are fed to (a) the same architecture trained with different weights and
(b) a different model family, after remapping the input value ranges.

Run with::

    python examples/transferability.py
"""

from __future__ import annotations

from repro.core import AttackConfig, evaluate_transfer, run_attack
from repro.datasets import generate_room_scene, generate_s3dis_dataset, s3dis_train_test_split
from repro.models import TrainingConfig, build_model, train_model

import numpy as np


def train(name: str, scenes, seed: int):
    model = build_model(name, num_classes=13, hidden=24, seed=seed)
    train_model(model, scenes, TrainingConfig(epochs=20, learning_rate=8e-3, seed=seed))
    return model


def main() -> None:
    dataset = generate_s3dis_dataset(scenes_per_area=2, num_points=320, seed=0)
    train_scenes, _ = s3dis_train_test_split(dataset)

    print("training three victim models (this is the slow part)...")
    pointnet_pretrained = train("pointnet2", train_scenes.scenes, seed=0)
    pointnet_selftrained = train("pointnet2", train_scenes.scenes, seed=1)
    resgcn = train("resgcn", train_scenes.scenes, seed=0)

    rng = np.random.default_rng(42)
    scenes = [generate_room_scene(num_points=320, room_type="office", rng=rng,
                                  name=f"office_{i}") for i in range(3)]
    config = AttackConfig.fast(objective="degradation", method="unbounded",
                               field="color")

    pointnet_results = [run_attack(pointnet_pretrained, s, config) for s in scenes]
    resgcn_results = [run_attack(resgcn, s, config) for s in scenes]

    same = evaluate_transfer(pointnet_results, pointnet_pretrained, pointnet_selftrained)
    cross = evaluate_transfer(resgcn_results, resgcn, pointnet_pretrained)

    print("\nTable IX style summary (lower accuracy = attack transfers better)")
    print(f"{'PCSS model':35s} {'accuracy':>10s} {'aIoU':>8s}")
    print(f"{'PointNet++ (pre-trained, source)':35s} {same.source_accuracy:10.1%} {same.source_aiou:8.1%}")
    print(f"{'PointNet++ (self-trained, target)':35s} {same.accuracy:10.1%} {same.aiou:8.1%}")
    print(f"{'ResGCN (source)':35s} {cross.source_accuracy:10.1%} {cross.source_aiou:8.1%}")
    print(f"{'PointNet++ (cross-family target)':35s} {cross.accuracy:10.1%} {cross.aiou:8.1%}")
    print("\nAdversarial samples remain partially effective on both targets "
          "(Finding 8).")


if __name__ == "__main__":
    main()
