"""Object-hiding attack: make a whiteboard "disappear" into the wall.

Reproduces the scenario of the paper's Figures 1 and 4: an office scene is
segmented by PointNet++, then the colour of the ``board`` points is perturbed
with the norm-unbounded attack until the model labels them as ``wall``.
Writes a 4-panel PPM figure next to this script.

Run with::

    python examples/object_hiding_indoor.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.core import AttackConfig, run_attack
from repro.datasets import generate_room_scene, generate_s3dis_dataset, s3dis_train_test_split
from repro.datasets.s3dis import CLASS_INDEX
from repro.models import TrainingConfig, build_model, train_model
from repro.visualization import attack_figure


def main() -> None:
    dataset = generate_s3dis_dataset(scenes_per_area=2, num_points=320, seed=0)
    train_scenes, _ = s3dis_train_test_split(dataset)

    model = build_model("pointnet2", num_classes=13, hidden=24)
    print("training", model.describe())
    train_model(model, train_scenes.scenes,
                TrainingConfig(epochs=25, learning_rate=8e-3, log_every=5))

    office = generate_room_scene(num_points=320, room_type="office",
                                 rng=np.random.default_rng(33),
                                 name="Area_5/office_33")

    results = {}
    for source_name in ("board", "bookcase", "chair"):
        config = AttackConfig.fast(
            objective="hiding", method="unbounded", field="color",
            source_class=CLASS_INDEX[source_name],
            target_class=CLASS_INDEX["wall"],
        )
        result = run_attack(model, office, config)
        results[source_name] = result
        print(f"{source_name:9s} -> wall: PSR {result.outcome.psr:6.1%}   "
              f"OOB accuracy {result.outcome.oob_accuracy:6.1%}   "
              f"overall accuracy {result.outcome.accuracy:6.1%}   "
              f"L2 {result.l2:6.2f}")

    output = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "object_hiding_board.ppm")
    figure = attack_figure(results["board"], path=output)
    print(f"\nwrote 4-panel figure to {figure.image_path}")
    print("(panels: original scene / original segmentation / "
          "perturbed scene / perturbed segmentation)")


if __name__ == "__main__":
    main()
