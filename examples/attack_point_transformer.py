"""Extension example: attack a Point Cloud Transformer (PCT) victim.

Section VI of the paper conjectures that the colour-based attacks carry over
to any gradient-producing architecture, naming the Point Cloud Transformer as
the natural next target.  This example trains the PCT-style extension model
shipped with this repository and attacks it with all three methods.

Run with::

    python examples/attack_point_transformer.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AttackConfig, run_attack
from repro.datasets import generate_room_scene, generate_s3dis_dataset, s3dis_train_test_split
from repro.models import TrainingConfig, build_model, evaluate_model, train_model


def main() -> None:
    dataset = generate_s3dis_dataset(scenes_per_area=2, num_points=320, seed=0)
    train_scenes, test_scenes = s3dis_train_test_split(dataset)

    model = build_model("pct", num_classes=13, hidden=24)
    print("training", model.describe())
    train_model(model, train_scenes.scenes,
                TrainingConfig(epochs=25, learning_rate=8e-3, log_every=5))
    clean = evaluate_model(model, test_scenes.scenes)
    print(f"clean accuracy {clean['accuracy']:.1%}, aIoU {clean['aiou']:.1%}\n")

    scene = generate_room_scene(num_points=320, room_type="conference",
                                rng=np.random.default_rng(7), name="pct_target")

    unbounded = run_attack(model, scene, AttackConfig.fast(
        objective="degradation", method="unbounded", field="color"))
    bounded = run_attack(model, scene, AttackConfig.fast(
        objective="degradation", method="bounded", field="color"))
    noise = run_attack(model, scene, AttackConfig.fast(
        objective="degradation", method="noise", field="color"),
        target_l2=unbounded.l2)

    print(f"{'method':12s} {'L2':>8s} {'accuracy':>10s} {'aIoU':>8s}")
    for name, result in (("unbounded", unbounded), ("bounded", bounded),
                         ("noise", noise)):
        print(f"{name:12s} {result.l2:8.2f} {result.outcome.accuracy:10.1%} "
              f"{result.outcome.aiou:8.1%}")
    print(f"\nclean accuracy of the attacked scene: "
          f"{unbounded.outcome.clean_accuracy:.1%}")
    print("The transformer victim is as vulnerable as the three models "
          "evaluated in the paper (Section VI).")


if __name__ == "__main__":
    main()
