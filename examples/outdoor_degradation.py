"""Outdoor attack: degrade RandLA-Net on a Semantic3D-like street scene.

Reproduces the scenario of Table VI / Figure 5: RandLA-Net segments a large
outdoor scene; the norm-unbounded colour attack collapses its accuracy while
an L2-matched random-noise baseline barely moves it.

Run with::

    python examples/outdoor_degradation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AttackConfig, run_attack
from repro.datasets import (
    generate_outdoor_scene,
    generate_semantic3d_dataset,
    semantic3d_train_test_split,
)
from repro.models import TrainingConfig, build_model, evaluate_model, train_model


def main() -> None:
    dataset = generate_semantic3d_dataset(num_scenes=8, num_points=768, seed=0)
    train_scenes, test_scenes = semantic3d_train_test_split(dataset)

    model = build_model("randlanet", num_classes=8, hidden=24)
    print("training", model.describe())
    train_model(model, train_scenes.scenes,
                TrainingConfig(epochs=25, learning_rate=8e-3, log_every=5))
    clean = evaluate_model(model, test_scenes.scenes)
    print(f"clean accuracy {clean['accuracy']:.1%}, aIoU {clean['aiou']:.1%}\n")

    scene = generate_outdoor_scene(num_points=768, rng=np.random.default_rng(5),
                                   name="street_scan")

    unbounded = run_attack(
        model, scene,
        AttackConfig.fast(objective="degradation", method="unbounded",
                          field="color", target_accuracy=1.0 / 8.0))
    noise = run_attack(
        model, scene,
        AttackConfig.fast(objective="degradation", method="noise", field="color"),
        target_l2=unbounded.l2)

    print(f"{'method':12s} {'L2':>8s} {'accuracy':>10s} {'aIoU':>8s}")
    for name, result in (("unbounded", unbounded), ("random noise", noise)):
        print(f"{name:12s} {result.l2:8.2f} {result.outcome.accuracy:10.1%} "
              f"{result.outcome.aiou:8.1%}")
    print(f"\nclean accuracy of this scene: {unbounded.outcome.clean_accuracy:.1%}")
    print("The optimised attack reaches near-random predictions; matched random "
          "noise does not (Finding 6).")


if __name__ == "__main__":
    main()
