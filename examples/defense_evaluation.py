"""Defense evaluation: SRS and SOR against both attack families.

Reproduces the scenario of Table VIII: ResGCN is attacked with the
norm-bounded and norm-unbounded colour attacks, then the adversarial clouds
are filtered by Simple Random Sampling (SRS) and Statistical Outlier Removal
(SOR) before re-segmentation.  Neither defense restores clean accuracy
(Finding 7).

Run with::

    python examples/defense_evaluation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AttackConfig, run_attack
from repro.datasets import generate_room_scene, generate_s3dis_dataset, s3dis_train_test_split
from repro.defenses import SimpleRandomSampling, StatisticalOutlierRemoval, evaluate_with_defense
from repro.models import TrainingConfig, build_model, train_model


def main() -> None:
    dataset = generate_s3dis_dataset(scenes_per_area=2, num_points=320, seed=0)
    train_scenes, _ = s3dis_train_test_split(dataset)
    model = build_model("resgcn", num_classes=13, hidden=24)
    print("training", model.describe())
    train_model(model, train_scenes.scenes,
                TrainingConfig(epochs=20, learning_rate=8e-3, log_every=5))

    scene = generate_room_scene(num_points=320, room_type="conference",
                                rng=np.random.default_rng(17), name="conference_1")

    defenses = {
        "none": None,
        "SRS (drop 16 random points)": SimpleRandomSampling(num_removed=16, seed=0),
        "SOR (k=2, colour+coordinate)": StatisticalOutlierRemoval(k=2),
    }

    print(f"\n{'attack':12s} {'defense':30s} {'accuracy':>10s} {'aIoU':>8s} {'removed':>8s}")
    for method in ("bounded", "unbounded"):
        config = AttackConfig.fast(objective="degradation", method=method, field="color")
        result = run_attack(model, scene, config)
        for name, defense in defenses.items():
            evaluation = evaluate_with_defense(
                model, defense, result.adversarial_coords,
                result.adversarial_colors, result.labels)
            print(f"{method:12s} {name:30s} {evaluation.accuracy:10.1%} "
                  f"{evaluation.aiou:8.1%} {evaluation.points_removed:8d}")
        print(f"{'':12s} {'(clean accuracy)':30s} "
              f"{result.outcome.clean_accuracy:10.1%}")


if __name__ == "__main__":
    main()
