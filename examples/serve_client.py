"""Attack-as-a-service: submit jobs to a warm ``repro.serve`` daemon.

Embeds an :class:`~repro.serve.server.AttackServer` in a background thread
(the same machinery ``python -m repro.serve`` runs standalone), then acts
as a client: it submits the Table VI experiment **twice** and shows that
the second, identical submission never recomputes — the server collapses
it onto the already-stored result and answers in about a millisecond,
while the first submission paid for dataset build, model training and the
full attack grid.

Along the way it streams the first job's per-step progress events (the
same telemetry a ``--trace`` run writes to disk) and prints the server's
dedup counters.  See ``docs/SERVING.md`` for the protocol this rides on.

Run with::

    python examples/serve_client.py
"""

from __future__ import annotations

import time

from repro.experiments import ExperimentConfig
from repro.serve import AttackServer, Client, ServerThread

EXPERIMENT = "table6"


def main() -> None:
    # One server serves one configuration: the tiny CI-sized scale here,
    # so the example finishes in seconds.  A production daemon would run
    # `python -m repro.serve --jobs N --store PATH` out of process.
    config = ExperimentConfig.tiny()
    server = AttackServer(config, jobs=2)
    with ServerThread(server) as address:
        client = Client(address)
        host, port = address
        print(f"serving on {host}:{port} "
              f"(store: {server.store.root})\n")

        # -- First submission: pays for the real computation. ---------- #
        start = time.perf_counter()
        first = client.submit_experiment(EXPERIMENT)
        print(f"job {first['job_id'][:16]}… submitted "
              f"(state: {first['state']}, cached: {first['cached']})")

        steps = 0
        for event in client.watch(first["job_id"]):
            if event["type"] == "attack_step":
                steps += 1
            elif event["type"].startswith("job_"):
                print(f"  {event['type']}")
        result = client.result(first["job_id"])
        first_elapsed = time.perf_counter() - start
        print(f"first run: {first_elapsed:.2f}s, "
              f"{steps} streamed attack steps\n")

        # -- Second, identical submission: served from the store. ------ #
        start = time.perf_counter()
        second = client.submit_experiment(EXPERIMENT)
        repeat = client.result(second["job_id"])
        second_elapsed = time.perf_counter() - start
        assert second["job_id"] == first["job_id"], "same work, same key"
        assert repeat["result"] == result["result"], "identical payload"
        print(f"second run: {second_elapsed * 1e3:.1f}ms "
              f"(deduped: {second['deduped']}, "
              f"{first_elapsed / second_elapsed:.0f}x faster — "
              f"zero recomputation)\n")

        stats = client.stats()["jobs"]
        print(f"server counters: {stats['submitted']} submitted, "
              f"{stats['computed']} computed, "
              f"{stats['dedup_inflight'] + stats['dedup_store']} deduped")

        print("\n" + result["result"]["formatted"])


if __name__ == "__main__":
    main()
