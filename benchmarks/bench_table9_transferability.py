"""Benchmark: regenerate Table IX (attack transferability).

Paper claim reproduced (Finding 8): adversarial samples remain partially
effective when replayed against a re-trained copy of the same architecture
and against a different model family — the transferred accuracy stays well
below the victim's clean accuracy, though above the white-box attack result.
"""

from repro.experiments import run_table9

from conftest import run_once, save_table


def test_table9_transferability(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_table9(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    same = cells["same_family"]
    cross = cells["cross_family"]
    same_clean = cells["same_family_clean_accuracy"]
    cross_clean = cells["cross_family_clean_accuracy"]

    # White-box source attacks are highly effective.
    assert same.source_accuracy < 0.4
    assert cross.source_accuracy < 0.4

    # Finding 8: transferred samples keep the target models well below their
    # accuracy on the corresponding clean (range-remapped) clouds.
    assert same.accuracy < same_clean - 0.15
    assert cross.accuracy < cross_clean - 0.15

    # Transfer is weaker than the direct white-box attack (sanity direction).
    assert same.accuracy >= same.source_accuracy - 0.05
    assert cross.accuracy >= cross.source_accuracy - 0.05
