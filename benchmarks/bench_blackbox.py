"""Black-box engine benchmark: per-mode cost and batched amortisation.

Times each black-box engine (NES, SPSA, decision-based boundary walk) on a
fixed query budget, serially and with ``batch_scenes`` coalescing — the
population probes of B scenes share one stacked forward, so the per-op
dispatch overhead amortises exactly like the white-box batched engines of
PR 3.  Results are written in the pytest-benchmark schema; the committed
``BENCH_blackbox.json`` records the reference machine so future perf PRs
can cite the trajectory with ``benchmarks/compare.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_blackbox.py [--quick] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# Pin BLAS threads before numpy loads (mirrors repro.accel.threads).
_threads = str(max(int(os.environ.get("REPRO_BENCH_THREADS", "1")), 1))
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, _threads)

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.accel import pin_compute_threads  # noqa: E402
from repro.core import AttackConfig, run_attack_batch  # noqa: E402
from repro.datasets import generate_room_scene  # noqa: E402
from repro.models import build_model  # noqa: E402

MODES = ("nes", "spsa", "boundary")

# Criteria that keep each engine busy for its whole query budget (mirrors
# the engine-contract suite): an impossible accuracy target for the
# estimators, and an immediately satisfiable one for the boundary walk —
# with an unreachable target it would never find an adversarial start and
# would give up after `boundary_init_tries` queries, timing nothing.
EXHAUSTING_TARGET = {"nes": -1.0, "spsa": -1.0, "boundary": 0.99}


def build_inputs(num_points: int, num_scenes: int):
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    model.eval()
    rng = np.random.default_rng(7)
    scenes = [generate_room_scene(num_points=num_points, room_type="office",
                                  rng=rng, name=f"bench_{i}")
              for i in range(num_scenes)]
    return model, scenes


def bench_mode(model, scenes, mode: str, query_budget: int,
               batch_scenes: int) -> tuple:
    config = AttackConfig.fast(
        attack_mode=mode, method="bounded", field="color",
        query_budget=query_budget, samples_per_step=4, seed=0,
        target_accuracy=EXHAUSTING_TARGET[mode],
        batch_scenes=batch_scenes)
    start = time.perf_counter()
    results = run_attack_batch(model, scenes, config)
    return time.perf_counter() - start, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller budget/scenes (CI-sized)")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write results in the pytest-benchmark schema")
    args = parser.parse_args(argv)
    pin_compute_threads(int(os.environ.get("REPRO_BENCH_THREADS", "1")))

    num_points = 128 if args.quick else 256
    num_scenes = 2 if args.quick else 4
    query_budget = 60 if args.quick else 240
    model, scenes = build_inputs(num_points, num_scenes)

    benchmarks = []
    for mode in MODES:
        serial_s, serial = bench_mode(model, scenes, mode, query_budget, 1)
        batched_s, batched = bench_mode(model, scenes, mode, query_budget,
                                        num_scenes)
        for left, right in zip(serial, batched):
            if not np.array_equal(left.adversarial_colors,
                                  right.adversarial_colors):
                print(f"FAIL: {mode} batched run diverged from serial",
                      file=sys.stderr)
                return 1
        speedup = serial_s / batched_s if batched_s > 0 else float("inf")
        mean_l2 = float(np.mean([r.l2 for r in serial]))
        print(f"{mode:<9s} serial {serial_s:6.2f}s  "
              f"batched(B={num_scenes}) {batched_s:6.2f}s  "
              f"amortisation {speedup:4.2f}x  l2 {mean_l2:.3f}")
        benchmarks.append({
            "name": f"blackbox_{mode}[serial]",
            "stats": {"mean": serial_s},
            "extra_info": {"l2": mean_l2},
        })
        benchmarks.append({
            "name": f"blackbox_{mode}[batched]",
            "stats": {"mean": batched_s},
            "extra_info": {"l2": mean_l2, "speedup": str(round(speedup, 2))},
        })

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"benchmarks": benchmarks}, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
