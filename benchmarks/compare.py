"""Compare two pytest-benchmark JSON files and print per-table speedups.

Usage::

    python benchmarks/compare.py [BASELINE] [CANDIDATE]

defaulting to the committed ``BENCH_baseline.json`` (the pre-accel seed
implementation) and ``BENCH_accel.json`` (the same suite on the same machine
with the compute-policy layer).  Future perf PRs should regenerate the
candidate file and cite the trajectory here.
"""

from __future__ import annotations

import json
import math
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "BENCH_baseline.json")
DEFAULT_CANDIDATE = os.path.join(HERE, "BENCH_accel.json")


def load_means(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {bench["name"]: bench["stats"]["mean"]
            for bench in payload["benchmarks"]}


def main(argv: list) -> int:
    baseline_path = argv[1] if len(argv) > 1 else DEFAULT_BASELINE
    candidate_path = argv[2] if len(argv) > 2 else DEFAULT_CANDIDATE
    baseline = load_means(baseline_path)
    candidate = load_means(candidate_path)

    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 1

    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>9}  {'candidate':>9}  {'speedup':>8}")
    print("-" * (width + 32))
    ratios = []
    for name in shared:
        ratio = baseline[name] / candidate[name]
        ratios.append(ratio)
        print(f"{name:<{width}}  {baseline[name]:>8.2f}s  {candidate[name]:>8.2f}s  "
              f"{ratio:>7.2f}x")
    print("-" * (width + 32))
    total = sum(baseline[n] for n in shared) / sum(candidate[n] for n in shared)
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print(f"{'total wall-clock':<{width}}  {sum(baseline[n] for n in shared):>8.2f}s  "
          f"{sum(candidate[n] for n in shared):>8.2f}s  {total:>7.2f}x")
    print(f"{'geometric mean':<{width}}  {'':>9}  {'':>9}  {geomean:>7.2f}x")

    missing = sorted(set(baseline) ^ set(candidate))
    if missing:
        print(f"\n(not in both files: {', '.join(missing)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
