"""Compare two pytest-benchmark JSON files: speedup tables and drift gating.

Default mode prints per-benchmark speedups (the historical behaviour)::

    python benchmarks/compare.py [BASELINE] [CANDIDATE]

defaulting to the committed ``BENCH_baseline.json`` (the pre-accel seed
implementation) and ``BENCH_accel.json`` (the same suite on the same machine
with the compute-policy layer).  Future perf PRs should regenerate the
candidate file and cite the trajectory here.

``--check`` turns the comparison into a CI drift gate::

    python benchmarks/compare.py --check BASELINE CANDIDATE \
        --time-tolerance 3.0 --metric-rtol 0.05

Every benchmark present in both files must satisfy

* ``candidate mean <= baseline mean * time-tolerance`` — the factor is
  deliberately generous because the committed baseline and the CI runner
  are different machines; it still catches pathological slowdowns; and
* every numeric ``extra_info`` metric (perturbation distance, accuracy,
  ...) within ``|candidate - baseline| <= metric-atol + metric-rtol *
  |baseline|`` (the ``allclose`` convention, so zero-valued baselines like
  a fully-degraded accuracy stay gateable) — metrics are deterministic up
  to BLAS/platform rounding, so tight tolerances catch real drift.

Exit status is non-zero when any gate fails.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "BENCH_baseline.json")
DEFAULT_CANDIDATE = os.path.join(HERE, "BENCH_accel.json")


def load_benchmarks(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {bench["name"]: bench for bench in payload["benchmarks"]}


def print_speedups(baseline: dict, candidate: dict) -> int:
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 1

    base_means = {name: baseline[name]["stats"]["mean"] for name in shared}
    cand_means = {name: candidate[name]["stats"]["mean"] for name in shared}
    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>9}  {'candidate':>9}  {'speedup':>8}")
    print("-" * (width + 32))
    ratios = []
    for name in shared:
        ratio = base_means[name] / cand_means[name]
        ratios.append(ratio)
        print(f"{name:<{width}}  {base_means[name]:>8.2f}s  {cand_means[name]:>8.2f}s  "
              f"{ratio:>7.2f}x")
    print("-" * (width + 32))
    total = sum(base_means.values()) / sum(cand_means.values())
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print(f"{'total wall-clock':<{width}}  {sum(base_means.values()):>8.2f}s  "
          f"{sum(cand_means.values()):>8.2f}s  {total:>7.2f}x")
    print(f"{'geometric mean':<{width}}  {'':>9}  {'':>9}  {geomean:>7.2f}x")

    missing = sorted(set(baseline) ^ set(candidate))
    if missing:
        print(f"\n(not in both files: {', '.join(missing)})")
    return 0


def check_drift(baseline: dict, candidate: dict, time_tolerance: float,
                metric_rtol: float, metric_atol: float,
                overhead_limit: float = None) -> int:
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 1

    failures = []
    if overhead_limit is not None:
        # The telemetry overhead ratio is measured *within* the candidate
        # run (tracing on vs off, interleaved, min-based), so unlike the
        # cross-machine wall-clocks it supports a tight absolute gate.
        for name in sorted(candidate):
            ratio = candidate[name].get("extra_info", {}).get("overhead_ratio")
            if not isinstance(ratio, (int, float)):
                continue
            flag = "ok" if ratio <= overhead_limit else "OVERHEAD"
            if flag != "ok":
                failures.append(
                    f"{name}: telemetry overhead x{ratio:.3f} exceeds "
                    f"the x{overhead_limit:.2f} limit")
            print(f"{name}: telemetry overhead x{ratio:.3f} "
                  f"(limit x{overhead_limit:.2f}) [{flag}]")
    for name in shared:
        base = baseline[name]
        cand = candidate[name]
        base_mean = base["stats"]["mean"]
        cand_mean = cand["stats"]["mean"]
        status = "ok"
        if cand_mean > base_mean * time_tolerance:
            status = "SLOW"
            failures.append(
                f"{name}: wall-clock {cand_mean:.2f}s exceeds "
                f"{base_mean:.2f}s x {time_tolerance:.2f}")
        print(f"{name}: {base_mean:.2f}s -> {cand_mean:.2f}s "
              f"(limit {base_mean * time_tolerance:.2f}s) [{status}]")

        base_info = base.get("extra_info", {})
        cand_info = cand.get("extra_info", {})
        for key, base_value in sorted(base_info.items()):
            if not isinstance(base_value, (int, float)):
                continue
            cand_value = cand_info.get(key)
            if cand_value is None:
                failures.append(f"{name}: metric {key!r} missing from candidate")
                continue
            delta = abs(cand_value - base_value)
            limit = metric_atol + metric_rtol * abs(base_value)
            flag = "ok" if delta <= limit else "DRIFT"
            if flag != "ok":
                failures.append(
                    f"{name}: metric {key!r} drifted "
                    f"{base_value!r} -> {cand_value!r} "
                    f"(|delta| {delta:.4g} > {limit:.4g})")
            print(f"  {key}: {base_value!r} -> {cand_value!r} "
                  f"(|delta| {delta:.4g}, limit {limit:.4g}) [{flag}]")

    missing = sorted(set(baseline) ^ set(candidate))
    if missing:
        print(f"(not in both files: {', '.join(missing)})")
    if failures:
        print("\nDRIFT GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\ndrift gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE)
    parser.add_argument("candidate", nargs="?", default=DEFAULT_CANDIDATE)
    parser.add_argument("--check", action="store_true",
                        help="gate the candidate against the baseline with "
                             "tolerances instead of printing speedups")
    parser.add_argument("--time-tolerance", type=float, default=3.0,
                        metavar="FACTOR",
                        help="max allowed candidate/baseline wall-clock "
                             "ratio in --check mode (default 3.0)")
    parser.add_argument("--metric-rtol", type=float, default=0.05,
                        metavar="RTOL",
                        help="relative drift tolerance for extra_info "
                             "metrics in --check mode (default 0.05)")
    parser.add_argument("--metric-atol", type=float, default=0.02,
                        metavar="ATOL",
                        help="absolute drift tolerance for extra_info "
                             "metrics in --check mode (default 0.02)")
    parser.add_argument("--overhead-limit", type=float, default=None,
                        metavar="FACTOR",
                        help="in --check mode, max allowed telemetry "
                             "overhead_ratio reported by any candidate "
                             "benchmark (e.g. 1.03 = 3%% overhead)")
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    candidate = load_benchmarks(args.candidate)
    if args.check:
        return check_drift(baseline, candidate, args.time_tolerance,
                           args.metric_rtol, args.metric_atol,
                           overhead_limit=args.overhead_limit)
    return print_speedups(baseline, candidate)


if __name__ == "__main__":
    raise SystemExit(main())
