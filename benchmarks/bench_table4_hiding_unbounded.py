"""Benchmark: regenerate Table IV (object hiding, norm-unbounded).

Paper claims reproduced (Findings 4 and 5): the norm-unbounded attack reaches
high PSR for flat/simple source classes (window, door, bookcase, board) while
leaving the out-of-band points mostly intact, and complex objects (table,
chair) are harder to hide.
"""

import numpy as np

from repro.experiments import run_table4

from conftest import run_once, save_table

SIMPLE_CLASSES = ("window", "door", "bookcase", "board")
COMPLEX_CLASSES = ("table", "chair")


def test_table4_hiding_unbounded(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_table4(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    assert table.metadata["target_label"] == 2   # wall

    # The attack succeeds: averaged over models, simple classes reach a
    # usable PSR and the overall cloud accuracy stays high (the perturbation
    # is confined to the source object).
    simple_psr = np.mean([cells[key]["psr"] for key in cells
                          if key.split("/")[1] in SIMPLE_CLASSES])
    complex_psr = np.mean([cells[key]["psr"] for key in cells
                           if key.split("/")[1] in COMPLEX_CLASSES])
    assert simple_psr > 0.5

    # Finding 5: simple (flat) source classes are easier to hide than the
    # geometrically complex table/chair classes.
    assert simple_psr > complex_psr - 0.05

    # Object hiding keeps the out-of-band points largely intact.
    oob = np.mean([cells[key]["oob_accuracy"] for key in cells])
    overall_clean_like = np.mean([cells[key]["accuracy"] for key in cells])
    assert oob > 0.5
    assert overall_clean_like > 0.5
