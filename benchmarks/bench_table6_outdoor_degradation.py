"""Benchmark: regenerate Table VI (outdoor degradation, RandLA-Net).

Paper claims reproduced (Finding 6): the outdoor scenes are also vulnerable —
the norm-unbounded colour attack collapses RandLA-Net's accuracy on the
Semantic3D-like dataset, while L2-matched random noise does not.
"""

from repro.experiments import run_table6

from conftest import run_once, save_table


def test_table6_outdoor_degradation(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_table6(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    unbounded = cells["unbounded"]["summary"]
    noise = cells["noise"]["summary"]

    # RandLA-Net starts from high clean accuracy on the outdoor data.
    assert unbounded.clean_accuracy > 0.8

    # The optimised attack collapses accuracy; matched noise does not.
    assert unbounded.average.accuracy < 0.5 * unbounded.clean_accuracy
    assert unbounded.average.accuracy < noise.average.accuracy
    assert noise.average.accuracy > unbounded.average.accuracy + 0.1

    # Best case approaches total failure of the model, as in the paper.
    assert unbounded.best.accuracy < 0.35
