"""Benchmark: extension experiments (PCT victim, alternating-field schedule).

These test two claims from the paper's discussion:
* Section VI — gradient-based colour attacks carry over to transformer-style
  models (Point Cloud Transformer);
* Section IV-B — updating colour and coordinates in alternating iterations is
  no better (the paper found it worse) than updating them simultaneously.
"""

from repro.experiments import run_alternating_ablation, run_pct_extension

from conftest import run_once, save_table


def test_extension_pct(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_pct_extension(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    # The optimised attacks also break the transformer model, and do so far
    # more effectively than matched random noise.
    assert cells["unbounded"] < cells["noise"]
    assert cells["unbounded"] < 0.5
    assert cells["bounded"] < cells["noise"] + 0.05


def test_extension_alternating(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_alternating_ablation(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    # The paper reports the alternating schedule is worse; at this scale we
    # require it to be no better than the simultaneous schedule.
    assert cells["simultaneous"] <= cells["alternating"] + 0.05
