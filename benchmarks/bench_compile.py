"""Compiled-plan benchmark: eager vs graph-capture replay vs torch backend.

One fused white-box cell — the norm-bounded colour attack's step
computation (PointNet++ forward, adversarial loss, backward) on a 96-point
synthetic office scene, the shape the fusion and constant-folding passes
were tuned on — measured two ways:

* **step loop** — the per-step computation in isolation: an eager step
  rebuilds the autograd tape through closures; a compiled step replays the
  fused, arena-allocated plan.  This isolates what the compile layer
  changes and carries the gated >= 2x floor.
* **end to end** — full ``run_attack`` wall-clock with ``graph_capture``
  on vs off, informational: per-step work outside the tensor graph (sign
  step, projection, history) and per-run fixed costs dilute the ratio.

With ``tensor_backend="torch"`` the same cell also runs on the optional
torch backend (reported only when torch is installed; absent torch is not
a failure).

Two exact (0/1) metrics are drift-gated via ``compare.py --check`` against
the committed ``BENCH_compile_baseline.json``:

* ``bitwise_identical`` — the compiled step's (logits, loss, gradient)
  AND the compiled end-to-end run's payloads/history must be bit-for-bit
  equal to eager (the whole point of the design);
* ``speedup_ok`` — the compiled step loop must stay >= 2x faster than the
  eager one on this cell (the PR's acceptance floor; this cell measures
  ~2.3x on one pinned CI vCPU).

Raw speedups and wall-clocks ride along as strings: absolute timings are
machine-dependent and must not hit the numeric drift gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_compile.py [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# Thread pinning must precede the first numpy import to reach the BLAS pool
# (mirrors repro.accel.threads.pin_blas_env).
_threads = str(max(int(os.environ.get("REPRO_SMOKE_THREADS", "1")), 1))
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, _threads)

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import dataclasses  # noqa: E402

import numpy as np  # noqa: E402

from repro.accel import (attack_compute, last_attack_plan_stats,  # noqa: E402
                         pin_compute_threads)
from repro.core import AttackConfig, run_attack  # noqa: E402
from repro.core.objectives import adversarial_loss  # noqa: E402
from repro.datasets import generate_room_scene  # noqa: E402
from repro.models import build_model  # noqa: E402
from repro.nn import Tensor  # noqa: E402
from repro.nn.backends import has_torch  # noqa: E402
from repro.nn.compile import PlanCache, use_plan_cache  # noqa: E402

#: The gated floor for the compiled-vs-eager step-loop speedup.
SPEEDUP_FLOOR = 2.0

#: Timed steps per trial in the step-loop measurement.
STEP_LOOP_STEPS = 50

#: Best-of trials per path; min-of-K discards scheduler noise, which only
#: ever inflates wall-clock.
STEP_LOOP_TRIALS = 7

#: Steps in the end-to-end runs (informational timing + bitwise gate).
E2E_STEPS = 30


def _cell_inputs():
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    model.eval()
    scene = generate_room_scene(num_points=96, room_type="office",
                                rng=np.random.default_rng(7), name="compile")
    return model, scene


def run_step_loop_bench(steps: int = STEP_LOOP_STEPS,
                        trials: int = STEP_LOOP_TRIALS) -> dict:
    """Time the bounded engine's step computation: eager tape vs replay.

    Every step feeds a fresh perturbed colour tensor, runs the model
    forward, the adversarial loss and the backward pass, and reads the
    input gradient — exactly what ``NormBoundedAttack`` does between its
    sign steps.  The replayed variant is checked bit-for-bit against the
    eager one before any timing is trusted.
    """
    model, scene = _cell_inputs()
    config = AttackConfig.fast(method="bounded", field="color", seed=0)
    coords = np.asarray(scene.coords, dtype=np.float64)
    colors = np.asarray(scene.colors, dtype=np.float64)
    labels = np.asarray(scene.labels, dtype=np.int64)[None]
    mask = np.ones((1, coords.shape[0]), dtype=bool)
    rng = np.random.default_rng(0)
    deltas = [rng.uniform(-0.03, 0.03, size=colors.shape)
              for _ in range(steps)]

    def eager_step(delta):
        colors_t = Tensor((colors + delta)[None], requires_grad=True)
        logits = model(Tensor(coords[None]), colors_t)
        loss = adversarial_loss(config.objective, logits, labels, None, mask)
        loss.backward()
        return logits.data, np.asarray(loss.data), colors_t.grad

    with attack_compute(model, config) as cache:
        plans = PlanCache()
        with use_plan_cache(plans):
            program = plans.program(
                ("bench",), lambda: {"colors": Tensor(colors[None].copy(),
                                                      requires_grad=True)})

            def compiled_step(delta):
                program.feed(colors=(colors + delta)[None])
                replayed = program.replay()
                if replayed is None:
                    colors_t = program.tensor("colors")
                    colors_t.grad = None
                    with program.capture():
                        logits = model(Tensor(coords[None]), colors_t)
                        loss = adversarial_loss(config.objective, logits,
                                                labels, None, mask)
                    program.finalize({"logits": logits, "loss": loss},
                                     root=loss)
                    loss.backward()
                    return logits.data, np.asarray(loss.data), colors_t.grad
                return (replayed["logits"], np.asarray(replayed["loss"]),
                        program.tensor("colors").grad)

            # Correctness first: replay must be bit-identical to eager.
            compiled_step(deltas[0])                   # capture step
            identical = True
            for delta in deltas[:5]:
                cache.advance()
                eager_out = eager_step(delta)
                compiled_out = compiled_step(delta)
                identical = identical and all(
                    np.array_equal(a, b)
                    for a, b in zip(eager_out, compiled_out))

            # Interleave eager/compiled trials so slow machine phases
            # (thermal throttle, noisy neighbours) hit both paths alike.
            eager_s = compiled_s = float("inf")
            for _ in range(trials):
                start = time.perf_counter()
                for delta in deltas:
                    cache.advance()
                    eager_step(delta)
                eager_s = min(eager_s, time.perf_counter() - start)

                start = time.perf_counter()
                for delta in deltas:
                    cache.advance()
                    compiled_step(delta)
                compiled_s = min(compiled_s, time.perf_counter() - start)

    return {"eager_s": eager_s, "compiled_s": compiled_s,
            "speedup": eager_s / compiled_s, "bitwise_identical": identical,
            "plan": program.plan.describe() if program.plan else None}


def _timed_attack(model, scene, config, repeats: int):
    result = run_attack(model, scene, config)          # warm-up, untimed
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_attack(model, scene, config)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_e2e_bench(repeats: int = 3) -> dict:
    """Full ``run_attack`` with capture on/off: bitwise gate + wall-clocks."""
    model, scene = _cell_inputs()
    # target_accuracy=-1.0 is unreachable, so every run spends all steps
    # and the timed variants do identical amounts of work.
    config = AttackConfig.fast(method="bounded", field="color",
                               bounded_steps=E2E_STEPS, seed=0,
                               target_accuracy=-1.0)
    eager_s, eager = _timed_attack(
        model, scene, dataclasses.replace(config, graph_capture=False),
        repeats)
    compiled_s, compiled = _timed_attack(model, scene, config, repeats)
    plans = last_attack_plan_stats()
    identical = (np.array_equal(eager.adversarial_colors,
                                compiled.adversarial_colors)
                 and np.array_equal(eager.adversarial_coords,
                                    compiled.adversarial_coords)
                 and eager.history == compiled.history)
    summary = {"eager_s": eager_s, "compiled_s": compiled_s,
               "speedup": eager_s / compiled_s,
               "bitwise_identical": identical, "plan_stats": plans,
               "torch": None}
    if has_torch():
        torch_s, torched = _timed_attack(
            model, scene, dataclasses.replace(config,
                                              tensor_backend="torch"),
            repeats)
        summary["torch"] = {
            "torch_s": torch_s,
            "speedup_vs_eager": eager_s / torch_s,
            # Same tolerance band as the engine contract's fast policy.
            "allclose": bool(np.allclose(torched.adversarial_colors,
                                         eager.adversarial_colors,
                                         rtol=1e-4, atol=1e-5)),
        }
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write metrics in the pytest-benchmark schema "
                             "for compare.py")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats for the end-to-end runs "
                             "(best-of; default 3)")
    args = parser.parse_args(argv)
    pin_compute_threads(int(os.environ.get("REPRO_SMOKE_THREADS", "1")))

    step = run_step_loop_bench()
    e2e = run_e2e_bench(repeats=max(args.repeats, 1))
    identical = step["bitwise_identical"] and e2e["bitwise_identical"]
    speedup_ok = step["speedup"] >= SPEEDUP_FLOOR

    print(f"step loop ({STEP_LOOP_STEPS} steps): eager {step['eager_s']:.3f}s, "
          f"compiled {step['compiled_s']:.3f}s -> x{step['speedup']:.2f} "
          f"(floor x{SPEEDUP_FLOOR:.1f}: {'ok' if speedup_ok else 'FAIL'})")
    print(f"plan: {step['plan']}")
    print(f"end to end ({E2E_STEPS} steps): eager {e2e['eager_s']:.3f}s, "
          f"compiled {e2e['compiled_s']:.3f}s -> x{e2e['speedup']:.2f} "
          f"({e2e['plan_stats']})")
    print(f"bitwise identical: {identical}")
    if e2e["torch"] is None:
        print("torch backend: not installed (skipped)")
    else:
        print(f"torch:    {e2e['torch']['torch_s']:.3f}s "
              f"(x{e2e['torch']['speedup_vs_eager']:.2f} vs eager, "
              f"allclose: {e2e['torch']['allclose']})")

    if args.json:
        torch_note = ("unavailable" if e2e["torch"] is None
                      else f"x{e2e['torch']['speedup_vs_eager']:.2f} "
                           f"allclose={e2e['torch']['allclose']}")
        payload = {
            "benchmarks": [{
                "name": "bench_compile[bounded-96]",
                "stats": {"mean": step["compiled_s"]},
                # The two 0/1 verdicts are the gated metrics: exact values
                # a drift gate can hold at zero tolerance.  Wall-clocks and
                # raw ratios are strings — informational, machine-bound.
                "extra_info": {
                    "bitwise_identical": 1.0 if identical else 0.0,
                    "speedup_ok": 1.0 if speedup_ok else 0.0,
                    "step_speedup": f"x{step['speedup']:.2f}",
                    "e2e_speedup": f"x{e2e['speedup']:.2f}",
                    "eager_s": f"{step['eager_s']:.3f}",
                    "compiled_s": f"{step['compiled_s']:.3f}",
                    "replays": str(e2e["plan_stats"].get("replays", 0)),
                    "torch": torch_note,
                },
            }],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    return 0 if (identical and speedup_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
