"""Benchmark: regenerate Table II (attacked fields on ResGCN).

Paper claim reproduced (Finding 1): the colour field is more vulnerable than
the coordinates — colour attacks reach lower accuracy with a lower L0 cost.
"""

from repro.experiments import run_table2

from conftest import run_once, save_table


def test_table2_attacked_fields(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_table2(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    color = cells["color/unbounded"]
    coordinate = cells["coordinate/unbounded"]

    # Finding 1: colour-based perturbation is more effective than
    # coordinate-based perturbation (lower post-attack accuracy).
    assert color["mean_accuracy"] < coordinate["mean_accuracy"]

    # The attack substantially degrades ResGCN through the colour field.
    clean = color["summary"].clean_accuracy
    assert color["mean_accuracy"] < 0.6 * clean

    # Every field/method cell produced the three best/avg/worst rows.
    assert len(table.rows) == 3 * 2 * 3
