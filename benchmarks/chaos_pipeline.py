"""CI chaos smoke: a tiny pipeline run under injected faults, drift-gated.

Runs the tiny Table VI experiment three times through the scheduler:

1. a **clean** serial run into a pristine result store (the reference);
2. a **chaos** run on a 2-worker pool under a deterministic fault plan —
   one worker crash (``os._exit`` mid-task, breaking the pool), one
   transient failure, and one corrupted store payload — exercising retry
   classification, pool rebuild and the ``corrupt`` write path end to end;
3. a **heal** run resuming from the chaos store, which must quarantine the
   corrupted entry, recompute it, and serve everything else from cache.

The invariants gated against the committed ``BENCH_chaos_baseline.json``
via ``compare.py --check``:

* the chaos run completes with **zero failed tasks** and no degradation;
* exactly one entry is quarantined (and recomputed) by the heal run;
* after healing, every cached payload is **bit-for-bit identical** to the
  clean run's — fault tolerance must not perturb results;
* the chaos run's wall-clock stays within a generous cross-machine factor.

Retry and rebuild counts are reported as strings (informational): how many
innocent in-flight tasks a pool break sweeps up depends on scheduling
timing, so they must not hit the numeric drift gate.

Usage::

    PYTHONPATH=src python benchmarks/chaos_pipeline.py [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from contextlib import nullcontext

# Thread pinning must precede the first numpy import (see smoke_attack_cell).
_threads = str(max(int(os.environ.get("REPRO_SMOKE_THREADS", "1")), 1))
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, _threads)

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.accel import pin_compute_threads  # noqa: E402
from repro.experiments import ExperimentConfig  # noqa: E402
from repro.experiments.table67 import plan_table6  # noqa: E402
from repro.pipeline import (FaultPlan, ResultStore, RetryPolicy,  # noqa: E402
                            run_graph)

#: One worker crash, one transient failure, one corrupted payload.
DEFAULT_PLAN = "table6/unbounded=crash:1,table6/noise=fail:1," \
               "table6/noise=corrupt:1"


def _payload_bytes(store: ResultStore) -> dict:
    blobs = {}
    for key in store.keys():
        with open(store.payload_path(key), "rb") as handle:
            blobs[key] = handle.read()
    return blobs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write wall-clock + invariants in the "
                             "pytest-benchmark schema for compare.py")
    parser.add_argument("--fault-plan", default=DEFAULT_PLAN, metavar="PLAN",
                        help="fault plan of the chaos run "
                             "(default: %(default)r)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker pool size of the chaos run")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="JSONL telemetry trace of the chaos run")
    args = parser.parse_args(argv)
    pin_compute_threads(int(os.environ.get("REPRO_SMOKE_THREADS", "1")))
    budget = float(os.environ.get("REPRO_CHAOS_BUDGET", "300"))

    with tempfile.TemporaryDirectory() as tmp:
        config = ExperimentConfig.tiny(cache_dir=os.path.join(tmp, "cache"))
        faults = FaultPlan.parse(args.fault_plan)
        retry = RetryPolicy(max_attempts=3, backoff_base=0.05)

        clean_store = ResultStore(os.path.join(tmp, "clean"))
        clean = run_graph(plan_table6(config), config, store=clean_store)
        print(f"clean run: {clean.report.summary()}")

        chaos_store = ResultStore(os.path.join(tmp, "chaos"))
        tracer_cm = nullcontext()
        if args.trace:
            from repro.telemetry import build_manifest, trace_to
            tracer_cm = trace_to(args.trace, manifest=build_manifest(
                extra={"chaos": True, "fault_plan": faults.text()}))
        start = time.perf_counter()
        with tracer_cm:
            chaos = run_graph(plan_table6(config), config, jobs=args.jobs,
                              store=chaos_store, retry=retry, faults=faults)
        elapsed = time.perf_counter() - start
        print(f"chaos run: {chaos.report.summary()}")

        heal = run_graph(plan_table6(config), config, store=chaos_store)
        print(f"heal run:  {heal.report.summary()}")
        quarantined = heal.report.store_stats["quarantined"]

        failed = chaos.report.count("failed") + heal.report.count("failed")
        clean_blobs = _payload_bytes(clean_store)
        healed_blobs = _payload_bytes(chaos_store)
        payload_match = float(clean_blobs == healed_blobs)
        tables_match = (chaos.result.formatted() == clean.result.formatted()
                        and heal.result.formatted() == clean.result.formatted())

        print(f"chaos pipeline: {elapsed:.2f}s (budget {budget:.0f}s), "
              f"{failed} failed, {chaos.report.retries} retries, "
              f"{chaos.report.pool_rebuilds} pool rebuilds, "
              f"{quarantined} quarantined, payloads "
              f"{'identical' if payload_match else 'DIVERGED'}")

        if args.json:
            mode = os.environ.get("REPRO_ACCEL", "").strip().lower() \
                or "default"
            payload = {
                "benchmarks": [{
                    "name": f"chaos_pipeline[{mode}]",
                    "stats": {"mean": elapsed},
                    # Gated invariants are numeric and exactly reproducible:
                    # zero failures, no degradation, one quarantined entry,
                    # bitwise payload identity.  Retry/rebuild counts are
                    # strings — a pool break sweeps up however many innocent
                    # tasks were in flight, which is timing-dependent.
                    "extra_info": {
                        "failed": float(failed),
                        "degraded": float(chaos.report.degraded),
                        "quarantined": float(quarantined),
                        "payload_match": payload_match,
                        "tables_match": float(tables_match),
                        "retries": str(chaos.report.retries),
                        "pool_rebuilds": str(chaos.report.pool_rebuilds),
                        "timeouts": str(chaos.report.timeouts),
                    },
                }],
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.json}")

    if failed:
        print("FAIL: tasks failed under the fault plan", file=sys.stderr)
        return 1
    if chaos.report.pool_rebuilds < 1:
        print("FAIL: the crash fault never broke the pool", file=sys.stderr)
        return 1
    if chaos.report.retries < 1:
        print("FAIL: the transient fault never triggered a retry",
              file=sys.stderr)
        return 1
    if quarantined != 1:
        print(f"FAIL: expected exactly 1 quarantined entry, "
              f"saw {quarantined}", file=sys.stderr)
        return 1
    if not payload_match or not tables_match:
        print("FAIL: faulted payloads diverged from the clean run",
              file=sys.stderr)
        return 1
    if elapsed > budget:
        print(f"FAIL: chaos run exceeded the {budget:.0f}s budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
