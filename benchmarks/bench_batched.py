"""Batched multi-scene attack throughput: the ``batch_scenes`` amortisation win.

Measures ``run_attack_batch`` throughput (scenes/sec) on an 8-scene smoke
attack cell at ``batch_scenes`` ∈ {1, 4, 8} for every victim architecture,
and verifies in-process that the batched results are bit-identical per
scene to the serial ones before timing anything.  Results are written to
``BENCH_batched.json`` in the pytest-benchmark schema (the committed copy
documents the win this optimisation landed with).

The amortisation is architecture-dependent: PCT's attention folds the batch
into large GEMMs (the per-op fixed costs vanish), while PointNet++'s
grouping tensors are memory-bandwidth-bound, so one batched pass costs
nearly as much as B serial ones.  The committed numbers quantify exactly
that spread.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched.py [--json OUT] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

# BLAS pinning must precede the first numpy import (importing from `repro`
# would pull numpy in first), so the env vars are written inline here.
_threads = str(max(int(os.environ.get("REPRO_SMOKE_THREADS", "1")), 1))
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, _threads)

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import dataclasses  # noqa: E402

import numpy as np  # noqa: E402

from repro.accel import pin_compute_threads  # noqa: E402
from repro.core import AttackConfig, run_attack_batch  # noqa: E402
from repro.datasets import generate_room_scene  # noqa: E402
from repro.models import build_model  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_OUTPUT = os.path.join(HERE, "BENCH_batched.json")

NUM_SCENES = 8
BATCH_SIZES = (1, 4, 8)
MODELS = ("pointnet2", "randlanet", "resgcn", "pct")


def build_cell(model_name: str):
    kwargs = {"num_blocks": 2} if model_name == "resgcn" else {}
    model = build_model(model_name, num_classes=13, hidden=16, seed=0, **kwargs)
    model.eval()
    rng = np.random.default_rng(7)
    scenes = [generate_room_scene(num_points=128, room_type="office", rng=rng,
                                  name=f"smoke_{i}")
              for i in range(NUM_SCENES)]
    config = AttackConfig.fast(method="unbounded", field="color",
                               unbounded_steps=20, smoothness_alpha=4, seed=0,
                               target_accuracy=0.0)
    return model, scenes, config


def check_equivalence(model, scenes, config) -> None:
    """Batched results must be bit-identical per scene before we time them."""
    serial = run_attack_batch(model, scenes, config)
    for batch_scenes in BATCH_SIZES[1:]:
        batched = run_attack_batch(
            model, scenes, dataclasses.replace(config,
                                               batch_scenes=batch_scenes))
        for left, right in zip(serial, batched):
            if not (np.array_equal(left.adversarial_colors, right.adversarial_colors)
                    and np.array_equal(left.adversarial_coords, right.adversarial_coords)
                    and left.history == right.history):
                raise AssertionError(
                    f"batched (B={batch_scenes}) diverged from serial on "
                    f"{left.scene_name}")


def time_cell(model, scenes, config, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock for one full cell."""
    run_attack_batch(model, scenes, config)        # warm caches / allocator
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_attack_batch(model, scenes, config)
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=DEFAULT_OUTPUT, metavar="OUT")
    parser.add_argument("--quick", action="store_true",
                        help="single timing repeat (CI); default is 3")
    args = parser.parse_args(argv)
    pin_compute_threads(int(os.environ.get("REPRO_SMOKE_THREADS", "1")))
    repeats = 1 if args.quick else 3

    benchmarks = []
    for model_name in MODELS:
        model, scenes, config = build_cell(model_name)
        check_equivalence(model, scenes, config)
        base_elapsed = None
        for batch_scenes in BATCH_SIZES:
            cell_config = dataclasses.replace(config,
                                              batch_scenes=batch_scenes)
            elapsed = time_cell(model, scenes, cell_config, repeats)
            if batch_scenes == 1:
                base_elapsed = elapsed
            throughput = NUM_SCENES / elapsed
            speedup = base_elapsed / elapsed
            benchmarks.append({
                "name": f"batched_attack_cell[{model_name},B{batch_scenes}]",
                "stats": {"mean": elapsed},
                "extra_info": {
                    "scenes_per_sec": round(throughput, 2),
                    "speedup_vs_B1": round(speedup, 2),
                    "num_scenes": NUM_SCENES,
                },
            })
            print(f"{model_name:10s} B={batch_scenes}: {elapsed:.3f}s "
                  f"{throughput:6.1f} scenes/s  {speedup:.2f}x vs B=1")

    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump({"benchmarks": benchmarks}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
