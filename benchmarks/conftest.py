"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
experiment context (datasets + trained victim models) is built once per
pytest session and the trained weights are cached on disk, so later benchmark
runs skip training entirely.

Every benchmark uses ``benchmark.pedantic(..., rounds=1, iterations=1)``:
the measured quantity is the one-shot wall-clock cost of regenerating the
experiment, not a micro-benchmark statistic.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig, ExperimentContext

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Default-scale experiment context shared by all benchmark modules."""
    cache_dir = os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "_cache"),
    )
    config = ExperimentConfig.default(cache_dir=cache_dir)
    return ExperimentContext(config)


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_table(table, results_dir: str) -> str:
    """Persist a formatted table next to the benchmark outputs."""
    path = os.path.join(results_dir, f"{table.name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table.formatted() + "\n")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
