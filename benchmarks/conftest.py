"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
experiment context (datasets + trained victim models) is built once per
pytest session and the trained weights are cached on disk, so later benchmark
runs skip training entirely.

Every ``run_table*`` call now submits a task graph through
:mod:`repro.pipeline`; by default the graph executes serially in-process,
matching the historical timings.  Two environment variables change that:

* ``REPRO_BENCH_JOBS=N`` — fan the attack cells of each table out onto N
  worker processes;
* ``REPRO_BENCH_RESUME=1`` — attach the content-addressed result store, so
  repeated benchmark runs resume from completed cells.  Note that this
  changes what is being measured (a fully-cached table regenerates in
  milliseconds), which is exactly the scaling behaviour the pipeline exists
  to provide — leave it unset for honest one-shot timings.

Orthogonally, ``REPRO_ACCEL=fast|exact`` forces the :mod:`repro.accel`
compute policy for every attack regardless of configuration: ``fast`` is
float32 with a 5-step neighbourhood refresh (the default for the fast-scale
attack profile these benchmarks use), ``exact`` is the bit-for-bit seed
arithmetic.  The committed ``BENCH_baseline.json`` / ``BENCH_accel.json``
pair records the pre-accel and post-accel one-shot timings of this suite at
identical configuration; ``python benchmarks/compare.py`` prints the
per-table speedups.

Every benchmark uses ``benchmark.pedantic(..., rounds=1, iterations=1)``:
the measured quantity is the one-shot wall-clock cost of regenerating the
experiment, not a micro-benchmark statistic.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig, ExperimentContext
from repro.pipeline import PipelineSession, ResultStore

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _pipeline_session(cache_dir: str):
    """Build the pipeline session requested via the environment (or none)."""
    jobs = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    resume = os.environ.get("REPRO_BENCH_RESUME", "") == "1"
    if jobs <= 1 and not resume:
        return None
    store = ResultStore(os.path.join(cache_dir, "results")) if resume else None
    return PipelineSession(jobs=jobs, store=store, quiet=True)


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Default-scale experiment context shared by all benchmark modules."""
    cache_dir = os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "_cache"),
    )
    config = ExperimentConfig.default(cache_dir=cache_dir)
    return ExperimentContext(config, pipeline=_pipeline_session(cache_dir))


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_table(table, results_dir: str) -> str:
    """Persist a formatted table next to the benchmark outputs."""
    path = os.path.join(results_dir, f"{table.name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table.formatted() + "\n")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
