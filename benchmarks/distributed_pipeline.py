"""CI distributed smoke: a fleet run with a mid-run worker kill, drift-gated.

Runs the tiny Table VI experiment twice through the scheduler:

1. a **local** 2-worker pool run into a pristine result store (the
   reference payloads);
2. a **fleet** run against two ``repro.serve`` worker daemons sharing one
   HTTP result store (``python -m repro.pipeline store-serve`` in-process),
   with one daemon killed (``drain=False``) as soon as the first task has
   been committed — exercising dispatch failover, straggler stealing and
   the scheduler's retry budget end to end.

The invariants gated against the committed
``BENCH_distributed_baseline.json`` via ``compare.py --check``:

* the fleet run completes with **zero failed tasks** despite the kill;
* every payload in the shared store is **bit-for-bit identical** to the
  local run's — distribution must not perturb results;
* the formatted tables of both runs match;
* the fleet run's wall-clock stays within a generous cross-machine factor.

Failover/steal/host-failure counters are reported as strings
(informational): how many dispatches the dying daemon absorbs depends on
scheduling timing, so they must not hit the numeric drift gate.

Usage::

    PYTHONPATH=src python benchmarks/distributed_pipeline.py [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

# Thread pinning must precede the first numpy import (see smoke_attack_cell).
_threads = str(max(int(os.environ.get("REPRO_SMOKE_THREADS", "1")), 1))
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, _threads)

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.accel import pin_compute_threads  # noqa: E402
from repro.experiments import ExperimentConfig  # noqa: E402
from repro.experiments.table67 import plan_table6  # noqa: E402
from repro.pipeline import (RemoteBackend, ResultStore,  # noqa: E402
                            RetryPolicy, StoreServerThread, open_store,
                            run_graph)
from repro.serve import AttackServer, ServerThread  # noqa: E402


def _payload_bytes(store: ResultStore) -> dict:
    blobs = {}
    for key in store.keys():
        with open(store.payload_path(key), "rb") as handle:
            blobs[key] = handle.read()
    return blobs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write wall-clock + invariants in the "
                             "pytest-benchmark schema for compare.py")
    parser.add_argument("--jobs", type=int, default=4,
                        help="concurrent dispatches of the fleet run")
    parser.add_argument("--daemon-jobs", type=int, default=2,
                        help="warm worker processes per daemon")
    args = parser.parse_args(argv)
    pin_compute_threads(int(os.environ.get("REPRO_SMOKE_THREADS", "1")))
    budget = float(os.environ.get("REPRO_DISTRIBUTED_BUDGET", "300"))

    with tempfile.TemporaryDirectory() as tmp:
        config = ExperimentConfig.tiny(cache_dir=os.path.join(tmp, "cache"))
        retry = RetryPolicy(max_attempts=4, backoff_base=0.05,
                            backoff_max=0.5)

        local_store = ResultStore(os.path.join(tmp, "local"))
        local = run_graph(plan_table6(config), config, jobs=2,
                          store=local_store)
        print(f"local run: {local.report.summary()}")

        shared_disk = ResultStore(os.path.join(tmp, "shared"))
        keys_at_kill = -1
        with StoreServerThread(shared_disk) as store_url:
            doomed = ServerThread(AttackServer(config, jobs=args.daemon_jobs,
                                               store=store_url))
            survivor = ServerThread(AttackServer(config,
                                                 jobs=args.daemon_jobs,
                                                 store=store_url))
            hosts = [f"{h}:{p}" for h, p in (doomed.start(),
                                             survivor.start())]
            backend = RemoteBackend(hosts, config, steal_after=2.0,
                                    request_timeout=120.0,
                                    down_cooldown=0.5)

            run_done = threading.Event()

            def _kill_after_first_task() -> None:
                # Kill the moment the doomed daemon has served one task:
                # deterministic (round-robin guarantees it serves one of
                # the first two dispatches) and guaranteed mid-run for
                # any graph deeper than two tasks.
                nonlocal keys_at_kill
                deadline = time.monotonic() + budget
                while time.monotonic() < deadline and not run_done.is_set():
                    if doomed.server.counters.get("tasks", 0) >= 1:
                        keys_at_kill = sum(1 for _ in shared_disk.keys())
                        break
                    time.sleep(0.01)
                doomed.stop(drain=False)

            killer = threading.Thread(target=_kill_after_first_task,
                                      daemon=True)
            killer.start()
            start = time.perf_counter()
            try:
                fleet = run_graph(plan_table6(config), config,
                                  jobs=args.jobs,
                                  store=open_store(store_url),
                                  backend=backend, retry=retry)
            finally:
                run_done.set()
                killer.join(timeout=budget)
                doomed.stop()
                survivor.stop()
            elapsed = time.perf_counter() - start
        print(f"fleet run: {fleet.report.summary()}")

        failed = fleet.report.count("failed")
        stats = fleet.report.backend_stats or {}
        local_blobs = _payload_bytes(local_store)
        shared_blobs = _payload_bytes(shared_disk)
        payload_match = float(local_blobs == shared_blobs
                              and len(local_blobs) > 0)
        tables_match = float(
            fleet.result.formatted() == local.result.formatted())
        hosts_ran = fleet.report.host_breakdown()

        print(f"distributed pipeline: {elapsed:.2f}s (budget {budget:.0f}s), "
              f"{failed} failed, killed worker after {keys_at_kill} "
              f"committed entries, hosts {hosts_ran}, "
              f"stats {stats}, payloads "
              f"{'identical' if payload_match else 'DIVERGED'}")

        if args.json:
            mode = os.environ.get("REPRO_ACCEL", "").strip().lower() \
                or "default"
            payload = {
                "benchmarks": [{
                    "name": f"distributed_pipeline[{mode}]",
                    "stats": {"mean": elapsed},
                    # Gated invariants are numeric and exactly
                    # reproducible: zero failures, bitwise payload
                    # identity, matching tables.  Dispatch counters are
                    # strings — how much work the dying daemon absorbs is
                    # timing-dependent.
                    "extra_info": {
                        "failed": float(failed),
                        "degraded": float(fleet.report.degraded),
                        "payload_match": payload_match,
                        "tables_match": tables_match,
                        "dispatches": str(stats.get("dispatches", 0)),
                        "failovers": str(stats.get("failovers", 0)),
                        "steals": str(stats.get("steals", 0)),
                        "host_failures": str(stats.get("host_failures", 0)),
                        "remote_hits": str(stats.get("remote_hits", 0)),
                        "keys_at_kill": str(keys_at_kill),
                        "hosts": str(len(hosts_ran)),
                    },
                }],
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.json}")

    if failed:
        print("FAIL: tasks failed despite failover and retries",
              file=sys.stderr)
        return 1
    if keys_at_kill < 0:
        print("FAIL: the worker kill never fired", file=sys.stderr)
        return 1
    if not stats.get("failovers") and not stats.get("steals"):
        print("FAIL: the kill was absorbed without any failover or steal "
              "(did the doomed daemon ever serve a dispatch?)",
              file=sys.stderr)
        return 1
    if not payload_match:
        print("FAIL: fleet payloads diverged from the local run",
              file=sys.stderr)
        return 1
    if not tables_match:
        print("FAIL: fleet table diverged from the local run",
              file=sys.stderr)
        return 1
    if elapsed > budget:
        print(f"FAIL: fleet run exceeded the {budget:.0f}s budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
