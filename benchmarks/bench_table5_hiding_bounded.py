"""Benchmark: regenerate Table V (object hiding, norm-bounded).

Paper claim reproduced (Finding 4): the norm-bounded attack achieves lower
PSR than the norm-unbounded attack of Table IV for the same source classes.
"""

import numpy as np

from repro.experiments import run_table4, run_table5

from conftest import run_once, save_table


def test_table5_hiding_bounded(benchmark, context, results_dir):
    table5 = run_once(benchmark, lambda: run_table5(context))
    save_table(table5, results_dir)
    print("\n" + table5.formatted())

    # Table IV shares the context cache, so regenerating it here is cheap and
    # lets us compare the two attack families directly.
    table4 = run_table4(context)

    psr5 = np.mean([cell["psr"] for cell in table5.metadata["cells"].values()])
    psr4 = np.mean([cell["psr"] for cell in table4.metadata["cells"].values()])

    # Finding 4: the norm-unbounded attack is the more effective hiding attack.
    assert psr4 >= psr5 - 0.05

    # The bounded attack still succeeds on some classes (non-trivial PSR).
    assert psr5 > 0.05

    # Structural completeness: one row per (model, source class).
    assert len(table5.rows) == len(table4.rows)
