"""CI serve smoke: warm-vs-cold request latency, drift-gated.

The number this benchmark exists to produce: how much faster is asking a
*warm* ``repro.serve`` daemon for a cell than paying a *cold* CLI
invocation for the same cell.  The daemon pays interpreter start-up,
dataset build, model training and neighbourhood-cache warm-up once; a
repeat request is a store lookup over a local socket.

Three measurements:

1. **dedup** — two identical experiment jobs submitted concurrently; the
   server must collapse them onto one computation (``computed == 1``,
   zero additional attack work — an ISSUE-8 acceptance criterion);
2. **warm** — repeat submissions of the now-cached job, timed end to end
   (connect → submit → result payload), averaged;
3. **cold** — one fresh-cache CLI run of the same experiment in a
   subprocess (``python -m repro.pipeline --experiment ... --scale
   tiny``), the price every request pays without the serving layer.

Gated against ``BENCH_serve_baseline.json`` via ``compare.py --check``:
the dedup invariant and the ≥ 5× speedup gate are exact numerics; raw
latencies ride along as strings (they are machine-dependent).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time

# Thread pinning must precede the first numpy import (see smoke_attack_cell).
_threads = str(max(int(os.environ.get("REPRO_SMOKE_THREADS", "1")), 1))
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, _threads)

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, "src")
sys.path.insert(0, SRC)

from repro.accel import pin_compute_threads  # noqa: E402
from repro.experiments import ExperimentConfig  # noqa: E402
from repro.pipeline.resilience import RetryPolicy  # noqa: E402
from repro.serve import AttackServer, Client, ServerThread  # noqa: E402

#: The experiment both paths compute (small enough for CI, real enough to
#: include dataset build + model training + a full attack grid).
EXPERIMENT = "table6"

#: Minimum warm-vs-cold speedup (the ISSUE-8 acceptance bar).
MIN_SPEEDUP = 5.0


def _concurrent_duplicate_submit(client: Client) -> "tuple[dict, dict]":
    """Submit the same experiment twice at the same instant."""
    acks: dict = {}
    barrier = threading.Barrier(2)

    def _submit(slot: str) -> None:
        barrier.wait()
        acks[slot] = client.submit_experiment(EXPERIMENT)

    threads = [threading.Thread(target=_submit, args=(slot,))
               for slot in ("a", "b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return acks["a"], acks["b"]


def _measure_warm(client: Client, job_id: str, repeats: int) -> list:
    latencies = []
    for _ in range(repeats):
        start = time.perf_counter()
        ack = client.submit_experiment(EXPERIMENT)
        response = client.result(ack["job_id"])
        latencies.append(time.perf_counter() - start)
        assert ack["job_id"] == job_id
        assert response["state"] == "done"
    return latencies


def _measure_cold(tmp: str) -> float:
    """One full CLI run of the experiment against an empty cache."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = os.path.join(tmp, "cold-cache")
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro.pipeline",
         "--experiment", EXPERIMENT, "--scale", "tiny", "--jobs", "1",
         "--store", os.path.join(tmp, "cold-results")],
        check=True, env=env, stdout=subprocess.DEVNULL)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write latencies + invariants in the "
                             "pytest-benchmark schema for compare.py")
    parser.add_argument("--repeats", type=int, default=20,
                        help="warm request repetitions (default %(default)s)")
    args = parser.parse_args(argv)
    pin_compute_threads(int(os.environ.get("REPRO_SMOKE_THREADS", "1")))

    with tempfile.TemporaryDirectory() as tmp:
        config = ExperimentConfig.tiny(cache_dir=os.path.join(tmp, "cache"))
        server = AttackServer(config, jobs=2,
                              store=os.path.join(tmp, "results"),
                              retry=RetryPolicy(max_attempts=2))
        with ServerThread(server) as address:
            client = Client(address)

            # 1. Concurrent identical submissions: one computation.
            first, second = _concurrent_duplicate_submit(client)
            assert first["job_id"] == second["job_id"]
            client.result(first["job_id"])
            stats = client.stats()["jobs"]
            computed = stats["computed"] + stats["dedup_store"]
            dedup_ok = float(stats["submitted"] == 2 and computed == 1)
            print(f"dedup: {stats['submitted']} submissions, "
                  f"{computed} computation(s), "
                  f"{stats['dedup_inflight']} in-flight dedup hit(s)")

            # 2. Warm repeat requests against the now-cached job.
            warm = _measure_warm(client, first["job_id"], args.repeats)
            warm_mean = statistics.fmean(warm)
            warm_min = min(warm)
            print(f"warm request: mean {warm_mean * 1e3:.2f} ms, "
                  f"min {warm_min * 1e3:.2f} ms over {args.repeats} repeats")

        # 3. Cold CLI invocation of the same experiment, empty cache.
        cold = _measure_cold(tmp)
        print(f"cold CLI run: {cold:.2f} s")

    speedup = cold / warm_mean
    speedup_ok = float(speedup >= MIN_SPEEDUP)
    print(f"speedup: {speedup:.0f}x warm-vs-cold "
          f"(gate: >= {MIN_SPEEDUP:.0f}x)")

    if args.json:
        payload = {
            "benchmarks": [{
                "name": "serve_warm_request",
                "stats": {"mean": warm_mean},
                # The gated numerics are exact invariants; raw latencies
                # and the speedup magnitude are machine-dependent, so they
                # ride along as strings (informational).
                "extra_info": {
                    "dedup_zero_recompute": dedup_ok,
                    "speedup_ok": speedup_ok,
                    "computed": float(computed),
                    "warm_ms": f"{warm_mean * 1e3:.2f}",
                    "warm_min_ms": f"{warm_min * 1e3:.2f}",
                    "cold_s": f"{cold:.2f}",
                    "speedup": f"{speedup:.0f}",
                },
            }],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not dedup_ok:
        print("FAIL: concurrent duplicate submission recomputed",
              file=sys.stderr)
        return 1
    if not speedup_ok:
        print(f"FAIL: warm speedup {speedup:.1f}x below the "
              f"{MIN_SPEEDUP:.0f}x bar", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
