"""Benchmark: attack overhead (Section V-C).

The paper reports ~0.3 s per norm-bounded step and ~0.2 s per norm-unbounded
step on a GPU workstation at 4096 points.  This benchmark measures the
per-step cost of this NumPy implementation at the scaled-down cloud size; the
claim reproduced is the *shape*: cost grows linearly with the number of
steps, and a single step stays in the sub-second regime.
"""

from repro.experiments import run_overhead

from conftest import run_once, save_table


def test_attack_overhead(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_overhead(context, steps=10))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    timings = table.metadata["timings"]
    assert set(timings) == {"bounded", "unbounded"}
    for method, per_step in timings.items():
        assert per_step > 0.0
        assert per_step < 5.0, f"{method} step unexpectedly slow: {per_step:.2f}s"

    rows = {row["method"]: row for row in table.rows}
    for method in ("bounded", "unbounded"):
        assert rows[method]["steps"] == 10
        assert rows[method]["total_seconds"] >= rows[method]["seconds_per_step"] * 9
