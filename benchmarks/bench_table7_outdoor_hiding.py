"""Benchmark: regenerate Table VII (outdoor object hiding, cars -> terrain).

Paper claim reproduced (Finding 6): cars can be hidden as terrain or
vegetation classes with high PSR while the rest of the scene stays intact.
"""

import numpy as np

from repro.experiments import run_table7
from repro.experiments.table67 import HIDING_TARGET_CLASSES

from conftest import run_once, save_table


def test_table7_outdoor_hiding(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_table7(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    assert set(cells) == set(HIDING_TARGET_CLASSES)
    assert table.metadata["source_label_paper"] == 8   # car

    # Hiding cars works for at least some target classes, with the
    # out-of-band scene left largely untouched.
    psr = np.array([cells[name]["psr"] for name in HIDING_TARGET_CLASSES])
    oob = np.array([cells[name]["oob_accuracy"] for name in HIDING_TARGET_CLASSES])
    assert psr.max() > 0.5
    assert psr.mean() > 0.25
    assert oob.mean() > 0.6
