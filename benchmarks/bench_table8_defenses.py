"""Benchmark: regenerate Table VIII (SRS / SOR defenses).

Paper claims reproduced (Finding 7): the anomaly-detection defenses recover a
little accuracy (SOR more than SRS against the norm-unbounded attack), but
neither restores the model to its clean accuracy.
"""

from repro.experiments import run_table8

from conftest import run_once, save_table


def test_table8_defenses(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_table8(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    clean_accuracy = table.metadata["clean_accuracy"]
    assert clean_accuracy > 0.7

    for method in ("bounded", "unbounded"):
        none = cells[f"{method}/none"]["accuracy"]
        srs = cells[f"{method}/srs"]["accuracy"]
        sor = cells[f"{method}/sor"]["accuracy"]

        # Defenses never hurt dramatically and usually help a little.
        assert srs >= none - 0.05
        assert sor >= none - 0.05

        # Finding 7: neither defense restores the original (clean) accuracy.
        assert srs < clean_accuracy - 0.1
        assert sor < clean_accuracy - 0.1

    # The defenses actually removed points (they are active, not no-ops).
    assert cells["unbounded/srs"]["points_removed"] > 0
    assert cells["unbounded/sor"]["points_removed"] > 0
