"""Benchmark: regenerate the paper's Figures 1, 3, 4 and 5.

Each figure is written as a 4-panel PPM image under ``benchmarks/results/``
(original scene, original segmentation, perturbed scene, perturbed
segmentation).  The assertions check the qualitative story the figures tell:
small perturbations cause large segmentation changes.
"""

import os

from repro.experiments import run_figures

from conftest import run_once, save_table


def test_figures(benchmark, context, results_dir):
    output_dir = os.path.join(results_dir, "figures")
    table = run_once(benchmark, lambda: run_figures(context, output_dir=output_dir))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    # Every figure panel was rendered to disk.
    for row in table.rows:
        assert row["image"] is not None
        assert os.path.exists(row["image"])
        assert os.path.getsize(row["image"]) > 100

    # Figure 3 / 5 rows: the degradation attack visibly changes segmentation.
    degradation_rows = [row for row in table.rows if row["figure"] in ("figure3", "figure5")]
    assert degradation_rows
    assert all(row["accuracy_after_pct"] < row["accuracy_before_pct"]
               for row in degradation_rows)

    # Figure 1/4 row: the hiding attack moved board points towards "wall".
    hiding_rows = [row for row in table.rows if row["figure"] == "figure1+4"]
    assert hiding_rows and hiding_rows[0]["psr_pct"] > 30.0
