"""CI smoke benchmark: three tiny attack cells, drift-gated against a baseline.

Runs a single norm-unbounded colour attack against a small untrained
PointNet++ on a 128-point synthetic scene — the smallest end-to-end pass
through the full hot path (autograd engine, neighbourhood cache, compute
policy, batched execution, evaluation) — plus one NES black-box cell, the
smallest pass through the query-budgeted gradient-free path
(repro.core.blackbox: stacked probe forwards, finite-difference estimation,
query accounting), plus one adaptive (defense-aware) cell, the smallest
pass through the EOT path (repro.core.eot: defense registry, in-graph
sample application, defended evaluation).  Two gates protect CI:

* a generous wall-clock budget (``REPRO_SMOKE_BUDGET`` seconds, default
  120) catches pathological regressions outright;
* with ``--json OUT``, the wall-clock and the cell's deterministic metrics
  (perturbation distance, accuracy, iterations) are written in the
  pytest-benchmark schema so ``benchmarks/compare.py --check`` can gate
  *drift* against the committed ``BENCH_smoke_baseline.json`` with explicit
  tolerances, instead of only a fixed budget.

BLAS and kd-tree threading are pinned (default 1 thread, override with
``REPRO_SMOKE_THREADS``) before NumPy loads, so timings on small CI runners
(2 vCPUs) are not oversubscription noise.

Usage::

    PYTHONPATH=src python benchmarks/smoke_attack_cell.py [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import nullcontext

# Thread pinning must precede the first numpy import to reach the BLAS pool,
# so the env vars are written inline here — importing anything from `repro`
# would itself pull numpy in first.  (Mirrors repro.accel.threads.pin_blas_env.)
_threads = str(max(int(os.environ.get("REPRO_SMOKE_THREADS", "1")), 1))
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, _threads)

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.accel import last_attack_cache_stats, pin_compute_threads  # noqa: E402
from repro.core import AttackConfig, run_attack  # noqa: E402
from repro.datasets import generate_room_scene  # noqa: E402
from repro.defenses import build_defense, evaluate_with_defense  # noqa: E402
from repro.models import build_model  # noqa: E402


def _smoke_inputs() -> tuple:
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    model.eval()
    scene = generate_room_scene(num_points=128, room_type="office",
                                rng=np.random.default_rng(7), name="smoke")
    return model, scene


def run_cell() -> tuple:
    """One smoke attack cell; returns (elapsed seconds, AttackResult)."""
    model, scene = _smoke_inputs()
    config = AttackConfig.fast(method="unbounded", field="color",
                               unbounded_steps=20, smoothness_alpha=4, seed=0,
                               target_accuracy=0.0)
    start = time.perf_counter()
    result = run_attack(model, scene, config)
    return time.perf_counter() - start, result


def run_blackbox_cell() -> tuple:
    """One NES black-box cell; returns (elapsed seconds, AttackResult).

    An impossible convergence target keeps the engine running to its query
    budget, so the gated metrics cover the full estimation loop.
    """
    model, scene = _smoke_inputs()
    config = AttackConfig.fast(attack_mode="nes", method="bounded",
                               field="color", query_budget=54,
                               samples_per_step=2, seed=0,
                               target_accuracy=-1.0)
    start = time.perf_counter()
    result = run_attack(model, scene, config)
    return time.perf_counter() - start, result


def run_adaptive_cell() -> tuple:
    """One adaptive (defense-aware) cell; returns (elapsed, result, defended).

    The smallest pass through the EOT path (repro.core.eot): a bounded
    colour attack folding two Gaussian-jitter samples into every step, then
    the defended evaluation of the adversarial cloud — covering the
    defense registry, the in-graph sample application and the
    empty-cloud-safe scoring in one cell.  ``defended`` is the defended
    accuracy, a drift-gated deterministic metric.
    """
    model, scene = _smoke_inputs()
    config = AttackConfig.fast(method="bounded", field="color",
                               bounded_steps=10, seed=0, target_accuracy=0.0,
                               adaptive=True, defense="jitter",
                               defense_kwargs={"sigma": 0.03,
                                               "color_sigma": 0.05},
                               eot_samples=2)
    start = time.perf_counter()
    result = run_attack(model, scene, config)
    defense = build_defense(config.defense, **config.defense_kwargs)
    evaluation = evaluate_with_defense(model, defense,
                                       result.adversarial_coords,
                                       result.adversarial_colors,
                                       result.labels)
    return time.perf_counter() - start, result, evaluation.accuracy


def run_telemetry_cell(repeats: int = None) -> tuple:
    """Telemetry overhead probe for one small bounded cell.

    Returns ``(untraced_s, traced_s, overhead_ratio, bitwise_identical)``.

    The gated ``overhead_ratio`` is *constructed*, not differenced:

        1 + events_per_run x per_event_cost / untraced_run_floor

    where the per-event cost comes from a tight ``Tracer.emit``
    microbenchmark (thousands of representative events to a real file) and
    the event count from an actual traced run.  Subtracting two
    nearly-equal wall-clocks would put the machine's scheduler jitter —
    routinely over 5% on small CI runners — straight into the gated value;
    the constructed ratio is deterministic to well under a percent while
    still catching every real regression a gate exists for (a slower emit
    path, an engine spamming events, an unguarded hot-loop computation
    would all inflate it).  ``traced_s`` stays a directly-measured traced
    wall-clock for human eyes.
    """
    import tempfile

    from repro.telemetry import Tracer, trace_to

    repeats = repeats or max(
        int(os.environ.get("REPRO_SMOKE_OVERHEAD_REPEATS", "5")), 2)
    model, scene = _smoke_inputs()
    config = AttackConfig.fast(method="bounded", field="color",
                               bounded_steps=20, seed=0, target_accuracy=0.0)
    plain = traced = None
    events = 0
    with tempfile.TemporaryDirectory() as tmp:
        run_attack(model, scene, config)     # warm-up: caches, BLAS init
        off, on = [], []
        for index in range(repeats):
            start = time.perf_counter()
            plain = run_attack(model, scene, config)
            off.append(time.perf_counter() - start)
            sink = os.path.join(tmp, f"trace_{index}.jsonl")
            start = time.perf_counter()
            with trace_to(sink):
                traced = run_attack(model, scene, config)
            on.append(time.perf_counter() - start)
            with open(sink, "r", encoding="utf-8") as handle:
                events = sum(1 for _ in handle)
        # Per-event sink cost: a representative attack_step event, emitted
        # enough times that the measurement is microseconds-stable.
        emit_tracer = Tracer(os.path.join(tmp, "emit_bench.jsonl"))
        emits = 2000
        start = time.perf_counter()
        for step in range(emits):
            emit_tracer.emit("attack_step", engine="bounded", scene="smoke",
                             step=step, loss=1.234567, gain=0.1,
                             pnorm=0.456789)
        per_event = (time.perf_counter() - start) / emits
        emit_tracer.close()
    identical = (np.array_equal(plain.adversarial_colors,
                                traced.adversarial_colors)
                 and np.array_equal(plain.adversarial_coords,
                                    traced.adversarial_coords)
                 and plain.history == traced.history)
    ratio = 1.0 + events * per_event / min(off)
    return min(off), min(on), ratio, identical


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write wall-clock + metrics in the "
                             "pytest-benchmark schema for compare.py")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL telemetry trace of the smoke "
                             "cells (inspect with `python -m repro.telemetry "
                             "summarize PATH`)")
    args = parser.parse_args(argv)
    pin_compute_threads(int(os.environ.get("REPRO_SMOKE_THREADS", "1")))

    budget = float(os.environ.get("REPRO_SMOKE_BUDGET", "120"))
    tracer_cm = nullcontext()
    if args.trace:
        from repro.telemetry import build_manifest, trace_to
        tracer_cm = trace_to(args.trace,
                             manifest=build_manifest(extra={"smoke": True}))
    with tracer_cm:
        elapsed, result = run_cell()
        bb_elapsed, bb_result = run_blackbox_cell()
        ad_elapsed, ad_result, ad_defended = run_adaptive_cell()
    tel_off, tel_on, tel_ratio, tel_identical = run_telemetry_cell()

    print(f"smoke attack cell: {elapsed:.2f}s "
          f"(budget {budget:.0f}s, {result.iterations} iterations, "
          f"l2={result.l2:.4f}, accuracy={result.outcome.accuracy:.3f})")
    print(f"attack neighbourhood cache: {last_attack_cache_stats()}")
    print(f"smoke black-box cell: {bb_elapsed:.2f}s "
          f"({bb_result.history[-1]['queries']:.0f} queries, "
          f"l2={bb_result.l2:.4f}, accuracy={bb_result.outcome.accuracy:.3f})")
    print(f"smoke adaptive cell: {ad_elapsed:.2f}s "
          f"({ad_result.iterations} iterations, l2={ad_result.l2:.4f}, "
          f"defended accuracy={ad_defended:.3f})")
    print(f"smoke telemetry cell: untraced {tel_off:.3f}s, traced "
          f"{tel_on:.3f}s, overhead x{tel_ratio:.3f}, "
          f"bitwise identical: {tel_identical}")

    if args.json:
        mode = os.environ.get("REPRO_ACCEL", "").strip().lower() or "default"
        payload = {
            "benchmarks": [{
                "name": f"smoke_attack_cell[{mode}]",
                "stats": {"mean": elapsed},
                # Gated metrics (numeric): deterministic up to platform
                # rounding.  The iteration count is reported as a string so
                # the drift gate skips it — a borderline convergence step
                # may legitimately shift by one across BLAS builds.
                "extra_info": {
                    "l2": result.l2,
                    "accuracy": result.outcome.accuracy,
                    "iterations": str(result.iterations),
                },
            }, {
                "name": f"smoke_blackbox_cell[{mode}]",
                "stats": {"mean": bb_elapsed},
                # Queries are reported as a string like iterations: the cell
                # never converges, but keeping the count out of the numeric
                # gate means a future borderline-convergence change cannot
                # fail CI on bookkeeping.
                "extra_info": {
                    "l2": bb_result.l2,
                    "accuracy": bb_result.outcome.accuracy,
                    "queries": str(int(bb_result.history[-1]["queries"])),
                },
            }, {
                "name": f"smoke_adaptive_cell[{mode}]",
                "stats": {"mean": ad_elapsed},
                # The defended accuracy is the metric the adaptive mode
                # exists to move; iterations stay a string like the other
                # cells so borderline convergence can't fail CI.
                "extra_info": {
                    "l2": ad_result.l2,
                    "accuracy": ad_result.outcome.accuracy,
                    "defended_accuracy": ad_defended,
                    "iterations": str(ad_result.iterations),
                },
            }, {
                "name": f"smoke_telemetry_cell[{mode}]",
                "stats": {"mean": tel_on},
                # overhead_ratio is measured within this run (min-based,
                # interleaved on/off), so compare.py --overhead-limit can
                # gate it tightly where cross-machine wall-clocks can't be.
                # The untraced time is a string: absolute timings are
                # machine-dependent and must not hit the numeric gate.
                "extra_info": {
                    "overhead_ratio": tel_ratio,
                    "untraced_s": f"{tel_off:.4f}",
                    "bitwise_identical": str(tel_identical),
                },
            }],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not all(np.isfinite(value) for value in
               (result.l2, bb_result.l2, ad_result.l2, ad_defended)):
        print("FAIL: non-finite perturbation distance or defended accuracy",
              file=sys.stderr)
        return 1
    if not tel_identical:
        print("FAIL: tracing changed the attack trajectory",
              file=sys.stderr)
        return 1
    if elapsed + bb_elapsed + ad_elapsed > budget:
        print(f"FAIL: smoke cells exceeded the {budget:.0f}s budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
