"""CI smoke benchmark: one tiny attack cell under a generous time budget.

Runs a single norm-unbounded colour attack against a small untrained
PointNet++ on a 128-point synthetic scene — the smallest end-to-end pass
through the full hot path (autograd engine, neighbourhood cache, compute
policy, evaluation) — and fails if it exceeds ``REPRO_SMOKE_BUDGET`` seconds
(default 120; the cell takes well under a second on a laptop).  This guards
CI against pathological performance regressions without the cost of the real
benchmark suite.

Usage::

    PYTHONPATH=src python benchmarks/smoke_attack_cell.py
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.accel import last_attack_cache_stats
from repro.core import AttackConfig, run_attack
from repro.datasets import generate_room_scene
from repro.models import build_model


def main() -> int:
    budget = float(os.environ.get("REPRO_SMOKE_BUDGET", "120"))
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    model.eval()
    scene = generate_room_scene(num_points=128, room_type="office",
                                rng=np.random.default_rng(7), name="smoke")
    config = AttackConfig.fast(method="unbounded", field="color",
                               unbounded_steps=20, smoothness_alpha=4, seed=0,
                               target_accuracy=0.0)

    start = time.perf_counter()
    result = run_attack(model, scene, config)
    elapsed = time.perf_counter() - start

    print(f"smoke attack cell: {elapsed:.2f}s "
          f"(budget {budget:.0f}s, {result.iterations} iterations, "
          f"l2={result.l2:.4f}, accuracy={result.outcome.accuracy:.3f})")
    print(f"attack neighbourhood cache: {last_attack_cache_stats()}")

    if not np.isfinite(result.l2):
        print("FAIL: non-finite perturbation distance", file=sys.stderr)
        return 1
    if elapsed > budget:
        print(f"FAIL: smoke cell exceeded the {budget:.0f}s budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
