"""Benchmark: ablations over the attack's design choices.

These cover the design decisions DESIGN.md calls out beyond the paper's own
tables: the smoothness weight λ2, the ε budget, the iteration budget, and the
k-NN neighbourhood churn behind Finding 1.
"""

from repro.experiments import (
    run_epsilon_ablation,
    run_lambda2_ablation,
    run_neighbourhood_ablation,
    run_steps_ablation,
)

from conftest import run_once, save_table


def test_ablation_lambda2(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_lambda2_ablation(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())
    rows = {row["lambda2"]: row for row in table.rows}
    # The attack succeeds across the sweep; the smoothness term is a
    # regulariser, not a success/failure switch.
    assert all(row["accuracy_pct"] < 60.0 for row in table.rows)
    assert set(rows) == {0.0, 0.1, 1.0}


def test_ablation_epsilon(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_epsilon_ablation(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())
    rows = sorted(table.rows, key=lambda r: r["epsilon"])
    # The L-inf of the result respects each budget, and a larger budget never
    # makes the attack weaker.
    for row in rows:
        assert row["linf"] <= row["epsilon"] + 1e-9
    assert rows[-1]["accuracy_pct"] <= rows[0]["accuracy_pct"] + 5.0


def test_ablation_steps(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_steps_ablation(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())
    rows = sorted(table.rows, key=lambda r: r["steps"])
    # More optimisation steps never hurt the attacker.
    assert rows[-1]["accuracy_pct"] <= rows[0]["accuracy_pct"] + 5.0


def test_ablation_neighbourhood(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_neighbourhood_ablation(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())
    rows = {row["field"]: row for row in table.rows}
    # Colour perturbations cannot change the k-NN graph; coordinate
    # perturbations scramble it (the mechanism behind Finding 1).
    assert rows["color"]["neighbourhood_change_pct"] == 0.0
    assert rows["coordinate"]["neighbourhood_change_pct"] > rows["color"]["neighbourhood_change_pct"]
