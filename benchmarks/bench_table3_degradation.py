"""Benchmark: regenerate Table III (performance degradation, three models).

Paper claims reproduced:
* all three PCSS models are vulnerable to the optimised colour attacks
  (accuracy collapses from >80 % to near-random);
* the random-noise baseline with the same L2 budget is far weaker;
* the norm-unbounded attack is at least as strong as the norm-bounded one on
  the hardest ("worst-case") clouds (Finding 2).
"""

from repro.experiments import run_table3
from repro.experiments.table3 import MODELS

from conftest import run_once, save_table


def test_table3_degradation(benchmark, context, results_dir):
    table = run_once(benchmark, lambda: run_table3(context))
    save_table(table, results_dir)
    print("\n" + table.formatted())

    cells = table.metadata["cells"]
    for model_name in MODELS:
        unbounded = cells[f"{model_name}/unbounded"]["summary"]
        noise = cells[f"{model_name}/noise"]["summary"]
        bounded = cells[f"{model_name}/bounded"]["summary"]

        # Victim models start from high clean accuracy, as in the paper.
        assert unbounded.clean_accuracy > 0.7

        # The optimised attack collapses accuracy; noise does not.
        assert unbounded.average.accuracy < 0.5 * unbounded.clean_accuracy
        assert unbounded.average.accuracy < noise.average.accuracy
        assert noise.average.accuracy > 0.5 * noise.clean_accuracy

        # Finding 2: on the hardest sample the unbounded attack is at least
        # as effective as the bounded one (small tolerance for the reduced
        # sample count of the CPU-scale benchmark).
        assert unbounded.worst.accuracy <= bounded.worst.accuracy + 0.15
