"""Tests for the ``repro.pipeline`` subsystem.

Covers the content-addressed result store (round-trip, cache hits on
identical config hashes), task-graph validation and scheduling order,
failure isolation, serial-vs-parallel output equivalence on a tiny
experiment, and store-backed resume — plus the order-independent per-scene
seeding of ``run_attack_batch`` that makes cells safe to parallelise.
"""

import numpy as np
import pytest

from repro.core import AttackConfig, run_attack, run_attack_batch
from repro.experiments import ExperimentConfig, ExperimentContext
from repro.experiments.plans import (PLAN_BUILDERS, available_experiments,
                                     plan_experiment)
from repro.experiments.table67 import plan_table6
from repro.pipeline import (GraphError, PipelineError, PipelineSession,
                            ResultStore, Task, TaskGraph, config_salt,
                            content_hash, register_executor, run_graph)
from repro.pipeline.progress import CACHED, FAILED, RAN, SKIPPED
from repro.pipeline.worker import available_executors, get_executor

# ---------------------------------------------------------------------- #
# Stub executors (registered once at import; fork workers inherit them)
# ---------------------------------------------------------------------- #
_EXECUTION_LOG = []


@register_executor("stub:value")
def _stub_value(context, params, deps):
    return params["value"]


@register_executor("stub:sum")
def _stub_sum(context, params, deps):
    return sum(deps.values()) + params.get("add", 0)


@register_executor("stub:record")
def _stub_record(context, params, deps):
    _EXECUTION_LOG.append(params["tag"])
    return params["tag"]


@register_executor("stub:fail")
def _stub_fail(context, params, deps):
    raise RuntimeError("boom")


def _diamond() -> TaskGraph:
    """a → (b, c) → d summing graph used by several scheduler tests."""
    graph = TaskGraph(result="d")
    graph.add(Task("a", "stub:value", {"value": 1}))
    graph.add(Task("b", "stub:sum", {"add": 10}, deps=("a",)))
    graph.add(Task("c", "stub:sum", {"add": 100}, deps=("a",)))
    graph.add(Task("d", "stub:sum", {}, deps=("b", "c")))
    return graph


class TestHashing:
    def test_dict_order_independent(self):
        assert content_hash({"a": 1, "b": [1, 2]}) == \
            content_hash({"b": [1, 2], "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert content_hash((1, 2, 3)) == content_hash([1, 2, 3])

    def test_numpy_scalars_collapse(self):
        assert content_hash({"x": np.int64(3)}) == content_hash({"x": 3})
        assert content_hash({"x": np.float64(0.5)}) == content_hash({"x": 0.5})

    def test_different_values_differ(self):
        assert content_hash({"seed": 0}) != content_hash({"seed": 1})

    def test_unhashable_object_raises(self):
        with pytest.raises(TypeError):
            content_hash({"x": object()})


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = content_hash({"attack": "unbounded", "seed": 0})
        payload = {"records": [{"l2": 1.5, "array": np.arange(3)}]}
        store.put(key, payload, metadata={"task_id": "cell"})
        assert store.contains(key)
        loaded = store.get(key)
        assert loaded["records"][0]["l2"] == 1.5
        np.testing.assert_array_equal(loaded["records"][0]["array"],
                                      np.arange(3))
        assert store.metadata(key)["task_id"] == "cell"

    def test_cache_hit_on_identical_config_hash(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key_a = content_hash({"model": "resgcn", "epsilon": 0.12})
        key_b = content_hash({"epsilon": 0.12, "model": "resgcn"})
        assert key_a == key_b
        store.put(key_a, "payload")
        assert store.get(key_b) == "payload"

    def test_missing_key_raises(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(KeyError):
            store.get("0" * 64)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = content_hash("x")
        store.put(key, {"ok": True})
        with open(store._payload_path(key), "wb") as handle:
            handle.write(b"not a pickle")
        with pytest.raises(KeyError):
            store.get(key)

    def test_inventory_and_clear(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for value in range(3):
            store.put(content_hash(value), value)
        assert len(store) == 3
        assert store.stats()["entries"] == 3
        assert store.stats()["bytes"] > 0
        assert store.clear() == 3
        assert len(store) == 0


class TestTaskGraph:
    def test_topological_order_respects_deps(self):
        order = [task.task_id for task in _diamond().topological_order()]
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("d") == 3

    def test_cycle_detected(self):
        graph = TaskGraph()
        graph.add(Task("a", "stub:value", {"value": 1}, deps=("b",)))
        graph.add(Task("b", "stub:value", {"value": 1}, deps=("a",)))
        with pytest.raises(GraphError):
            graph.validate()

    def test_missing_dependency_detected(self):
        graph = TaskGraph()
        graph.add(Task("a", "stub:value", {"value": 1}, deps=("ghost",)))
        with pytest.raises(GraphError):
            graph.validate()

    def test_duplicate_id_rejected(self):
        graph = TaskGraph()
        graph.add(Task("a", "stub:value", {"value": 1}))
        with pytest.raises(GraphError):
            graph.add(Task("a", "stub:value", {"value": 2}))

    def test_add_once_dedupes_but_rejects_conflicts(self):
        graph = TaskGraph()
        graph.add_once(Task("a", "stub:value", {"value": 1}))
        graph.add_once(Task("a", "stub:value", {"value": 1}))
        assert len(graph) == 1
        with pytest.raises(GraphError):
            graph.add_once(Task("a", "stub:value", {"value": 2}))

    def test_merge_graphs_dedupes_shared_tasks(self):
        from repro.experiments.table2 import plan_table2
        from repro.experiments.table8 import plan_table8
        from repro.pipeline import merge_graphs
        config = ExperimentConfig.tiny()
        merged = merge_graphs([plan_table2(config), plan_table8(config)])
        merged.validate()
        # Both tables attack the same trained ResGCN: one task after merging.
        assert merged.task_ids().count("model/resgcn:s3dis:0") == 1
        assert "table2:result" in merged and "table8:result" in merged

    def test_fingerprints_invalidate_transitively(self):
        base = _diamond().fingerprints({})
        changed_graph = TaskGraph(result="d")
        changed_graph.add(Task("a", "stub:value", {"value": 2}))
        changed_graph.add(Task("b", "stub:sum", {"add": 10}, deps=("a",)))
        changed_graph.add(Task("c", "stub:sum", {"add": 100}, deps=("a",)))
        changed_graph.add(Task("d", "stub:sum", {}, deps=("b", "c")))
        changed = changed_graph.fingerprints({})
        assert all(base[task_id] != changed[task_id] for task_id in base)

    def test_fingerprints_stable_across_builds(self):
        assert _diamond().fingerprints({"s": 1}) == \
            _diamond().fingerprints({"s": 1})
        assert _diamond().fingerprints({"s": 1}) != \
            _diamond().fingerprints({"s": 2})

    def test_cache_dir_does_not_affect_salt(self, tmp_path):
        config_a = ExperimentConfig.tiny(cache_dir=str(tmp_path / "a"))
        config_b = ExperimentConfig.tiny(cache_dir=str(tmp_path / "b"))
        assert config_salt(config_a) == config_salt(config_b)

    def test_batch_scenes_does_not_affect_salt(self):
        """Scene batching is execution strategy: cached cells are shared."""
        serial = ExperimentConfig.tiny(batch_scenes=1)
        batched = ExperimentConfig.tiny(batch_scenes=8)
        assert config_salt(serial) == config_salt(batched)
        assert "batch_scenes" not in config_salt(serial)["config"]


class TestScheduler:
    def test_serial_runs_in_dependency_order(self):
        _EXECUTION_LOG.clear()
        graph = TaskGraph()
        graph.add(Task("one", "stub:record", {"tag": "one"}))
        graph.add(Task("two", "stub:record", {"tag": "two"}, deps=("one",)))
        graph.add(Task("three", "stub:record", {"tag": "three"}, deps=("two",)))
        result = run_graph(graph, {})
        assert result.succeeded
        assert _EXECUTION_LOG == ["one", "two", "three"]

    def test_diamond_outputs(self):
        result = run_graph(_diamond(), {})
        assert result.outputs == {"a": 1, "b": 11, "c": 101, "d": 112}
        assert result.result == 112

    def test_failure_isolation(self):
        graph = TaskGraph(result="dependent")
        graph.add(Task("bad", "stub:fail", {}))
        graph.add(Task("dependent", "stub:sum", {}, deps=("bad",)))
        graph.add(Task("independent", "stub:value", {"value": 7}))
        result = run_graph(graph, {})
        statuses = {r.task_id: r.status for r in result.report.records}
        assert statuses == {"bad": FAILED, "dependent": SKIPPED,
                            "independent": RAN}
        assert result.outputs["independent"] == 7
        assert not result.succeeded
        with pytest.raises(PipelineError):
            _ = result.result
        assert "boom" in result.describe_failure()

    def test_store_round_trip_and_cache_hits(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = run_graph(_diamond(), {"seed": 0}, store=store)
        assert all(r.status == RAN for r in first.report.records)
        second = run_graph(_diamond(), {"seed": 0}, store=store)
        assert all(r.status == CACHED for r in second.report.records)
        assert second.outputs == first.outputs
        # A different configuration hash misses the cache entirely.
        third = run_graph(_diamond(), {"seed": 1}, store=store)
        assert all(r.status == RAN for r in third.report.records)

    def test_refresh_recomputes(self, tmp_path):
        store = ResultStore(str(tmp_path))
        run_graph(_diamond(), {}, store=store)
        result = run_graph(_diamond(), {}, store=store, refresh=True)
        assert all(r.status == RAN for r in result.report.records)

    def test_non_cacheable_tasks_always_run(self, tmp_path):
        store = ResultStore(str(tmp_path))
        graph = TaskGraph()
        graph.add(Task("volatile", "stub:value", {"value": 5},
                       cacheable=False))
        run_graph(graph, {}, store=store)
        result = run_graph(graph, {}, store=store)
        assert result.report.records[0].status == RAN

    def test_corrupt_store_entry_recomputes(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = run_graph(_diamond(), {}, store=store)
        key = next(r.key for r in first.report.records if r.task_id == "a")
        with open(store._payload_path(key), "wb") as handle:
            handle.write(b"garbage")
        second = run_graph(_diamond(), {}, store=store)
        statuses = {r.task_id: r.status for r in second.report.records}
        assert statuses["a"] == RAN

    def test_parallel_matches_serial(self):
        serial = run_graph(_diamond(), {})
        parallel = run_graph(_diamond(), {}, jobs=2)
        assert parallel.outputs == serial.outputs
        assert parallel.report.jobs == 2

    def test_parallel_failure_isolation(self):
        graph = TaskGraph()
        graph.add(Task("bad", "stub:fail", {}))
        graph.add(Task("dependent", "stub:sum", {}, deps=("bad",)))
        graph.add(Task("survivor", "stub:value", {"value": 3}))
        result = run_graph(graph, {}, jobs=2)
        statuses = {r.task_id: r.status for r in result.report.records}
        assert statuses == {"bad": FAILED, "dependent": SKIPPED,
                            "survivor": RAN}
        failure = next(r for r in result.report.records if r.status == FAILED)
        assert "boom" in failure.error

    def test_report_summary_mentions_counts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        run_graph(_diamond(), {}, store=store)
        result = run_graph(_diamond(), {}, store=store)
        assert "4 cached" in result.report.summary()


class TestExecutorRegistry:
    def test_domain_executors_registered(self):
        kinds = available_executors()
        for kind in ("attack_cell", "defense_cell", "transfer_cell",
                     "clean_eval", "dataset", "train_model", "experiment",
                     "table3:assemble"):
            assert kind in kinds

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            get_executor("no-such-kind")


class TestPlans:
    def test_every_experiment_has_a_plan(self):
        config = ExperimentConfig.tiny()
        from repro.experiments.run import EXPERIMENTS
        assert set(EXPERIMENTS) <= set(available_experiments())
        for name in available_experiments():
            graph = plan_experiment(name, config)
            graph.validate()
            assert graph.result in graph

    def test_decomposed_tables_have_cells(self):
        config = ExperimentConfig.tiny()
        for name, builder in PLAN_BUILDERS.items():
            graph = builder(config)
            kinds = {task.kind for task in graph}
            assert kinds & {"attack_cell", "defense_cell", "transfer_cell"}, name
            assert any(task.kind == "train_model" for task in graph)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            plan_experiment("table42", ExperimentConfig.tiny())


class TestBatchSeeding:
    """The run_attack_batch fix: per-scene seeds, order independence."""

    def _noise_config(self, **overrides):
        defaults = dict(objective="degradation", method="noise", field="color")
        defaults.update(overrides)
        return AttackConfig.fast(**defaults)

    def test_scene_seeded_by_position(self, trained_resgcn, office_scene):
        config = self._noise_config()
        batch = run_attack_batch(trained_resgcn,
                                 [office_scene, office_scene], config)
        solo = run_attack(trained_resgcn, office_scene, config,
                          rng=np.random.default_rng([config.seed, 1]))
        np.testing.assert_allclose(batch[1].adversarial_colors,
                                   solo.adversarial_colors)

    def test_skipped_scene_does_not_shift_later_seeds(self, trained_resgcn,
                                                      office_scene):
        from repro.datasets import generate_room_scene
        from repro.datasets.s3dis import CLASS_INDEX
        hallway = generate_room_scene(num_points=192, room_type="hallway",
                                      rng=np.random.default_rng(3),
                                      name="hallway_test")
        assert not (hallway.labels == CLASS_INDEX["board"]).any()
        config = self._noise_config(objective="hiding",
                                    source_class=CLASS_INDEX["board"],
                                    target_class=CLASS_INDEX["wall"])
        with_skip = run_attack_batch(trained_resgcn,
                                     [hallway, office_scene], config)
        no_skip = run_attack_batch(trained_resgcn,
                                   [office_scene, office_scene], config)
        assert len(with_skip) == 1          # the hallway has no board points
        np.testing.assert_allclose(with_skip[0].adversarial_colors,
                                   no_skip[1].adversarial_colors)

    def test_shard_with_start_index_matches_full_batch(self, trained_resgcn,
                                                       office_scene):
        config = self._noise_config()
        full = run_attack_batch(trained_resgcn,
                                [office_scene, office_scene], config)
        shard = run_attack_batch(trained_resgcn, [office_scene], config,
                                 start_index=1)
        np.testing.assert_allclose(shard[0].adversarial_colors,
                                   full[1].adversarial_colors)

    def test_shared_rng_argument_deprecated(self, trained_resgcn, office_scene):
        config = self._noise_config()
        with pytest.warns(DeprecationWarning):
            run_attack_batch(trained_resgcn, [office_scene], config,
                             rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One checkpoint cache for the integration tests (models train once)."""
    return str(tmp_path_factory.mktemp("pipeline_cache"))


@pytest.fixture(scope="module")
def tiny_config(shared_cache):
    return ExperimentConfig.tiny(cache_dir=shared_cache)


class TestEndToEnd:
    def test_serial_vs_parallel_equivalence_and_resume(self, tiny_config,
                                                       tmp_path):
        from repro.experiments import run_table6

        serial = run_table6(ExperimentContext(tiny_config))

        store = ResultStore(str(tmp_path / "store"))
        session = PipelineSession(jobs=2, store=store)
        parallel = run_table6(ExperimentContext(tiny_config, pipeline=session))
        assert parallel.formatted() == serial.formatted()
        assert session.last_report is not None
        assert session.last_report.count(FAILED) == 0

        # Immediately re-running resumes from the result store: every attack
        # cell is served as a cache hit, none re-executes.
        resumed = run_graph(plan_table6(tiny_config), tiny_config, store=store)
        statuses = {r.task_id: r.status for r in resumed.report.records}
        assert statuses["table6/unbounded"] == CACHED
        assert statuses["table6/noise"] == CACHED
        assert resumed.result.formatted() == serial.formatted()

    def test_cli_run_and_resume(self, tiny_config, shared_cache, tmp_path,
                                capsys, monkeypatch):
        from repro.pipeline.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", shared_cache)
        store = str(tmp_path / "cli_store")
        args = ["--experiment", "table6", "--scale", "tiny", "--jobs", "2",
                "--store", store, "--quiet"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "Table VI" in first

        assert main(["--experiment", "table6", "--scale", "tiny",
                     "--store", store, "--quiet"]) == 0
        second = capsys.readouterr().out
        assert "2 cached" in second
        # The resumed run reproduces the identical table text.
        assert first[first.index("Table VI"):] == second[second.index("Table VI"):]

        assert main(["--experiment", "table6", "--scale", "tiny",
                     "--store", store, "--status"]) == 0
        status = capsys.readouterr().out
        assert "cached" in status and "table6/unbounded" in status

    def test_cli_list(self, capsys):
        from repro.pipeline.cli import main

        assert main(["--list"]) == 0
        names = capsys.readouterr().out.split()
        assert "table3" in names and "figures" in names

    def test_run_module_list_and_jobs_flags(self, capsys):
        from repro.experiments.run import build_parser, main

        args = build_parser().parse_args([])
        assert args.jobs == 1 and not args.list
        assert main(["--list"]) == 0
        assert "table3" in capsys.readouterr().out.split()

    def test_jobs_delegates_to_pipeline_cli(self, monkeypatch):
        from repro.experiments import run as run_module
        from repro.pipeline import cli as pipeline_cli

        captured = {}

        def fake_main(argv):
            captured["argv"] = argv
            return 0

        monkeypatch.setattr(pipeline_cli, "main", fake_main)
        assert run_module.main(["--experiment", "table6", "--jobs", "3",
                                "--fresh"]) == 0
        assert captured["argv"][:4] == ["--experiment", "table6", "--jobs", "3"]
        assert "--fresh" in captured["argv"]

    def test_no_resume_flag_recomputes(self, tmp_path, monkeypatch, capsys):
        from repro.pipeline.cli import build_parser

        args = build_parser().parse_args(["--no-resume"])
        assert args.resume is False
        assert build_parser().parse_args([]).resume is True

    def test_cli_batch_scenes_matches_serial_and_shares_store(
            self, tiny_config, shared_cache, tmp_path, capsys, monkeypatch):
        """`--batch-scenes B` must reproduce the serial table byte for byte,
        and — because batching is excluded from content hashing — resume
        from a store populated by a serial run without recomputing."""
        from repro.pipeline.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", shared_cache)
        store = str(tmp_path / "bs_store")
        assert main(["--experiment", "table6", "--scale", "tiny",
                     "--store", store, "--quiet"]) == 0
        serial_out = capsys.readouterr().out

        assert main(["--experiment", "table6", "--scale", "tiny",
                     "--store", store, "--batch-scenes", "4",
                     "--quiet"]) == 0
        batched_out = capsys.readouterr().out
        assert "2 cached" in batched_out          # store hits despite batching
        assert (serial_out[serial_out.index("Table VI"):]
                == batched_out[batched_out.index("Table VI"):])

        # A fresh batched run (no store) still produces the same table.
        assert main(["--experiment", "table6", "--scale", "tiny",
                     "--no-store", "--batch-scenes", "4", "--quiet"]) == 0
        fresh_out = capsys.readouterr().out
        assert (serial_out[serial_out.index("Table VI"):]
                == fresh_out[fresh_out.index("Table VI"):])
