"""Unit tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, gather_points, maximum, minimum, stack, where
from repro.nn.tensor import _unbroadcast


def numeric_gradient(fn, x, eps=1e-6):
    """Central finite-difference gradient of a scalar-valued function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build, x, rtol=1e-4, atol=1e-6):
    """Compare autograd gradient of sum(build(Tensor(x))) with finite differences."""
    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor)
    out.sum().backward()
    expected = numeric_gradient(lambda arr: build(Tensor(arr)).sum().item(), x.copy())
    np.testing.assert_allclose(tensor.grad, expected, rtol=rtol, atol=atol)


class TestBasics:
    def test_construction_defaults(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert not t.requires_grad
        assert t.grad is None

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_numpy_returns_copy(self):
        t = Tensor([1.0, 2.0])
        arr = t.numpy()
        arr[0] = 99.0
        assert t.data[0] == 1.0

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_requires_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_zero_grad(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 1.5
        np.testing.assert_allclose(out.data, [2.5, 3.5])

    def test_radd(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub_and_rsub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - Tensor([3.0])).data, [2.0])

    def test_mul_div(self):
        np.testing.assert_allclose((Tensor([2.0]) * 3.0).data, [6.0])
        np.testing.assert_allclose((Tensor([6.0]) / 3.0).data, [2.0])
        np.testing.assert_allclose((6.0 / Tensor([3.0])).data, [2.0])

    def test_neg_and_pow(self):
        np.testing.assert_allclose((-Tensor([2.0])).data, [-2.0])
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_values(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    @pytest.mark.parametrize("shape_a, shape_b", [
        ((3,), (3,)), ((2, 3), (3,)), ((2, 3), (2, 3)), ((2, 1), (1, 3)),
    ])
    def test_add_gradient(self, rng, shape_a, shape_b):
        a = rng.normal(size=shape_a)
        b = rng.normal(size=shape_b)
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta + tb).sum().backward()
        assert ta.grad.shape == shape_a
        assert tb.grad.shape == shape_b

    def test_mul_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        y = rng.normal(size=(3, 4))
        check_gradient(lambda t: t * Tensor(y), x)

    def test_div_gradient(self, rng):
        x = rng.normal(size=(3, 4)) + 3.0
        check_gradient(lambda t: Tensor(np.ones((3, 4))) / t, x)

    def test_matmul_gradient(self, rng):
        x = rng.normal(size=(4, 3))
        w = rng.normal(size=(3, 2))
        check_gradient(lambda t: t @ Tensor(w), x)
        check_gradient(lambda t: Tensor(x) @ t, w)

    def test_batched_matmul_gradient(self, rng):
        x = rng.normal(size=(2, 4, 3))
        w = rng.normal(size=(3, 5))
        check_gradient(lambda t: t @ Tensor(w), x)
        check_gradient(lambda t: Tensor(x) @ t, w)

    def test_pow_gradient(self, rng):
        x = np.abs(rng.normal(size=(5,))) + 0.5
        check_gradient(lambda t: t ** 3, x)

    def test_gradient_accumulates_on_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x * 3.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2 * 2.0 + 3.0])


class TestElementwise:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid", "abs"])
    def test_values(self, rng, op):
        x = np.abs(rng.normal(size=(3, 3))) + 0.5
        expected = {
            "exp": np.exp, "log": np.log, "sqrt": np.sqrt,
            "tanh": np.tanh, "sigmoid": lambda v: 1 / (1 + np.exp(-v)),
            "abs": np.abs,
        }[op](x)
        np.testing.assert_allclose(getattr(Tensor(x), op)().data, expected)

    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid"])
    def test_gradients(self, rng, op):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda t: getattr(t, op)(), x)

    def test_relu_values_and_grad(self):
        x = np.array([-1.0, 0.0, 2.0])
        t = Tensor(x, requires_grad=True)
        out = t.relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.0, 1.0])

    def test_leaky_relu(self):
        t = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        out = t.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.1, 1.0])

    def test_clip_values_and_grad(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        out = t.clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient_sign(self):
        t = Tensor(np.array([-3.0, 4.0]), requires_grad=True)
        t.abs().sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0, 1.0])


class TestReductions:
    def test_sum_all(self, rng):
        x = rng.normal(size=(3, 4))
        assert Tensor(x).sum().item() == pytest.approx(x.sum())

    @pytest.mark.parametrize("axis,keepdims", [(0, False), (1, True), (-1, False)])
    def test_sum_axis(self, rng, axis, keepdims):
        x = rng.normal(size=(3, 4))
        out = Tensor(x).sum(axis=axis, keepdims=keepdims)
        np.testing.assert_allclose(out.data, x.sum(axis=axis, keepdims=keepdims))

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum_gradient(self, rng, axis, keepdims):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: t.sum(axis=axis, keepdims=keepdims), x)

    def test_mean_values(self, rng):
        x = rng.normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(x).mean(axis=1).data, x.mean(axis=1))
        assert Tensor(x).mean().item() == pytest.approx(x.mean())

    def test_mean_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: t.mean(axis=0), x)

    def test_max_values(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(Tensor(x).max(axis=1).data, x.max(axis=1))

    def test_max_gradient_routes_to_argmax(self):
        x = np.array([[1.0, 5.0, 2.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_max_gradient_splits_ties(self):
        x = np.array([[3.0, 3.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])

    def test_min(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(Tensor(x).min(axis=1).data, x.min(axis=1))


class TestShapes:
    def test_reshape_roundtrip_gradient(self, rng):
        x = rng.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4) * 2.0), x)

    def test_transpose_values(self, rng):
        x = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(Tensor(x).transpose(2, 0, 1).data, x.transpose(2, 0, 1))

    def test_transpose_default_reverses(self, rng):
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(Tensor(x).transpose().data, x.T)

    def test_transpose_gradient(self, rng):
        x = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: t.transpose(1, 2, 0) * Tensor(np.ones((3, 4, 2))), x)

    def test_swapaxes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(Tensor(x).swapaxes(0, 2).data, x.swapaxes(0, 2))

    def test_expand_squeeze(self, rng):
        x = rng.normal(size=(3, 4))
        expanded = Tensor(x).expand_dims(1)
        assert expanded.shape == (3, 1, 4)
        assert expanded.squeeze(1).shape == (3, 4)

    def test_expand_dims_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: t.expand_dims(0) * 3.0, x)

    def test_getitem_values_and_gradient(self, rng):
        x = rng.normal(size=(5, 3))
        t = Tensor(x, requires_grad=True)
        out = t[1:3]
        np.testing.assert_allclose(out.data, x[1:3])
        out.sum().backward()
        expected = np.zeros_like(x)
        expected[1:3] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_integer_array(self, rng):
        x = rng.normal(size=(5, 3))
        t = Tensor(x, requires_grad=True)
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        expected = np.zeros_like(x)
        expected[0] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(t.grad, expected)


class TestCombinators:
    def test_concatenate_values(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        out = concatenate([Tensor(a), Tensor(b)], axis=1)
        np.testing.assert_allclose(out.data, np.concatenate([a, b], axis=1))

    def test_concatenate_gradient_split(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        concatenate([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (2, 2)
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_stack(self, rng):
        a, b = rng.normal(size=(3,)), rng.normal(size=(3,))
        out = stack([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_allclose(out.data, np.stack([a, b]))

    def test_stack_gradient(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (stack([a, b], axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones(3))
        np.testing.assert_allclose(b.grad, 2 * np.ones(3))

    def test_maximum_minimum_values(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        np.testing.assert_allclose(maximum(a, b).data, [3.0, 5.0])
        np.testing.assert_allclose(minimum(a, b).data, [1.0, 2.0])

    def test_maximum_gradient_routing(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_where_selects_and_routes_grad(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_gather_points_values(self, rng):
        features = rng.normal(size=(2, 5, 3))
        idx = np.array([[0, 4], [2, 2]])
        out = gather_points(Tensor(features), idx)
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.data[0, 1], features[0, 4])
        np.testing.assert_allclose(out.data[1, 0], features[1, 2])

    def test_gather_points_grouped(self, rng):
        features = rng.normal(size=(1, 4, 2))
        idx = np.array([[[0, 1], [2, 3], [0, 0]]])
        out = gather_points(Tensor(features), idx)
        assert out.shape == (1, 3, 2, 2)

    def test_gather_points_gradient_accumulates_duplicates(self, rng):
        features = Tensor(rng.normal(size=(1, 4, 2)), requires_grad=True)
        idx = np.array([[0, 0, 3]])
        gather_points(features, idx).sum().backward()
        np.testing.assert_allclose(features.grad[0, 0], [2.0, 2.0])
        np.testing.assert_allclose(features.grad[0, 3], [1.0, 1.0])
        np.testing.assert_allclose(features.grad[0, 1], [0.0, 0.0])

    def test_gather_points_validates_shapes(self):
        with pytest.raises(ValueError):
            gather_points(Tensor(np.zeros((3, 4))), np.zeros((1, 2), dtype=int))
        with pytest.raises(ValueError):
            gather_points(Tensor(np.zeros((1, 3, 4))), np.zeros((1,), dtype=int))


class TestUnbroadcast:
    @pytest.mark.parametrize("grad_shape,target_shape", [
        ((3, 4), (3, 4)), ((2, 3, 4), (3, 4)), ((3, 4), (1, 4)),
        ((5, 3, 4), (1, 1)), ((2, 3), (3,)),
    ])
    def test_shapes(self, grad_shape, target_shape):
        grad = np.ones(grad_shape)
        out = _unbroadcast(grad, target_shape)
        assert out.shape == tuple(target_shape)

    def test_sum_is_preserved(self):
        grad = np.ones((4, 3))
        out = _unbroadcast(grad, (1, 3))
        np.testing.assert_allclose(out, np.full((1, 3), 4.0))


class TestGraph:
    def test_diamond_graph_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        ((a + b) * (a - b)).sum().backward()
        # d/dx (9x^2 - 16x^2) = -14x
        np.testing.assert_allclose(x.grad, [-14.0 * 2.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.1 ** 50], rtol=1e-9)

    def test_no_grad_through_constant_branch(self):
        x = Tensor([2.0], requires_grad=True)
        c = Tensor([3.0])
        (x * c).sum().backward()
        assert c.grad is None
