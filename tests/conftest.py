"""Shared fixtures: tiny synthetic datasets and small trained victim models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    generate_outdoor_scene,
    generate_room_scene,
    generate_s3dis_dataset,
    s3dis_train_test_split,
)
from repro.models import TrainingConfig, build_model, train_model


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_s3dis():
    """A small synthetic S3DIS-like dataset (areas 1-6, 1 scene each, 192 pts)."""
    return generate_s3dis_dataset(scenes_per_area=1, num_points=192, seed=3)


@pytest.fixture(scope="session")
def office_scene():
    """A deterministic office scene with all six hiding source classes."""
    return generate_room_scene(num_points=256, room_type="office",
                               rng=np.random.default_rng(7), name="office_test")


@pytest.fixture(scope="session")
def outdoor_scene():
    """A deterministic outdoor scene (all 8 Semantic3D classes)."""
    return generate_outdoor_scene(num_points=320, rng=np.random.default_rng(11),
                                  name="outdoor_test")


@pytest.fixture(scope="session")
def trained_resgcn(tiny_s3dis):
    """A small ResGCN trained to usable accuracy on the tiny dataset."""
    train, _ = s3dis_train_test_split(tiny_s3dis)
    model = build_model("resgcn", num_classes=13, hidden=16, num_blocks=2, seed=0)
    train_model(model, train.scenes,
                TrainingConfig(epochs=10, learning_rate=8e-3, seed=0))
    model.eval()
    return model


@pytest.fixture(scope="session")
def trained_pointnet2(tiny_s3dis):
    """A small PointNet++ trained on the tiny dataset (for transfer tests)."""
    train, _ = s3dis_train_test_split(tiny_s3dis)
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    train_model(model, train.scenes,
                TrainingConfig(epochs=10, learning_rate=8e-3, seed=0))
    model.eval()
    return model


@pytest.fixture(scope="session")
def untrained_models():
    """One untrained instance of every registered model (shape tests)."""
    return {
        name: build_model(name, num_classes=13, hidden=16, seed=0)
        for name in ("pointnet2", "resgcn", "randlanet")
    }
