"""The compiled tensor engine: capture, plan passes, replay, backends.

The engine-contract suite proves eager-vs-compiled bit-equality end to end;
this module tests the machinery itself — :class:`GraphRecorder` capture,
the :func:`compile_plan` passes (dead-node elimination, constant folding,
fusion), the :class:`StepProgram` lifecycle with its silent fallbacks, the
plan-cache stats surfaced by ``attack_compute``, profiler coverage of
replayed steps, and the optional torch executor (skipped when torch is not
installed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel.policy import ComputePolicy
from repro.core import AttackConfig
from repro.nn import Tensor
from repro.nn.backends import available_backends, has_torch
from repro.nn.compile import (PlanCache, compile_plan, plan_cache,
                              use_plan_cache)
from repro.nn.graph import GraphRecorder, recording
from repro.telemetry.profiler import profile_ops

RNG = np.random.default_rng(42)


def _network(x: Tensor, w: Tensor, b: Tensor):
    """A toy matmul→add→relu→reduce step: (y, loss)."""
    hidden = (x @ w + b).relu()
    y = hidden * hidden.sum(axis=-1, keepdims=True)
    return y, (y * y).sum()


@pytest.fixture()
def weights():
    w = Tensor(RNG.standard_normal((3, 5)))
    b = Tensor(RNG.standard_normal((5,)))
    return w, b


def _capture(weights, feed):
    """Capture ``_network`` once; return (plan, placeholder node name)."""
    w, b = weights
    x = Tensor(feed.copy(), requires_grad=True)
    recorder = GraphRecorder({"x": x})
    with recording(recorder):
        y, loss = _network(x, w, b)
    return compile_plan(recorder, {"y": y}, loss)


def _eager(weights, feed):
    w, b = weights
    x = Tensor(feed.copy(), requires_grad=True)
    y, loss = _network(x, w, b)
    loss.backward()
    return y.data, x.grad


class TestCaptureReplay:
    def test_replay_bitwise_matches_eager(self, weights):
        feed0 = RNG.standard_normal((4, 3))
        plan = _capture(weights, feed0)
        assert plan is not None
        for _ in range(3):
            feed = RNG.standard_normal((4, 3))
            result = plan.execute({"x": np.asarray(feed,
                                                   dtype=plan.placeholders["x"].dtype)})
            y_ref, grad_ref = _eager(weights, feed)
            np.testing.assert_array_equal(result.outputs["y"], y_ref)
            np.testing.assert_array_equal(result.grads["x"], grad_ref)

    def test_replays_counted(self, weights):
        feed = RNG.standard_normal((4, 3))
        plan = _capture(weights, feed)
        dtype = plan.placeholders["x"].dtype
        assert plan.replays == 0
        plan.execute({"x": feed.astype(dtype)})
        plan.execute({"x": feed.astype(dtype)})
        assert plan.replays == 2

    def test_shape_mismatch_raises(self, weights):
        from repro.nn.compile import PlanMismatch

        plan = _capture(weights, RNG.standard_normal((4, 3)))
        dtype = plan.placeholders["x"].dtype
        with pytest.raises(PlanMismatch):
            plan.execute({"x": RNG.standard_normal((5, 3)).astype(dtype)})


class TestCompilerPasses:
    def test_dead_nodes_eliminated(self, weights):
        """Ops recorded but never consumed by outputs/root are dropped."""
        w, b = weights
        feed = RNG.standard_normal((4, 3))
        x = Tensor(feed.copy(), requires_grad=True)
        recorder = GraphRecorder({"x": x})
        with recording(recorder):
            y, loss = _network(x, w, b)
            (y.exp() * 3.0).sum()          # dead: result never requested
        plan = compile_plan(recorder, {"y": y}, loss)
        lean = _capture(weights, feed)
        assert plan.num_ops == lean.num_ops
        result = plan.execute({"x": feed.astype(plan.placeholders["x"].dtype)})
        y_ref, grad_ref = _eager(weights, feed)
        np.testing.assert_array_equal(result.outputs["y"], y_ref)
        np.testing.assert_array_equal(result.grads["x"], grad_ref)

    def test_constant_folding(self, weights):
        """Constant-only subgraphs are evaluated once, at compile time."""
        w, b = weights
        feed = RNG.standard_normal((4, 3))
        x = Tensor(feed.copy(), requires_grad=True)
        recorder = GraphRecorder({"x": x})
        with recording(recorder):
            scaled = (w * 2.0 + 1.0).tanh()     # 3 constant-only ops
            hidden = (x @ scaled + b).relu()
            loss = (hidden * hidden).sum()
        plan = compile_plan(recorder, {"h": hidden}, loss)
        assert plan.describe()["folded"] >= 3
        # Eager reference with the same arithmetic:
        x2 = Tensor(feed.copy(), requires_grad=True)
        scaled2 = (w * 2.0 + 1.0).tanh()
        hidden2 = (x2 @ scaled2 + b).relu()
        (hidden2 * hidden2).sum().backward()
        result = plan.execute({"x": feed.astype(plan.placeholders["x"].dtype)})
        np.testing.assert_array_equal(result.outputs["h"], hidden2.data)
        np.testing.assert_array_equal(result.grads["x"], x2.grad)
        # Folding must not shrink coverage: repeated replays stay stable
        # (a folded buffer recycled into the arena would corrupt step 2).
        again = plan.execute({"x": feed.astype(plan.placeholders["x"].dtype)})
        np.testing.assert_array_equal(again.outputs["h"], hidden2.data)

    def test_fusion_groups_chains(self, weights):
        """The matmul→add→relu hot chain compiles into a fused segment."""
        plan = _capture(weights, RNG.standard_normal((4, 3)))
        assert plan.num_fused >= 1
        assert any("fused:" in label for label in plan._segment_labels)

    def test_unregistered_grad_tensor_poisons_capture(self, weights):
        w, b = weights
        x = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        stray = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        recorder = GraphRecorder({"x": x})
        with recording(recorder):
            y, loss = _network(x + stray, w, b)
        assert not recorder.valid
        assert compile_plan(recorder, {"y": y}, loss) is None


class TestStepProgramLifecycle:
    def _program(self, cache, weights, shape=(4, 3)):
        return cache.program(
            ("test", shape),
            lambda: {"x": Tensor(np.zeros(shape), requires_grad=True)})

    def test_capture_once_replay_thereafter(self, weights):
        cache = PlanCache()
        program = self._program(cache, weights)
        feed = RNG.standard_normal((4, 3))
        program.feed(x=feed)
        assert program.replay() is None          # nothing captured yet
        with program.capture() as active:
            assert active
            x = program.tensor("x")
            y, loss = _network(x, *weights)
        program.finalize({"y": y}, root=loss)
        loss.backward()
        assert cache.stats["captures"] == 1
        feed2 = RNG.standard_normal((4, 3))
        program.feed(x=feed2)
        replayed = program.replay()
        y_ref, grad_ref = _eager(weights, feed2)
        np.testing.assert_array_equal(replayed["y"], y_ref)
        np.testing.assert_array_equal(program.tensor("x").grad, grad_ref)
        assert cache.stats == {"programs": 1, "captures": 1, "replays": 1,
                               "fallbacks": 0}

    def test_fallback_on_shape_change(self, weights):
        cache = PlanCache()
        program = self._program(cache, weights)
        program.feed(x=RNG.standard_normal((4, 3)))
        with program.capture():
            x = program.tensor("x")
            y, loss = _network(x, *weights)
        program.finalize({"y": y}, root=loss)
        program.feed(x=RNG.standard_normal((6, 3)))   # new shape
        assert program.replay() is None               # silent eager fallback
        assert cache.stats["fallbacks"] == 1

    def test_invalid_capture_falls_back_forever(self, weights):
        cache = PlanCache()
        program = self._program(cache, weights)
        program.feed(x=RNG.standard_normal((4, 3)))
        stray = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        with program.capture():
            x = program.tensor("x")
            y, loss = _network(x + stray, *weights)
        program.finalize({"y": y}, root=loss)
        assert not program.ready
        assert cache.stats["fallbacks"] == 1
        with program.capture() as active:
            assert not active                  # poisoned: never re-captures
        assert program.replay() is None

    def test_plan_cache_context(self):
        assert plan_cache() is None
        cache = PlanCache()
        with use_plan_cache(cache):
            assert plan_cache() is cache
        assert plan_cache() is None


class TestProfilerCoverage:
    def test_replayed_steps_reach_the_profiler(self, weights):
        """``REPRO_PROFILE_OPS`` must see steps 2..K, not just the capture."""
        plan = _capture(weights, RNG.standard_normal((4, 3)))
        feed = RNG.standard_normal((4, 3)).astype(plan.placeholders["x"].dtype)
        baseline = plan.execute({"x": feed})
        with profile_ops() as profile:
            profiled = plan.execute({"x": feed})
        assert profile.forward, "replay produced no profiler spans"
        assert any("fused:" in name for name in profile.forward)
        assert profile.backward, "replayed VJPs produced no spans"
        # The profiled path runs the same kernels in the same order.
        np.testing.assert_array_equal(profiled.outputs["y"],
                                      baseline.outputs["y"])
        np.testing.assert_array_equal(profiled.grads["x"],
                                      baseline.grads["x"])


class TestPolicyKnobs:
    def test_capture_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_ACCEL", raising=False)
        config = AttackConfig.fast()
        monkeypatch.setenv("REPRO_CAPTURE", "0")
        assert not ComputePolicy.from_attack_config(config).graph_capture
        monkeypatch.setenv("REPRO_CAPTURE", "1")
        assert ComputePolicy.from_attack_config(config).graph_capture
        monkeypatch.delenv("REPRO_CAPTURE")
        off = AttackConfig.fast(graph_capture=False)
        assert not ComputePolicy.from_attack_config(off).graph_capture

    def test_backend_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_ACCEL", raising=False)
        monkeypatch.setenv("REPRO_BACKEND", "torch")
        policy = ComputePolicy.from_attack_config(AttackConfig.fast())
        assert policy.tensor_backend == "torch"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig.fast(tensor_backend="tensorflow")
        with pytest.raises(ValueError):
            ComputePolicy(tensor_backend="jax")

    def test_numpy_backend_always_available(self):
        assert "numpy" in available_backends()


@pytest.mark.skipif(not has_torch(), reason="torch backend not installed "
                    "(pip install 'repro-pcss-attack[torch]')")
class TestTorchExecutor:
    def test_plan_execution_allclose(self, weights):
        plan = _capture(weights, RNG.standard_normal((4, 3)))
        feed = RNG.standard_normal((4, 3)).astype(plan.placeholders["x"].dtype)
        reference = plan.execute({"x": feed})
        torched = plan.execute({"x": feed}, backend="torch")
        np.testing.assert_allclose(torched.outputs["y"],
                                   reference.outputs["y"],
                                   rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(torched.grads["x"], reference.grads["x"],
                                   rtol=1e-5, atol=1e-6)
