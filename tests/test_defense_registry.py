"""Registry-wide defense contract suite.

One parametrized suite runs against every entry of the defense registry
(plus a chained spec): ``apply`` vs ``apply_batch`` bitwise equivalence,
empty- and single-point-scene behaviour, determinism, output invariants per
defense kind, and the adaptive-attack ``sample_eot`` contract.  Adding a
defense: register it in ``repro.defenses.registry`` — the whole contract
applies with no further test code.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses import (
    ChainedDefense,
    Defense,
    DEFENSE_NAMES,
    GaussianJitter,
    VoxelQuantization,
    build_defense,
    register_defense,
)
from repro.defenses.registry import _BUILDERS

pytestmark = pytest.mark.contract

#: Every registry entry plus one chained spec; constructor arguments keep
#: removal counts below the test cloud sizes except where a test overrides.
SPECS = {name: {} for name in DEFENSE_NAMES}
SPECS.update({"srs": {"num_removed": 7, "seed": 3}, "voxel+jitter": {}})


def make_defense(spec_name: str) -> Defense:
    return build_defense(spec_name, **SPECS[spec_name])


@pytest.fixture
def stack(rng):
    coords = rng.normal(size=(4, 40, 3))
    colors = rng.uniform(size=(4, 40, 3))
    labels = rng.integers(0, 5, size=(4, 40))
    return coords, colors, labels


@pytest.mark.parametrize("name", sorted(SPECS))
class TestDefenseContract:
    def test_apply_batch_matches_serial(self, stack, name):
        coords, colors, labels = stack
        batched = make_defense(name).apply_batch(coords, colors, labels)
        assert len(batched) == coords.shape[0]
        for b, filtered in enumerate(batched):
            serial = make_defense(name).apply(coords[b], colors[b], labels[b])
            for key in ("coords", "colors", "labels", "indices"):
                np.testing.assert_array_equal(filtered[key], serial[key],
                                              err_msg=f"{name}/{key}")

    def test_deterministic_without_explicit_rng(self, stack, name):
        coords, colors, labels = stack
        first = make_defense(name).apply(coords[0], colors[0], labels[0])
        second = make_defense(name).apply(coords[0], colors[0], labels[0])
        for key in ("coords", "colors", "labels", "indices"):
            np.testing.assert_array_equal(first[key], second[key])

    def test_empty_scene(self, name):
        defense = make_defense(name)
        filtered = defense.apply(np.zeros((0, 3)), np.zeros((0, 3)),
                                 np.zeros(0, dtype=np.int64))
        assert filtered["indices"].size == 0
        assert filtered["coords"].shape == (0, 3)
        batched = defense.apply_batch(np.zeros((2, 0, 3)), np.zeros((2, 0, 3)),
                                      np.zeros((2, 0), dtype=np.int64))
        assert [f["indices"].size for f in batched] == [0, 0]

    def test_single_point_scene(self, name):
        defense = make_defense(name)
        filtered = defense.apply(np.full((1, 3), 0.5), np.full((1, 3), 0.5),
                                 np.zeros(1, dtype=np.int64))
        # A defense may drop the lone point (SRS over-removal) but must
        # never raise and must keep the arrays consistent.
        kept = filtered["indices"].size
        assert kept in (0, 1)
        assert filtered["coords"].shape == (kept, 3)
        assert filtered["labels"].shape == (kept,)

    def test_output_invariants(self, stack, name):
        coords, colors, labels = stack
        defense = make_defense(name)
        filtered = defense.apply(coords[0], colors[0], labels[0])
        indices = filtered["indices"]
        assert len(np.unique(indices)) == indices.size
        if defense.kind == "removal":
            # Removal defenses return untouched subsets.
            np.testing.assert_array_equal(filtered["coords"],
                                          coords[0][indices])
            np.testing.assert_array_equal(filtered["colors"],
                                          colors[0][indices])
        else:
            # Transformation (and chained) defenses never drop labels
            # silently: the surviving labels are the indexed originals.
            np.testing.assert_array_equal(filtered["labels"],
                                          labels[0][indices])
            assert filtered["coords"].shape == (indices.size, 3)

    def test_sample_eot_contract(self, stack, name):
        """Every defense yields a canonical EOT sample the engines accept."""
        coords, colors, labels = stack
        defense = make_defense(name)
        sample = defense.sample_eot(coords[0], colors[0],
                                    np.random.default_rng(5))
        new_coords, new_colors = sample.apply_arrays(coords[0], colors[0])
        assert new_coords.shape == coords[0].shape
        assert new_colors.shape == colors[0].shape
        mask = np.ones(coords.shape[1], dtype=bool)
        restricted = sample.restrict(mask)
        assert restricted.shape == mask.shape
        if defense.kind == "removal":
            assert sample.keep_mask is not None
            np.testing.assert_array_equal(
                np.flatnonzero(restricted),
                defense.keep_indices(coords[0], colors[0],
                                     rng=np.random.default_rng(5)))

    def test_transform_matches_sample_for_transformations(self, stack, name):
        """For pure transformations, apply == the affine sample, same draw."""
        coords, colors, labels = stack
        defense = make_defense(name)
        if defense.kind != "transformation":
            pytest.skip("removal/chained defenses are covered elsewhere")
        out = defense.apply(coords[0], colors[0], labels[0],
                            rng=np.random.default_rng(11))
        sample = defense.sample_eot(coords[0], colors[0],
                                    np.random.default_rng(11))
        sampled_coords, sampled_colors = sample.apply_arrays(coords[0],
                                                             colors[0])
        np.testing.assert_allclose(out["coords"], sampled_coords,
                                   rtol=0, atol=1e-12)
        np.testing.assert_allclose(out["colors"], sampled_colors,
                                   rtol=0, atol=1e-12)


class TestRegistry:
    def test_names_and_build(self):
        assert set(DEFENSE_NAMES) == {"srs", "sor", "voxel", "rotation",
                                      "jitter"}
        for name in DEFENSE_NAMES:
            assert build_defense(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown defense"):
            build_defense("nope")

    def test_chained_spec(self):
        chain = build_defense("voxel+jitter")
        assert isinstance(chain, ChainedDefense)
        assert chain.name == "voxel+jitter"
        assert chain.stochastic          # jitter member
        with pytest.raises(ValueError, match="keyword"):
            build_defense("voxel+jitter", cell_size=0.1)

    def test_register_custom_and_duplicate(self):
        class _Null(Defense):
            name = "null_test_defense"
            kind = "transformation"

            def transform(self, coords, colors, rng=None):
                return np.asarray(coords), np.asarray(colors)

        from repro.defenses import registry

        register_defense("null_test_defense", _Null)
        try:
            assert isinstance(build_defense("null_test_defense"), _Null)
            # Late registrations are visible to name-listing consumers.
            assert "null_test_defense" in registry.defense_names()
            assert "null_test_defense" in registry.DEFENSE_NAMES
            with pytest.raises(ValueError, match="already registered"):
                register_defense("null_test_defense", _Null)
            with pytest.raises(ValueError, match="must not contain"):
                register_defense("a+b", _Null)
        finally:
            _BUILDERS.pop("null_test_defense", None)
            registry.DEFENSE_NAMES = tuple(_BUILDERS)


class TestChainedDefense:
    def test_indices_compose_through_removals(self, rng):
        coords = rng.normal(size=(30, 3))
        colors = rng.uniform(size=(30, 3))
        labels = rng.integers(0, 4, size=30)
        chain = ChainedDefense([build_defense("srs", num_removed=5, seed=1),
                                build_defense("srs", num_removed=5, seed=2)])
        out = chain.apply(coords, colors, labels)
        assert out["indices"].size == 20
        np.testing.assert_array_equal(out["coords"], coords[out["indices"]])
        np.testing.assert_array_equal(out["labels"], labels[out["indices"]])

    def test_transform_then_removal(self, rng):
        coords = rng.normal(size=(25, 3))
        colors = rng.uniform(size=(25, 3))
        labels = rng.integers(0, 4, size=25)
        chain = ChainedDefense([VoxelQuantization(cell_size=0.1),
                                build_defense("srs", num_removed=3, seed=0)])
        out = chain.apply(coords, colors, labels)
        assert out["indices"].size == 22
        # Quantization happened before the removal.
        quantized = VoxelQuantization(cell_size=0.1).transform(coords, colors)[0]
        np.testing.assert_array_equal(out["coords"],
                                      quantized[out["indices"]])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ChainedDefense([])

    def test_chain_eot_composes_affine_and_mask(self, rng):
        coords = rng.normal(size=(20, 3))
        colors = rng.uniform(size=(20, 3))
        chain = ChainedDefense([build_defense("rotation"),
                                GaussianJitter(sigma=0.01),
                                build_defense("sor")])
        sample = chain.sample_eot(coords, colors, np.random.default_rng(3))
        assert sample.coord_matrix is not None
        assert sample.coord_offset is not None
        assert sample.keep_mask is not None
        # The composed affine equals applying the members step by step with
        # the same stream.
        stream = np.random.default_rng(3)
        step_coords, step_colors = coords, colors
        for member in chain.defenses:
            member_sample = member.sample_eot(step_coords, step_colors, stream)
            step_coords, step_colors = member_sample.apply_arrays(step_coords,
                                                                  step_colors)
        composed_coords, composed_colors = sample.apply_arrays(coords, colors)
        np.testing.assert_allclose(composed_coords, step_coords, atol=1e-12)
        np.testing.assert_allclose(composed_colors, step_colors, atol=1e-12)
