"""Tests for the extension features: the PCT model and the alternating schedule."""

import numpy as np

from repro.core import AttackConfig, run_attack
from repro.datasets import prepare_batch, s3dis_train_test_split
from repro.models import PointTransformerSeg, TrainingConfig, build_model, train_model
from repro.nn import Tensor


class TestPointTransformer:
    def test_registry_builds_pct(self):
        model = build_model("pct", num_classes=13, hidden=16)
        assert isinstance(model, PointTransformerSeg)

    def test_forward_shape(self, office_scene):
        model = build_model("pct", num_classes=13, hidden=16)
        batch = prepare_batch([office_scene], model.spec)
        logits = model.logits_numpy(batch.coords, batch.colors)
        assert logits.shape == (1, office_scene.num_points, 13)
        assert np.isfinite(logits).all()

    def test_gradients_flow_to_both_fields(self, office_scene):
        model = build_model("pct", num_classes=13, hidden=16)
        model.eval()
        batch = prepare_batch([office_scene], model.spec)
        coords = Tensor(batch.coords, requires_grad=True)
        colors = Tensor(batch.colors, requires_grad=True)
        model(coords, colors).sum().backward()
        assert np.abs(coords.grad).max() > 0
        assert np.abs(colors.grad).max() > 0

    def test_attention_depth_configurable(self, office_scene):
        deep = PointTransformerSeg(num_classes=13, hidden=16, num_blocks=3)
        batch = prepare_batch([office_scene], deep.spec)
        logits = deep.logits_numpy(batch.coords[:, :64], batch.colors[:, :64])
        assert logits.shape == (1, 64, 13)

    def test_training_reduces_loss(self, tiny_s3dis):
        train, _ = s3dis_train_test_split(tiny_s3dis)
        model = build_model("pct", num_classes=13, hidden=16)
        history = train_model(model, train.scenes,
                              TrainingConfig(epochs=4, learning_rate=8e-3, seed=0))
        assert history.losses[-1] < history.losses[0]

    def test_attack_degrades_pct(self, tiny_s3dis, office_scene):
        """Section VI claim: gradient-based attacks extend to transformer models."""
        train, _ = s3dis_train_test_split(tiny_s3dis)
        model = build_model("pct", num_classes=13, hidden=16)
        train_model(model, train.scenes,
                    TrainingConfig(epochs=8, learning_rate=8e-3, seed=0))
        config = AttackConfig.fast(objective="degradation", method="unbounded",
                                   field="color", unbounded_steps=30,
                                   smoothness_alpha=4)
        result = run_attack(model, office_scene, config)
        assert result.outcome.accuracy < result.outcome.clean_accuracy


class TestAlternatingSchedule:
    def test_config_flag_default_off(self):
        assert not AttackConfig.fast().alternating_fields
        assert AttackConfig.fast(alternating_fields=True).alternating_fields

    def test_alternating_attack_runs(self, trained_resgcn, office_scene):
        config = AttackConfig.fast(objective="degradation", method="unbounded",
                                   field="both", unbounded_steps=10,
                                   alternating_fields=True, smoothness_alpha=4)
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.iterations == 10
        assert np.isfinite(result.l2)

    def test_alternating_differs_from_simultaneous(self, trained_resgcn, office_scene):
        common = dict(objective="degradation", method="unbounded", field="both",
                      unbounded_steps=8, smoothness_alpha=4, seed=3)
        simultaneous = run_attack(trained_resgcn, office_scene,
                                  AttackConfig.fast(**common))
        alternating = run_attack(trained_resgcn, office_scene,
                                 AttackConfig.fast(alternating_fields=True, **common))
        assert not np.allclose(simultaneous.adversarial_colors,
                               alternating.adversarial_colors)
