"""Tests for the experiment harness (context, reporting, selected runners).

The full table runners are exercised by the benchmark suite; here they are
run at the ``tiny`` scale to validate the plumbing end to end.
"""

import os

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    TableResult,
    format_table,
    run_epsilon_ablation,
    run_overhead,
    run_table6,
    run_table8,
)
from repro.experiments.run import EXPERIMENTS, build_parser


@pytest.fixture(scope="module")
def tiny_context(tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("cache"))
    config = ExperimentConfig.tiny(cache_dir=cache, attack_scenes=1, hiding_scenes=1)
    return ExperimentContext(config)


class TestConfig:
    def test_default_vs_paper_scale(self):
        default = ExperimentConfig.default()
        paper = ExperimentConfig.paper_scale()
        assert paper.s3dis_points == 4096
        assert paper.attack_scenes == 100
        assert paper.attack_profile == "paper"
        assert default.s3dis_points < paper.s3dis_points

    def test_tiny_overrides(self):
        config = ExperimentConfig.tiny(attack_scenes=7)
        assert config.attack_scenes == 7

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert ExperimentConfig.default().cache_dir == str(tmp_path)


class TestContext:
    def test_datasets_are_cached_objects(self, tiny_context):
        assert tiny_context.s3dis() is tiny_context.s3dis()
        assert tiny_context.semantic3d() is tiny_context.semantic3d()

    def test_attack_pool_sizes(self, tiny_context):
        pool = tiny_context.s3dis_attack_pool(count=2)
        assert len(pool) == 2
        assert all(s.num_points == tiny_context.config.s3dis_points for s in pool)

    def test_model_is_cached_in_memory_and_disk(self, tiny_context):
        model_a = tiny_context.model("resgcn", "s3dis")
        model_b = tiny_context.model("resgcn", "s3dis")
        assert model_a is model_b
        cached_files = os.listdir(tiny_context.config.cache_dir)
        assert any(name.startswith("resgcn_s3dis") for name in cached_files)

    def test_seed_offset_gives_different_weights(self, tiny_context):
        base = tiny_context.model("pointnet2", "s3dis", seed_offset=0)
        other = tiny_context.model("pointnet2", "s3dis", seed_offset=1)
        key = "classifier.weight"
        assert not np.allclose(base.state_dict()[key], other.state_dict()[key])

    def test_attack_config_profile(self, tiny_context):
        fast = tiny_context.attack_config(objective="degradation")
        assert fast.unbounded_steps < 1000
        paper_context = ExperimentContext(ExperimentConfig.tiny(
            attack_profile="paper", cache_dir=tiny_context.config.cache_dir))
        assert paper_context.attack_config().unbounded_steps == 1000

    def test_unknown_dataset_rejected(self, tiny_context):
        with pytest.raises(ValueError):
            tiny_context.model("resgcn", "kitti")


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1.23456, "b": "x"}, {"a": 2.0, "b": "longer"}]
        text = format_table(["a", "b"], rows, title="Demo")
        lines = text.split("\n")
        assert lines[0] == "Demo"
        assert "1.23" in text and "longer" in text

    def test_table_result_columns_default_to_first_row(self):
        table = TableResult("t", "Title", rows=[{"x": 1, "y": 2}])
        assert table.column_names() == ["x", "y"]
        assert table.column("x") == [1]

    def test_markdown_rendering(self):
        table = TableResult("t", "Title", rows=[{"x": 1.5}], columns=["x"])
        markdown = table.markdown()
        assert markdown.startswith("### Title")
        assert "| 1.50 |" in markdown

    def test_none_rendered_as_dash(self):
        text = format_table(["a"], [{"a": None}])
        assert "-" in text.split("\n")[-1]


class TestRunners:
    def test_table8_structure(self, tiny_context):
        table = run_table8(tiny_context)
        assert {row["defense"] for row in table.rows} == {"none", "srs", "sor"}
        assert {row["attack"] for row in table.rows} == {"bounded", "unbounded"}
        assert all(0.0 <= row["accuracy_pct"] <= 100.0 for row in table.rows)
        assert "clean_accuracy" in table.metadata

    def test_table6_structure(self, tiny_context):
        table = run_table6(tiny_context)
        methods = {row["method"] for row in table.rows}
        assert methods == {"noise", "unbounded"}
        cases = [row["case"] for row in table.rows if row["method"] == "unbounded"]
        assert cases == ["best", "avg", "worst"]

    def test_epsilon_ablation_monotone_columns(self, tiny_context):
        table = run_epsilon_ablation(tiny_context, values=(0.05, 0.2))
        assert [row["epsilon"] for row in table.rows] == [0.05, 0.2]
        assert all(row["linf"] <= row["epsilon"] + 1e-9 for row in table.rows)

    def test_overhead_reports_both_methods(self, tiny_context):
        table = run_overhead(tiny_context, steps=2)
        assert {row["method"] for row in table.rows} == {"bounded", "unbounded"}
        assert all(row["seconds_per_step"] > 0 for row in table.rows)

    def test_formatted_output_nonempty(self, tiny_context):
        table = run_overhead(tiny_context, steps=1)
        assert "seconds_per_step" in table.formatted()

    def test_table_defenses_structure(self, tiny_context):
        from repro.experiments import run_table_defenses
        from repro.experiments.table_defenses import defense_specs

        config = ExperimentConfig.tiny(
            cache_dir=tiny_context.config.cache_dir, attack_scenes=1,
            hiding_scenes=1, eot_samples=2)
        context = ExperimentContext(config)
        table = run_table_defenses(context)
        labels = {spec.get("label", spec["name"])
                  for spec in defense_specs(config)}
        assert {row["defense"] for row in table.rows} == labels
        assert {row["attack"] for row in table.rows} == {"static", "adaptive"}
        assert table.metadata["eot_samples"] == 2
        for row in table.rows:
            if not np.isnan(row["defended_acc_pct"]):
                assert 0.0 <= row["defended_acc_pct"] <= 100.0
            assert 0.0 <= row["clean_defended_acc_pct"] <= 100.0
        # The static rows all describe the same (single) attack cell.
        static_l2 = {row["l2"] for row in table.rows
                     if row["attack"] == "static"}
        assert len(static_l2) == 1

    def test_table_blackbox_structure(self, tiny_context):
        from repro.experiments import run_table_blackbox
        from repro.experiments.table_blackbox import MODES, query_budgets

        config = ExperimentConfig.tiny(
            cache_dir=tiny_context.config.cache_dir, attack_scenes=1,
            hiding_scenes=1, query_budget=24, samples_per_step=1)
        context = ExperimentContext(config)
        table = run_table_blackbox(context)
        assert {row["mode"] for row in table.rows} == set(MODES)
        budgets = query_budgets(config)
        assert budgets == (6, 12, 24)
        for row in table.rows:
            assert row["query_budget"] in budgets
            assert row["queries_used"] <= row["query_budget"]
            assert 0.0 <= row["accuracy_pct"] <= 100.0
            assert 0.0 <= row["success_pct"] <= 100.0


class TestCLI:
    def test_registry_covers_all_tables(self):
        for name in ("table2", "table3", "table4", "table5", "table6", "table7",
                     "table8", "table9", "table_blackbox", "table_defenses",
                     "figures", "overhead", "extension_pct",
                     "extension_alternating"):
            assert name in EXPERIMENTS

    def test_run_experiment_writes_output_file(self, tiny_context, tmp_path,
                                               monkeypatch, capsys):
        from repro.experiments import run as run_module

        fake = TableResult("fake", "Fake table", rows=[{"value": 1.0}])
        monkeypatch.setitem(run_module.EXPERIMENTS, "fake", lambda ctx: fake)
        result = run_module.run_experiment("fake", tiny_context, str(tmp_path))
        assert result is fake
        assert (tmp_path / "fake.txt").exists()
        assert "Fake table" in capsys.readouterr().out

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "table3"
        assert not args.paper_scale

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--experiment", "table42"])
