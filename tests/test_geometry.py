"""Unit tests for repro.geometry (kNN, sampling, normalisation)."""

import numpy as np
import pytest

from repro.geometry import (
    MODEL_SPECS,
    POINTNET2_SPEC,
    RESGCN_SPEC,
    NormalizationSpec,
    ball_query,
    denormalize_colors,
    dilated_knn_indices,
    duplicate_to_size,
    farthest_point_sampling,
    grid_subsampling,
    knn_indices,
    knn_indices_batch,
    neighbourhood_change_ratio,
    normalize_colors,
    normalize_coords,
    normalize_to_range,
    pairwise_squared_distances,
    random_sampling,
    remap_range,
    simple_random_sampling_removal,
)


class TestPairwiseDistances:
    def test_matches_bruteforce(self, rng):
        a = rng.normal(size=(10, 3))
        b = rng.normal(size=(7, 3))
        expected = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
        np.testing.assert_allclose(pairwise_squared_distances(a, b), expected, atol=1e-9)

    def test_self_distance_zero_diagonal(self, rng):
        a = rng.normal(size=(6, 3))
        d = pairwise_squared_distances(a, a)
        np.testing.assert_allclose(np.diag(d), np.zeros(6), atol=1e-9)

    def test_never_negative(self, rng):
        a = rng.normal(size=(20, 3)) * 1e-4
        assert (pairwise_squared_distances(a, a) >= 0).all()


class TestKnn:
    def test_matches_bruteforce(self, rng):
        points = rng.normal(size=(30, 3))
        idx = knn_indices(points, 5)
        d2 = pairwise_squared_distances(points, points)
        expected = np.argsort(d2, axis=1)[:, :5]
        for row in range(30):
            assert set(idx[row]) == set(expected[row])

    def test_includes_self_by_default(self, rng):
        points = rng.normal(size=(10, 3))
        idx = knn_indices(points, 3)
        assert all(row_index in idx[row_index] for row_index in range(10))

    def test_exclude_self(self, rng):
        points = rng.normal(size=(10, 3))
        idx = knn_indices(points, 3, include_self=False)
        assert all(row_index not in idx[row_index] for row_index in range(10))
        assert idx.shape == (10, 3)

    def test_k_clamped_to_population(self, rng):
        points = rng.normal(size=(4, 3))
        assert knn_indices(points, 10).shape == (4, 4)

    def test_separate_queries(self, rng):
        points = rng.normal(size=(20, 3))
        queries = rng.normal(size=(5, 3))
        idx = knn_indices(points, 4, queries=queries)
        assert idx.shape == (5, 4)
        d2 = pairwise_squared_distances(queries, points)
        nearest = np.argmin(d2, axis=1)
        assert all(nearest[i] == idx[i, 0] for i in range(5))

    def test_k_equal_one_shape(self, rng):
        points = rng.normal(size=(8, 3))
        assert knn_indices(points, 1).shape == (8, 1)

    def test_batched(self, rng):
        points = rng.normal(size=(3, 12, 3))
        idx = knn_indices_batch(points, 4)
        assert idx.shape == (3, 12, 4)

    def test_dilated_keeps_every_other(self, rng):
        points = rng.normal(size=(40, 3))
        base = knn_indices(points, 8)
        dilated = dilated_knn_indices(points, 4, dilation=2)
        assert dilated.shape == (40, 4)
        np.testing.assert_array_equal(dilated, base[:, ::2][:, :4])

    def test_dilated_stochastic_subset_of_wide(self, rng):
        points = rng.normal(size=(30, 3))
        wide = knn_indices(points, 12)
        sampled = dilated_knn_indices(points, 4, dilation=3, stochastic=True,
                                      rng=np.random.default_rng(0))
        for row in range(30):
            assert set(sampled[row]).issubset(set(wide[row]))


class TestBallQuery:
    def test_all_within_radius(self, rng):
        points = rng.uniform(size=(50, 3))
        centroids = points[:5]
        idx = ball_query(points, centroids, radius=0.3, max_samples=8)
        assert idx.shape == (5, 8)
        for row in range(5):
            d = np.linalg.norm(points[idx[row]] - centroids[row], axis=1)
            # Padding repeats an in-ball point, so every entry is within radius.
            assert (d <= 0.3 + 1e-9).all()

    def test_pads_with_first_index(self):
        points = np.array([[0.0, 0, 0], [10.0, 0, 0], [20.0, 0, 0]])
        idx = ball_query(points, points[:1], radius=0.5, max_samples=4)
        np.testing.assert_array_equal(idx[0], [0, 0, 0, 0])


class TestSampling:
    def test_fps_indices_unique_and_in_range(self, rng):
        points = rng.normal(size=(60, 3))
        idx = farthest_point_sampling(points, 20)
        assert len(set(idx.tolist())) == 20
        assert idx.min() >= 0 and idx.max() < 60

    def test_fps_clamps_to_population(self, rng):
        points = rng.normal(size=(5, 3))
        assert farthest_point_sampling(points, 50).shape == (5,)

    def test_fps_spreads_points(self, rng):
        # FPS of 2 points from a line should pick (near) the two extremes.
        points = np.linspace(0, 1, 100)[:, None] * np.array([1.0, 0, 0])
        idx = farthest_point_sampling(points, 2, seed=None)
        assert 99 in idx

    def test_fps_deterministic_given_seed(self, rng):
        points = rng.normal(size=(40, 3))
        a = farthest_point_sampling(points, 10, seed=3)
        b = farthest_point_sampling(points, 10, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_random_sampling_no_replacement(self):
        idx = random_sampling(50, 20, np.random.default_rng(0))
        assert len(set(idx.tolist())) == 20

    def test_random_sampling_clamps(self):
        assert random_sampling(5, 10).shape == (5,)

    def test_grid_subsampling_reduces_and_bounds(self, rng):
        points = rng.uniform(size=(200, 3))
        idx = grid_subsampling(points, 0.25)
        assert 0 < idx.size < 200
        assert idx.max() < 200

    def test_grid_subsampling_rejects_bad_cell(self):
        with pytest.raises(ValueError):
            grid_subsampling(np.zeros((5, 3)), 0.0)

    def test_duplicate_to_size_upsamples(self):
        idx = duplicate_to_size(10, 25, np.random.default_rng(0))
        assert idx.shape == (25,)
        assert set(range(10)).issubset(set(idx.tolist()))

    def test_duplicate_to_size_downsamples(self):
        idx = duplicate_to_size(30, 10, np.random.default_rng(0))
        assert idx.shape == (10,)
        assert len(set(idx.tolist())) == 10

    def test_srs_removal_count(self):
        kept = simple_random_sampling_removal(100, 10, np.random.default_rng(0))
        assert kept.shape == (90,)
        assert len(set(kept.tolist())) == 90

    def test_srs_removal_clamps_to_cloud_size(self):
        """Over-asking removes everything — clamped, never an index error."""
        kept = simple_random_sampling_removal(5, 50, np.random.default_rng(0))
        assert kept.size == 0

    def test_neighbourhood_change_ratio_zero_for_identity(self, rng):
        points = rng.normal(size=(30, 3))
        assert neighbourhood_change_ratio(points, points, k=5) == 0.0

    def test_neighbourhood_change_ratio_positive_for_shuffle(self, rng):
        points = rng.normal(size=(40, 3))
        perturbed = points + rng.normal(scale=2.0, size=points.shape)
        assert neighbourhood_change_ratio(points, perturbed, k=5) > 0.3


class TestTransforms:
    def test_normalize_to_range_bounds(self, rng):
        values = rng.normal(size=(50, 3)) * 10
        out = normalize_to_range(values, -1.0, 1.0)
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_normalize_constant_input_maps_to_midpoint(self):
        out = normalize_to_range(np.full((5, 3), 7.0), 0.0, 3.0)
        np.testing.assert_allclose(out, np.full((5, 3), 1.5))

    def test_normalize_colors_range(self, rng):
        colors = rng.uniform(0, 255, size=(20, 3))
        out = normalize_colors(colors, POINTNET2_SPEC)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_denormalize_colors_roundtrip(self, rng):
        colors = rng.uniform(0, 255, size=(20, 3))
        out = denormalize_colors(normalize_colors(colors, POINTNET2_SPEC), POINTNET2_SPEC)
        np.testing.assert_allclose(out, colors, atol=1e-9)

    def test_normalize_coords_uses_spec(self, rng):
        coords = rng.normal(size=(30, 3)) * 4
        out = normalize_coords(coords, RESGCN_SPEC)
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_remap_range(self):
        values = np.array([-1.0, 0.0, 1.0])
        np.testing.assert_allclose(remap_range(values, (-1, 1), (0, 3)), [0.0, 1.5, 3.0])

    def test_remap_range_rejects_degenerate_source(self):
        with pytest.raises(ValueError):
            remap_range(np.zeros(3), (1.0, 1.0), (0.0, 1.0))

    def test_model_specs_registry(self):
        assert set(MODEL_SPECS) == {"pointnet2", "resgcn", "randlanet"}
        assert isinstance(MODEL_SPECS["resgcn"], NormalizationSpec)
        assert MODEL_SPECS["pointnet2"].coord_range == (0.0, 3.0)
        assert MODEL_SPECS["resgcn"].coord_range == (-1.0, 1.0)
