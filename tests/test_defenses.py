"""Unit and integration tests for the SRS and SOR defenses."""

import numpy as np
import pytest

from repro.core import AttackConfig, run_attack
from repro.datasets import prepare_scene
from repro.defenses import (
    DefenseEvaluation,
    SimpleRandomSampling,
    StatisticalOutlierRemoval,
    evaluate_with_defense,
)


class TestSRS:
    def test_removes_requested_count(self, rng):
        defense = SimpleRandomSampling(num_removed=10, seed=0)
        kept = defense.keep_indices(rng.normal(size=(100, 3)), rng.uniform(size=(100, 3)))
        assert kept.shape == (90,)

    def test_fraction_mode(self, rng):
        defense = SimpleRandomSampling(fraction=0.25, seed=0)
        kept = defense.keep_indices(rng.normal(size=(80, 3)), rng.uniform(size=(80, 3)))
        assert kept.shape == (60,)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SimpleRandomSampling(num_removed=-1)

    @pytest.mark.parametrize("fraction", [-0.1, 1.5, 7.0])
    def test_out_of_range_fraction_rejected(self, fraction):
        """Regression: fraction outside [0, 1] used to be accepted silently."""
        with pytest.raises(ValueError, match="fraction"):
            SimpleRandomSampling(fraction=fraction)

    @pytest.mark.parametrize("fraction", [0.0, 1.0])
    def test_boundary_fractions_accepted(self, fraction, rng):
        defense = SimpleRandomSampling(fraction=fraction, seed=0)
        kept = defense.keep_indices(rng.normal(size=(20, 3)),
                                    rng.uniform(size=(20, 3)))
        assert kept.size == (20 if fraction == 0.0 else 0)

    def test_num_removed_clamped_to_cloud_size(self, rng):
        """Regression: over-removal now empties the cloud instead of
        keeping an arbitrary survivor (or failing downstream)."""
        defense = SimpleRandomSampling(num_removed=1000, seed=0)
        kept = defense.keep_indices(rng.normal(size=(12, 3)),
                                    rng.uniform(size=(12, 3)))
        assert kept.size == 0

    def test_apply_returns_consistent_arrays(self, rng):
        defense = SimpleRandomSampling(num_removed=5, seed=0)
        coords = rng.normal(size=(30, 3))
        colors = rng.uniform(size=(30, 3))
        labels = rng.integers(0, 3, size=30)
        filtered = defense.apply(coords, colors, labels)
        kept = filtered["indices"]
        np.testing.assert_allclose(filtered["coords"], coords[kept])
        np.testing.assert_allclose(filtered["labels"], labels[kept])

    def test_deterministic_with_seed(self, rng):
        coords = rng.normal(size=(50, 3))
        colors = rng.uniform(size=(50, 3))
        a = SimpleRandomSampling(num_removed=5, seed=3).keep_indices(coords, colors)
        b = SimpleRandomSampling(num_removed=5, seed=3).keep_indices(coords, colors)
        np.testing.assert_array_equal(a, b)


class TestSOR:
    def test_detects_planted_color_outliers(self, rng):
        coords = rng.uniform(size=(100, 3))
        colors = np.full((100, 3), 0.5)
        colors[:5] = 5.0      # wildly out-of-gamut colours
        defense = StatisticalOutlierRemoval(k=2, std_multiplier=1.0)
        kept = set(defense.keep_indices(coords, colors).tolist())
        removed = set(range(100)) - kept
        assert removed  # something was flagged
        assert removed.issubset(set(range(5)) | removed) and any(i < 5 for i in removed)

    def test_detects_spatial_outliers_without_color(self, rng):
        coords = rng.uniform(size=(60, 3))
        coords[0] = [50.0, 50.0, 50.0]
        defense = StatisticalOutlierRemoval(k=2, use_color=False, std_multiplier=1.5)
        kept = defense.keep_indices(coords, np.zeros((60, 3)))
        assert 0 not in kept

    def test_clean_uniform_cloud_mostly_kept(self, rng):
        coords = rng.uniform(size=(200, 3))
        colors = rng.uniform(size=(200, 3)) * 0.01 + 0.5
        defense = StatisticalOutlierRemoval(k=2, std_multiplier=2.0)
        kept = defense.keep_indices(coords, colors)
        assert kept.size > 180

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            StatisticalOutlierRemoval(k=0)

    def test_outlier_scores_shape(self, rng):
        defense = StatisticalOutlierRemoval(k=3)
        scores = defense.outlier_scores(rng.normal(size=(40, 3)), rng.uniform(size=(40, 3)))
        assert scores.shape == (40,)
        assert (scores >= 0).all()

    def test_tiny_cloud_keeps_everything(self):
        defense = StatisticalOutlierRemoval(k=2)
        kept = defense.keep_indices(np.zeros((1, 3)), np.zeros((1, 3)))
        assert kept.size == 1


class TestApplyBatch:
    """``apply_batch`` must score every scene exactly like a serial ``apply``."""

    @staticmethod
    def _stack(rng, batch, points):
        coords = rng.normal(size=(batch, points, 3))
        colors = rng.uniform(size=(batch, points, 3))
        labels = rng.integers(0, 5, size=(batch, points))
        return coords, colors, labels

    @pytest.mark.parametrize("defense_factory", [
        lambda: SimpleRandomSampling(num_removed=7, seed=3),
        lambda: StatisticalOutlierRemoval(k=2, std_multiplier=1.0),
    ], ids=["srs", "sor"])
    def test_batch_matches_serial(self, rng, defense_factory):
        coords, colors, labels = self._stack(rng, batch=4, points=40)
        batched = defense_factory().apply_batch(coords, colors, labels)
        assert len(batched) == 4
        for b, filtered in enumerate(batched):
            serial = defense_factory().apply(coords[b], colors[b], labels[b])
            np.testing.assert_array_equal(filtered["indices"], serial["indices"])
            np.testing.assert_array_equal(filtered["coords"], serial["coords"])
            np.testing.assert_array_equal(filtered["colors"], serial["colors"])
            np.testing.assert_array_equal(filtered["labels"], serial["labels"])

    def test_srs_shared_rng_differs_from_per_scene_reseed(self, rng):
        """An explicit shared generator threads one stream through the batch."""
        coords, colors, labels = self._stack(rng, batch=3, points=30)
        defense = SimpleRandomSampling(num_removed=5, seed=0)
        reseeded = defense.apply_batch(coords, colors, labels)
        shared = defense.apply_batch(coords, colors, labels,
                                     rng=np.random.default_rng(0))
        # Per-scene reseeding drops the same indices in every scene; a
        # shared stream keeps advancing instead.
        assert all(np.array_equal(reseeded[0]["indices"], r["indices"])
                   for r in reseeded)
        assert any(not np.array_equal(a["indices"], b["indices"])
                   for a, b in zip(reseeded, shared))

    @pytest.mark.parametrize("defense_factory, kept", [
        # SRS clamps removals to the cloud size: asking for 7 of 1 point
        # empties the scene (the documented clamp semantics) instead of
        # silently keeping an arbitrary survivor.
        (lambda: SimpleRandomSampling(num_removed=7, seed=3), 0),
        (lambda: StatisticalOutlierRemoval(k=2, std_multiplier=1.0), 1),
    ], ids=["srs", "sor"])
    def test_single_point_scenes(self, defense_factory, kept):
        coords = np.zeros((2, 1, 3))
        colors = np.full((2, 1, 3), 0.5)
        labels = np.zeros((2, 1), dtype=np.int64)
        for filtered in defense_factory().apply_batch(coords, colors, labels):
            np.testing.assert_array_equal(filtered["indices"],
                                          np.arange(kept))
            assert filtered["coords"].shape == (kept, 3)

    @pytest.mark.parametrize("defense_factory", [
        lambda: SimpleRandomSampling(num_removed=7, seed=3),
        lambda: StatisticalOutlierRemoval(k=2, std_multiplier=1.0),
    ], ids=["srs", "sor"])
    def test_empty_scenes(self, defense_factory):
        """Zero-point clouds filter to zero points instead of raising."""
        defense = defense_factory()
        filtered = defense.apply(np.zeros((0, 3)), np.zeros((0, 3)),
                                 np.zeros(0, dtype=np.int64))
        assert filtered["indices"].size == 0
        assert filtered["coords"].shape == (0, 3)
        batched = defense.apply_batch(np.zeros((2, 0, 3)), np.zeros((2, 0, 3)),
                                      np.zeros((2, 0), dtype=np.int64))
        assert [f["indices"].size for f in batched] == [0, 0]

    def test_empty_batch(self):
        batched = StatisticalOutlierRemoval(k=2).apply_batch(
            np.zeros((0, 5, 3)), np.zeros((0, 5, 3)),
            np.zeros((0, 5), dtype=np.int64))
        assert batched == []


class TestEvaluateWithDefense:
    def test_no_defense_keeps_all_points(self, trained_resgcn, office_scene):
        prepared = prepare_scene(office_scene, trained_resgcn.spec)
        evaluation = evaluate_with_defense(trained_resgcn, None, prepared.coords,
                                           prepared.colors, prepared.labels)
        assert isinstance(evaluation, DefenseEvaluation)
        assert evaluation.points_removed == 0
        assert evaluation.defense_name == "none"
        assert 0.0 <= evaluation.accuracy <= 1.0

    def test_srs_removes_points(self, trained_resgcn, office_scene):
        prepared = prepare_scene(office_scene, trained_resgcn.spec)
        defense = SimpleRandomSampling(num_removed=10, seed=0)
        evaluation = evaluate_with_defense(trained_resgcn, defense, prepared.coords,
                                           prepared.colors, prepared.labels)
        assert evaluation.points_removed == 10
        assert evaluation.defense_name == "srs"

    def test_defenses_do_not_fully_restore_accuracy(self, trained_resgcn, office_scene):
        """Finding 7: neither defense restores the clean accuracy."""
        attack = AttackConfig.fast(objective="degradation", method="unbounded",
                                   field="color", unbounded_steps=40)
        result = run_attack(trained_resgcn, office_scene, attack)
        clean_accuracy = result.outcome.clean_accuracy
        for defense in (SimpleRandomSampling(num_removed=10, seed=0),
                        StatisticalOutlierRemoval(k=2)):
            evaluation = evaluate_with_defense(
                trained_resgcn, defense, result.adversarial_coords,
                result.adversarial_colors, result.labels)
            assert evaluation.accuracy < clean_accuracy - 0.1
