"""Unit tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    cross_entropy,
    dropout,
    hinge,
    knn_interpolate,
    log_softmax,
    masked_mean,
    mse_loss,
    nll_loss,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_sums_to_one(self, rng):
        logits = Tensor(rng.normal(size=(4, 7)))
        probs = softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4))
        assert np.all(probs >= 0)

    def test_invariant_to_shift(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(softmax(Tensor(x)).data,
                                   softmax(Tensor(x + 100.0)).data, atol=1e-9)

    def test_numerically_stable_with_large_logits(self):
        probs = softmax(Tensor(np.array([[1e4, 0.0, -1e4]]))).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(2, 6))
        np.testing.assert_allclose(log_softmax(Tensor(x)).data,
                                   np.log(softmax(Tensor(x)).data), atol=1e-9)

    def test_softmax_gradient_shape(self, rng):
        t = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        softmax(t).sum().backward()
        assert t.grad.shape == (2, 4)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_batched(self):
        out = one_hot(np.array([[0, 1], [2, 0]]), 3)
        assert out.shape == (2, 2, 3)
        assert out.sum() == 4


class TestCrossEntropy:
    def test_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_is_log_classes(self):
        logits = Tensor(np.zeros((5, 4)))
        loss = cross_entropy(logits, np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-6)

    def test_gradient_points_down(self, rng):
        logits = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        labels = rng.integers(0, 3, size=6)
        loss = cross_entropy(logits, labels)
        loss.backward()
        stepped = Tensor(logits.data - 0.5 * logits.grad)
        assert cross_entropy(stepped, labels).item() < loss.item()

    def test_label_smoothing_increases_loss_of_confident_model(self):
        logits = Tensor(np.array([[20.0, -20.0]]))
        labels = np.array([0])
        plain = cross_entropy(logits, labels).item()
        smoothed = cross_entropy(logits, labels, label_smoothing=0.2).item()
        assert smoothed > plain

    def test_class_weights_change_loss(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 0])
        unweighted = cross_entropy(logits, labels).item()
        weighted = cross_entropy(logits, labels, weight=np.array([10.0, 1.0, 1.0])).item()
        assert weighted != pytest.approx(unweighted)

    def test_nll_matches_cross_entropy(self, rng):
        x = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        ce = cross_entropy(Tensor(x), labels).item()
        nll = nll_loss(log_softmax(Tensor(x)), labels).item()
        assert ce == pytest.approx(nll, rel=1e-9)


class TestSmallOps:
    def test_mse(self):
        loss = mse_loss(Tensor([1.0, 2.0]), Tensor([1.0, 4.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_hinge_clamps_negative(self):
        out = hinge(Tensor(np.array([-1.0, 0.5])))
        np.testing.assert_allclose(out.data, [0.0, 0.5])

    def test_masked_mean(self):
        values = Tensor(np.array([1.0, 2.0, 3.0, 4.0]))
        assert masked_mean(values, np.array([1, 0, 0, 1])).item() == pytest.approx(2.5)

    def test_masked_mean_empty_mask(self):
        assert masked_mean(Tensor(np.ones(3)), np.zeros(3)).item() == 0.0

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_train_zeroes_some(self):
        x = Tensor(np.ones(1000))
        out = dropout(x, 0.5, np.random.default_rng(0), training=True)
        zeros = (out.data == 0).sum()
        assert 300 < zeros < 700
        # kept entries are scaled by 1/keep
        assert np.allclose(out.data[out.data != 0], 2.0)


class TestKnnInterpolate:
    def test_exact_at_source_points(self, rng):
        coords = rng.normal(size=(1, 6, 3))
        features = rng.normal(size=(1, 6, 4))
        out = knn_interpolate(Tensor(features), coords, coords, k=1)
        np.testing.assert_allclose(out.data, features, atol=1e-6)

    def test_single_source_broadcasts(self, rng):
        source = rng.normal(size=(1, 1, 3))
        features = rng.normal(size=(1, 1, 2))
        targets = rng.normal(size=(1, 5, 3))
        out = knn_interpolate(Tensor(features), source, targets, k=3)
        np.testing.assert_allclose(out.data, np.repeat(features, 5, axis=1))

    def test_interpolation_is_convex_combination(self, rng):
        source = np.array([[[0.0, 0, 0], [1.0, 0, 0]]])
        features = np.array([[[0.0], [10.0]]])
        target = np.array([[[0.5, 0, 0]]])
        out = knn_interpolate(Tensor(features), source, target, k=2)
        assert 0.0 <= out.data[0, 0, 0] <= 10.0

    def test_gradient_flows_to_features(self, rng):
        features = Tensor(rng.normal(size=(1, 4, 2)), requires_grad=True)
        coords = rng.normal(size=(1, 4, 3))
        targets = rng.normal(size=(1, 7, 3))
        knn_interpolate(features, coords, targets, k=3).sum().backward()
        assert features.grad is not None
        assert features.grad.shape == (1, 4, 2)
