"""Integration tests for the attack engines against a trained victim model."""

import numpy as np
import pytest

from repro.core import (
    AttackConfig,
    AttackField,
    NormBoundedAttack,
    NormUnboundedAttack,
    PerturbationSpec,
    build_perturbation_spec,
    build_target_labels,
    full_mask,
    run_attack,
    run_attack_batch,
    run_attack_on_arrays,
)
from repro.datasets import prepare_scene
from repro.datasets.s3dis import CLASS_INDEX


WALL = CLASS_INDEX["wall"]
BOARD = CLASS_INDEX["board"]


@pytest.fixture(scope="module")
def prepared(trained_resgcn, office_scene):
    return prepare_scene(office_scene, trained_resgcn.spec)


def _fast(**overrides):
    defaults = dict(unbounded_steps=25, bounded_steps=10, smoothness_alpha=4,
                    min_impact_points=16)
    defaults.update(overrides)
    return AttackConfig.fast(**defaults)


class TestOrchestration:
    def test_build_perturbation_spec_degradation(self, trained_resgcn):
        labels = np.array([0, 1, 2])
        config = _fast(objective="degradation")
        spec = build_perturbation_spec(config, labels, trained_resgcn)
        assert spec.target_mask.all()
        assert spec.coord_box == trained_resgcn.spec.coord_range

    def test_build_perturbation_spec_hiding(self, trained_resgcn):
        labels = np.array([0, BOARD, BOARD])
        config = _fast(objective="hiding", source_class=BOARD, target_class=WALL)
        spec = build_perturbation_spec(config, labels, trained_resgcn)
        np.testing.assert_array_equal(spec.target_mask, [False, True, True])

    def test_missing_source_class_raises(self, trained_resgcn):
        labels = np.zeros(5, dtype=int)
        config = _fast(objective="hiding", source_class=BOARD, target_class=WALL)
        with pytest.raises(ValueError):
            build_perturbation_spec(config, labels, trained_resgcn)

    def test_hiding_requires_source_class(self, trained_resgcn):
        config = _fast(objective="hiding", target_class=WALL)
        with pytest.raises(ValueError):
            build_perturbation_spec(config, np.zeros(3, dtype=int), trained_resgcn)

    def test_target_labels(self):
        config = _fast(objective="hiding", source_class=BOARD, target_class=WALL)
        labels = np.array([0, 1, 2])
        np.testing.assert_array_equal(build_target_labels(config, labels),
                                      np.full(3, WALL))
        assert build_target_labels(_fast(objective="degradation"), labels) is None

    def test_run_attack_batch_skips_scenes_without_source(self, trained_resgcn,
                                                          office_scene, tiny_s3dis):
        hallway = [s for s in tiny_s3dis if s.metadata.get("room_type") == "hallway"]
        config = _fast(objective="hiding", method="noise",
                       source_class=BOARD, target_class=WALL)
        results = run_attack_batch(trained_resgcn, [office_scene] + hallway, config)
        assert len(results) == 1   # hallways have no boards


class TestNormBounded:
    def test_degradation_reduces_accuracy(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="bounded", field="color")
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.outcome.accuracy < result.outcome.clean_accuracy
        assert result.iterations >= 1

    def test_epsilon_respected(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="bounded", field="color",
                       epsilon=0.05)
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.linf <= 0.05 + 1e-9

    def test_color_attack_leaves_coordinates_untouched(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="bounded", field="color")
        result = run_attack(trained_resgcn, office_scene, config)
        np.testing.assert_allclose(result.adversarial_coords, result.original_coords)
        assert np.abs(result.color_perturbation).max() > 0

    def test_coordinate_attack_leaves_colors_untouched(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="bounded", field="coordinate")
        result = run_attack(trained_resgcn, office_scene, config)
        np.testing.assert_allclose(result.adversarial_colors, result.original_colors)

    def test_colors_stay_in_valid_box(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="bounded", field="color",
                       epsilon=0.5)
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.adversarial_colors.min() >= 0.0
        assert result.adversarial_colors.max() <= 1.0

    def test_hiding_only_perturbs_target_points(self, trained_resgcn, prepared):
        config = _fast(objective="hiding", method="bounded", field="color",
                       source_class=BOARD, target_class=WALL)
        result = run_attack_on_arrays(trained_resgcn, config, prepared.coords,
                                      prepared.colors, prepared.labels)
        outside = ~result.target_mask
        np.testing.assert_allclose(result.adversarial_colors[outside],
                                   result.original_colors[outside])

    def test_history_recorded(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="bounded", field="color",
                       target_accuracy=0.0)
        result = run_attack(trained_resgcn, office_scene, config)
        assert len(result.history) == result.iterations
        assert {"step", "loss", "gain"} <= set(result.history[0])

    def test_engine_run_directly(self, trained_resgcn, prepared):
        config = _fast(objective="degradation", method="bounded", field="color")
        engine = NormBoundedAttack(trained_resgcn, config)
        spec = PerturbationSpec.for_model(AttackField.COLOR,
                                          full_mask(prepared.num_points),
                                          trained_resgcn.spec)
        result = engine.run(prepared.coords, prepared.colors, prepared.labels, spec)
        assert result.outcome.accuracy <= result.outcome.clean_accuracy


class TestNormUnbounded:
    def test_degradation_reaches_low_accuracy(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="unbounded", field="color",
                       unbounded_steps=40)
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.outcome.accuracy < 0.5 * result.outcome.clean_accuracy

    def test_hiding_raises_psr(self, trained_resgcn, office_scene):
        config = _fast(objective="hiding", method="unbounded", field="color",
                       source_class=BOARD, target_class=WALL, unbounded_steps=80)
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.outcome.psr is not None
        assert result.outcome.psr > 0.5
        assert result.outcome.oob_accuracy is not None

    def test_values_stay_in_box(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="unbounded", field="color")
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.adversarial_colors.min() >= 0.0
        assert result.adversarial_colors.max() <= 1.0

    def test_only_masked_points_perturbed(self, trained_resgcn, prepared):
        config = _fast(objective="hiding", method="unbounded", field="color",
                       source_class=BOARD, target_class=WALL)
        result = run_attack_on_arrays(trained_resgcn, config, prepared.coords,
                                      prepared.colors, prepared.labels)
        outside = ~result.target_mask
        np.testing.assert_allclose(result.adversarial_colors[outside],
                                   result.original_colors[outside])

    def test_history_contains_distance(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="unbounded", field="color",
                       unbounded_steps=8, target_accuracy=0.0)
        result = run_attack(trained_resgcn, office_scene, config)
        assert len(result.history) == 8
        assert "distance" in result.history[0]

    def test_coordinate_attack_runs_and_prunes(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="unbounded",
                       field="coordinate", unbounded_steps=10)
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.l0 <= office_scene.num_points
        np.testing.assert_allclose(result.adversarial_colors, result.original_colors)

    def test_both_fields_attack(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="unbounded", field="both",
                       unbounded_steps=10)
        result = run_attack(trained_resgcn, office_scene, config)
        assert np.abs(result.color_perturbation).max() > 0
        assert result.outcome.accuracy <= result.outcome.clean_accuracy + 0.05

    def test_deterministic_given_seed(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="unbounded", field="color",
                       unbounded_steps=6, seed=5)
        first = run_attack(trained_resgcn, office_scene, config)
        second = run_attack(trained_resgcn, office_scene, config)
        np.testing.assert_allclose(first.adversarial_colors, second.adversarial_colors)

    def test_engine_direct_run(self, trained_resgcn, prepared):
        config = _fast(objective="degradation", method="unbounded", field="color",
                       unbounded_steps=6)
        engine = NormUnboundedAttack(trained_resgcn, config)
        spec = PerturbationSpec.for_model(AttackField.COLOR,
                                          full_mask(prepared.num_points),
                                          trained_resgcn.spec)
        result = engine.run(prepared.coords, prepared.colors, prepared.labels, spec)
        assert result.l2 >= 0.0


class TestRandomNoiseBaseline:
    def test_matches_target_l2(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="noise", field="color")
        result = run_attack(trained_resgcn, office_scene, config, target_l2=4.0)
        # Clipping to the colour box can only shrink the injected norm.
        assert result.l2 <= 4.0 + 1e-6
        assert result.l2 > 1.0

    def test_weaker_than_unbounded(self, trained_resgcn, office_scene):
        unbounded = run_attack(trained_resgcn, office_scene,
                               _fast(objective="degradation", method="unbounded",
                                     field="color", unbounded_steps=40))
        noise = run_attack(trained_resgcn, office_scene,
                           _fast(objective="degradation", method="noise", field="color"),
                           target_l2=unbounded.l2)
        assert noise.outcome.accuracy > unbounded.outcome.accuracy

    def test_coordinate_noise(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="noise", field="coordinate")
        result = run_attack(trained_resgcn, office_scene, config, target_l2=1.0)
        assert np.abs(result.coordinate_perturbation).max() > 0
        np.testing.assert_allclose(result.adversarial_colors, result.original_colors)


class TestAttackResult:
    def test_summary_keys(self, trained_resgcn, office_scene):
        config = _fast(objective="hiding", method="noise", field="color",
                       source_class=BOARD, target_class=WALL)
        result = run_attack(trained_resgcn, office_scene, config)
        summary = result.summary()
        for key in ("l2", "l0", "linf", "accuracy", "aiou", "accuracy_drop",
                    "psr", "oob_accuracy", "oob_aiou", "iterations"):
            assert key in summary

    def test_perturbation_properties(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="noise", field="color")
        result = run_attack(trained_resgcn, office_scene, config)
        np.testing.assert_allclose(
            result.color_perturbation,
            result.adversarial_colors - result.original_colors)
        np.testing.assert_allclose(result.coordinate_perturbation, 0.0)

    def test_scene_name_propagated(self, trained_resgcn, office_scene):
        config = _fast(objective="degradation", method="noise", field="color")
        result = run_attack(trained_resgcn, office_scene, config)
        assert result.scene_name == office_scene.name

    def test_finding1_color_beats_coordinate(self, trained_resgcn, office_scene):
        """Finding 1: colour perturbation is more effective than coordinates."""
        color = run_attack(trained_resgcn, office_scene,
                           _fast(objective="degradation", method="unbounded",
                                 field="color", unbounded_steps=30))
        coordinate = run_attack(trained_resgcn, office_scene,
                                _fast(objective="degradation", method="unbounded",
                                      field="coordinate", unbounded_steps=30))
        assert color.outcome.accuracy < coordinate.outcome.accuracy
