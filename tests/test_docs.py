"""Doc-sync gate: the documentation must match the code it describes.

Three classes of drift are caught here:

* the generated experiment table in ``docs/EXPERIMENTS.md`` vs. the
  registry in :mod:`repro.experiments.run` (the exact drift ISSUE 8
  started from — ``table_blackbox``/``table_defenses`` existed in the
  registry but not in the README table);
* package ``__init__`` docstrings going thin or referencing names that
  no longer exist;
* relative links and anchors in the markdown tree going stale
  (``tools/check_links.py`` doubles as the library here).
"""

import importlib
import os
import pkgutil
import re
import subprocess
import sys

import pytest

import repro
from repro.experiments.run import (
    EXPERIMENTS,
    experiment_summaries,
    experiments_markdown_table,
)
from repro.experiments.plans import available_experiments

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_links  # noqa: E402

TABLE_BEGIN = "<!-- BEGIN GENERATED EXPERIMENT TABLE -->"
TABLE_END = "<!-- END GENERATED EXPERIMENT TABLE -->"


def _read(relpath):
    with open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as handle:
        return handle.read()


class TestExperimentTable:
    def test_generated_table_matches_registry(self):
        """docs/EXPERIMENTS.md embeds exactly what --list --markdown prints."""
        page = _read("docs/EXPERIMENTS.md")
        assert TABLE_BEGIN in page and TABLE_END in page
        embedded = page.split(TABLE_BEGIN, 1)[1].split(TABLE_END, 1)[0].strip()
        regenerated = experiments_markdown_table().strip()
        assert embedded == regenerated, (
            "docs/EXPERIMENTS.md is stale — regenerate with "
            "`PYTHONPATH=src python -m repro.experiments.run --list --markdown`"
        )

    def test_every_experiment_has_a_summary(self):
        summaries = experiment_summaries()
        assert sorted(summaries) == sorted(EXPERIMENTS)
        for name, summary in summaries.items():
            assert summary and not summary.endswith("\n"), name
            assert len(summary) < 120, f"{name}: summary is not a single line"

    def test_every_experiment_appears_in_table(self):
        table = experiments_markdown_table()
        for name in EXPERIMENTS:
            assert f"`{name}`" in table

    def test_list_output_is_sorted_registry(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.run", "--list"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 0, proc.stderr
        listed = [line.split()[0] for line in proc.stdout.splitlines()
                  if line.strip() and not line.startswith(" ")]
        names = [name for name in listed if name in EXPERIMENTS]
        assert names == sorted(EXPERIMENTS)

    def test_registry_matches_worker_plans(self):
        """Every registry experiment is runnable through pipeline/serve."""
        assert set(available_experiments()) == set(EXPERIMENTS)


class TestDocstrings:
    def _packages(self):
        names = ["repro"]
        for module in pkgutil.iter_modules(repro.__path__, "repro."):
            if module.ispkg:
                names.append(module.name)
        return names

    def test_every_package_has_a_substantive_docstring(self):
        packages = self._packages()
        assert len(packages) >= 10  # the layer map in docs/ARCHITECTURE.md
        for name in packages:
            module = importlib.import_module(name)
            doc = module.__doc__ or ""
            assert len(doc.strip()) > 120, (
                f"{name}/__init__.py docstring is too thin — every package "
                "is documented per docs/ARCHITECTURE.md"
            )

    def test_docstring_references_resolve(self):
        """Names cited as :func:`x`/:class:`x` in package docstrings exist."""
        pattern = re.compile(r":(?:func|class|data):`~?([\w.]+)`")
        for name in self._packages():
            module = importlib.import_module(name)
            for reference in pattern.findall(module.__doc__ or ""):
                if reference.startswith("repro."):
                    continue  # cross-package references checked by import
                target = module
                resolved = True
                for attr in reference.split("."):
                    if not hasattr(target, attr):
                        resolved = False
                        break
                    target = getattr(target, attr)
                assert resolved, (
                    f"{name} docstring references {reference!r} "
                    "which the package does not export"
                )


class TestLinks:
    def test_documentation_tree_has_no_broken_links(self):
        files = check_links.documentation_files()
        assert any(path.endswith("README.md") for path in files)
        assert any(os.sep + "docs" + os.sep in path for path in files)
        errors = []
        for path in files:
            errors.extend(check_links.check_file(path))
        assert not errors, "\n".join(errors)

    def test_readme_links_the_docs_index(self):
        readme = _read("README.md")
        for page in ("docs/ARCHITECTURE.md", "docs/SERVING.md",
                     "docs/EXPERIMENTS.md", "benchmarks/TRACING.md"):
            assert page in readme, f"README.md no longer links {page}"

    def test_slug_rules(self):
        assert check_links.github_slug("Store-salt rules") == "store-salt-rules"
        assert check_links.github_slug("`repro.serve` — the daemon") == \
            "reproserve--the-daemon"

    def test_checker_flags_broken_link(self, tmp_path):
        # The checker itself must fail on genuinely broken links; otherwise
        # the CI docs job is a no-op.
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](./does-not-exist.md)\n",
                       encoding="utf-8")
        inside = os.path.join(REPO_ROOT, "docs", "_tmp_probe.md")
        with open(inside, "w", encoding="utf-8") as handle:
            handle.write("see [missing](./does-not-exist.md) and "
                         "[anchor](ARCHITECTURE.md#no-such-heading)\n")
        try:
            errors = check_links.check_file(inside)
        finally:
            os.remove(inside)
        assert len(errors) == 2
        assert "does-not-exist.md" in errors[0]
        assert "no-such-heading" in errors[1]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
