"""Unit tests for segmentation and attack metrics."""

import numpy as np
import pytest

from repro.metrics import (
    AttackOutcome,
    accuracy_score,
    average_iou,
    confusion_matrix,
    mean_field,
    metric_drop,
    out_of_band_accuracy,
    out_of_band_iou,
    per_class_iou,
    point_success_rate,
    segmentation_report,
    summarize_outcomes,
)


class TestAccuracy:
    def test_perfect(self):
        labels = np.array([0, 1, 2, 1])
        assert accuracy_score(labels, labels) == 1.0

    def test_none_correct(self):
        assert accuracy_score(np.zeros(4, dtype=int), np.ones(4, dtype=int)) == 0.0

    def test_half(self):
        assert accuracy_score(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 0])) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.zeros(3), np.zeros(4))

    def test_empty_is_zero(self):
        assert accuracy_score(np.array([]), np.array([])) == 0.0


class TestIoU:
    def test_confusion_matrix_counts(self):
        labels = np.array([0, 0, 1, 1, 2])
        prediction = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(prediction, labels, 3)
        assert matrix.sum() == 5
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix[1, 1] == 2
        assert matrix[2, 0] == 1

    def test_ignore_label_excluded(self):
        """The documented convention: -1 ground truth means "unannotated"."""
        labels = np.array([0, -1, 1, -1])
        prediction = np.array([0, 2, 1, 0])
        matrix = confusion_matrix(prediction, labels, 3)
        assert matrix.sum() == 2
        assert matrix[0, 0] == 1 and matrix[1, 1] == 1

    def test_out_of_range_labels_raise(self):
        """Regression: labels >= num_classes used to raise an opaque
        IndexError, and other negative labels silently wrapped."""
        prediction = np.array([0, 1])
        with pytest.raises(ValueError, match="outside"):
            confusion_matrix(prediction, np.array([0, 3]), 3)
        with pytest.raises(ValueError, match="outside"):
            confusion_matrix(prediction, np.array([0, -2]), 3)

    def test_out_of_range_predictions_raise(self):
        with pytest.raises(ValueError, match="prediction"):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]), 3)

    def test_custom_and_disabled_ignore_label(self):
        labels = np.array([0, 255, 1])
        prediction = np.array([0, 1, 1])
        matrix = confusion_matrix(prediction, labels, 3, ignore_label=255)
        assert matrix.sum() == 2
        with pytest.raises(ValueError):
            confusion_matrix(prediction, labels, 3, ignore_label=None)

    def test_perfect_iou(self):
        labels = np.array([0, 1, 2, 2])
        iou = per_class_iou(labels, labels, 3)
        np.testing.assert_allclose(iou, np.ones(3))

    def test_absent_class_is_nan(self):
        labels = np.array([0, 0])
        iou = per_class_iou(labels, labels, 3)
        assert np.isnan(iou[1]) and np.isnan(iou[2])
        assert iou[0] == 1.0

    def test_average_iou_ignores_absent_classes(self):
        labels = np.array([0, 0, 1])
        prediction = np.array([0, 0, 1])
        assert average_iou(prediction, labels, 5) == 1.0

    def test_average_iou_value(self):
        labels = np.array([0, 0, 1, 1])
        prediction = np.array([0, 1, 1, 1])
        # class0: TP=1 FP=0 FN=1 -> 0.5 ; class1: TP=2 FP=1 FN=0 -> 2/3
        assert average_iou(prediction, labels, 2) == pytest.approx((0.5 + 2 / 3) / 2)

    def test_iou_bounded(self, rng):
        labels = rng.integers(0, 4, size=100)
        prediction = rng.integers(0, 4, size=100)
        iou = per_class_iou(prediction, labels, 4)
        valid = iou[~np.isnan(iou)]
        assert (valid >= 0).all() and (valid <= 1).all()

    def test_report_keys(self):
        labels = np.array([0, 1])
        report = segmentation_report(labels, labels, 2, class_names=["a", "b"])
        assert report["accuracy"] == 1.0
        assert "iou/a" in report and "iou/b" in report


class TestAttackMetrics:
    def test_psr_counts_only_masked_points(self):
        prediction = np.array([2, 2, 0, 0])
        targets = np.full(4, 2)
        mask = np.array([True, True, True, False])
        assert point_success_rate(prediction, targets, mask) == pytest.approx(2 / 3)

    def test_psr_empty_mask(self):
        assert point_success_rate(np.zeros(3), np.zeros(3), np.zeros(3, dtype=bool)) == 0.0

    def test_oob_accuracy_excludes_targets(self):
        prediction = np.array([0, 0, 5, 5])
        labels = np.array([0, 0, 1, 1])
        mask = np.array([False, False, True, True])
        assert out_of_band_accuracy(prediction, labels, mask) == 1.0

    def test_oob_accuracy_all_masked(self):
        assert out_of_band_accuracy(np.zeros(3), np.zeros(3), np.ones(3, dtype=bool)) == 0.0

    def test_oob_iou(self):
        prediction = np.array([0, 1, 9])
        labels = np.array([0, 1, 1])
        mask = np.array([False, False, True])
        assert out_of_band_iou(prediction, labels, mask, 10) == 1.0

    def test_metric_drop(self):
        assert metric_drop(0.9, 0.1) == pytest.approx(0.8)

    def test_attack_outcome_drops(self):
        outcome = AttackOutcome(distance=1.0, accuracy=0.2, aiou=0.1,
                                clean_accuracy=0.9, clean_aiou=0.7)
        assert outcome.accuracy_drop == pytest.approx(0.7)
        assert outcome.aiou_drop == pytest.approx(0.6)


class TestSummary:
    def _outcome(self, accuracy, distance=1.0):
        return AttackOutcome(distance=distance, accuracy=accuracy, aiou=accuracy / 2,
                             clean_accuracy=0.9, clean_aiou=0.8)

    def test_best_is_lowest_accuracy(self):
        outcomes = [self._outcome(0.5), self._outcome(0.1), self._outcome(0.9)]
        summary = summarize_outcomes(outcomes)
        assert summary.best.accuracy == pytest.approx(0.1)
        assert summary.worst.accuracy == pytest.approx(0.9)
        assert summary.average.accuracy == pytest.approx(0.5)

    def test_clean_metrics_carried(self):
        summary = summarize_outcomes([self._outcome(0.3)])
        assert summary.clean_accuracy == pytest.approx(0.9)
        assert summary.clean_aiou == pytest.approx(0.8)

    def test_as_dict_structure(self):
        summary = summarize_outcomes([self._outcome(0.3)])
        data = summary.as_dict()
        assert set(data) == {"best", "average", "worst", "clean"}

    def test_requires_outcomes(self):
        with pytest.raises(ValueError):
            summarize_outcomes([])

    def test_mean_field_ignores_none(self):
        outcomes = [self._outcome(0.2), self._outcome(0.4)]
        outcomes[0].psr = 0.5
        outcomes[1].psr = None
        assert mean_field(outcomes, "psr") == pytest.approx(0.5)

    def test_mean_field_all_none_is_nan(self):
        outcomes = [self._outcome(0.2)]
        assert np.isnan(mean_field(outcomes, "psr"))
