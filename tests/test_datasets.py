"""Unit tests for the synthetic datasets (containers, generators, batching)."""

import numpy as np
import pytest

from repro.datasets import (
    Batch,
    PointCloudScene,
    ROOM_TYPES,
    S3DIS_CLASS_INDEX,
    S3DIS_CLASS_NAMES,
    SEMANTIC3D_CLASS_NAMES,
    SEMANTIC3D_PAPER_LABELS,
    SceneDataset,
    generate_outdoor_scene,
    generate_room_scene,
    generate_s3dis_dataset,
    generate_semantic3d_dataset,
    iterate_batches,
    prepare_batch,
    prepare_scene,
    s3dis_train_test_split,
    semantic3d_train_test_split,
)
from repro.datasets import scene_primitives as prim
from repro.geometry import POINTNET2_SPEC, RESGCN_SPEC


class TestPointCloudScene:
    def _scene(self, n=10):
        rng = np.random.default_rng(0)
        return PointCloudScene(
            coords=rng.normal(size=(n, 3)),
            colors=rng.uniform(0, 255, size=(n, 3)),
            labels=rng.integers(0, 3, size=n),
            class_names=("a", "b", "c"),
            name="test",
        )

    def test_validation_rejects_bad_coords(self):
        with pytest.raises(ValueError):
            PointCloudScene(np.zeros((5, 2)), np.zeros((5, 3)), np.zeros(5, dtype=int), ("a",))

    def test_validation_rejects_mismatched_colors(self):
        with pytest.raises(ValueError):
            PointCloudScene(np.zeros((5, 3)), np.zeros((4, 3)), np.zeros(5, dtype=int), ("a",))

    def test_validation_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            PointCloudScene(np.zeros((5, 3)), np.zeros((5, 3)),
                            np.full(5, 7, dtype=int), ("a", "b"))

    def test_class_counts(self):
        scene = self._scene(30)
        counts = scene.class_counts()
        assert counts.sum() == 30
        assert counts.shape == (3,)

    def test_points_of_class(self):
        scene = self._scene(30)
        idx = scene.points_of_class(1)
        assert (scene.labels[idx] == 1).all()

    def test_subset(self):
        scene = self._scene(20)
        sub = scene.subset(np.arange(5))
        assert sub.num_points == 5
        np.testing.assert_allclose(sub.coords, scene.coords[:5])

    def test_copy_is_independent(self):
        scene = self._scene()
        clone = scene.copy()
        clone.coords[0] = 999.0
        assert scene.coords[0, 0] != 999.0

    def test_with_fields_replaces_colors(self):
        scene = self._scene()
        new_colors = np.zeros_like(scene.colors)
        replaced = scene.with_fields(colors=new_colors)
        np.testing.assert_allclose(replaced.colors, new_colors)
        np.testing.assert_allclose(replaced.coords, scene.coords)

    def test_features_nine_columns(self):
        scene = self._scene()
        feats = scene.features()
        assert feats.shape == (scene.num_points, 9)
        assert feats[:, 3:6].max() <= 1.0
        assert feats[:, 6:9].min() >= 0.0 and feats[:, 6:9].max() <= 1.0


class TestSceneDataset:
    def test_requires_matching_class_names(self, tiny_s3dis, outdoor_scene):
        with pytest.raises(ValueError):
            SceneDataset([outdoor_scene], tiny_s3dis.class_names)

    def test_len_iter_getitem(self, tiny_s3dis):
        assert len(tiny_s3dis) == 6
        assert tiny_s3dis[0].num_points == 192
        assert sum(1 for _ in tiny_s3dis) == 6

    def test_filter(self, tiny_s3dis):
        subset = tiny_s3dis.filter(lambda s: s.metadata.get("area") == 5)
        assert len(subset) == 1

    def test_class_counts_total(self, tiny_s3dis):
        assert tiny_s3dis.class_counts().sum() == 6 * 192


class TestScenePrimitives:
    def test_plane_points_on_plane(self, rng):
        pts = prim.plane_points([0, 0, 1.0], [2, 0, 0], [0, 3, 0], 50, rng)
        assert pts.shape == (50, 3)
        np.testing.assert_allclose(pts[:, 2], np.ones(50))

    def test_box_points_on_surface(self, rng):
        pts = prim.box_points([0, 0, 0], [2.0, 2.0, 2.0], 200, rng)
        on_face = np.isclose(np.abs(pts), 1.0, atol=1e-9).any(axis=1)
        assert on_face.all()

    def test_cylinder_radius(self, rng):
        pts = prim.cylinder_points([0, 0, 0], 0.5, 2.0, 100, rng)
        radial = np.linalg.norm(pts[:, :2], axis=1)
        np.testing.assert_allclose(radial, np.full(100, 0.5), atol=1e-9)
        assert pts[:, 2].min() >= 0 and pts[:, 2].max() <= 2.0

    def test_sphere_points_radius(self, rng):
        pts = prim.sphere_points([1, 1, 1], 2.0, 100, rng)
        np.testing.assert_allclose(np.linalg.norm(pts - 1.0, axis=1), 2.0, atol=1e-9)

    def test_sphere_solid_inside(self, rng):
        pts = prim.sphere_points([0, 0, 0], 2.0, 100, rng, solid=True)
        assert (np.linalg.norm(pts, axis=1) <= 2.0 + 1e-9).all()

    @pytest.mark.parametrize("builder,count", [
        (prim.chair_points, 90), (prim.table_points, 90),
    ])
    def test_furniture_count(self, rng, builder, count):
        assert builder([0, 0, 0], count, rng).shape == (count, 3)

    def test_car_points_heading_rotation(self, rng):
        straight = prim.car_points([0, 0, 0], 100, np.random.default_rng(0), heading=0.0)
        rotated = prim.car_points([0, 0, 0], 100, np.random.default_rng(0), heading=np.pi / 2)
        # Rotating by 90° swaps the footprint extents.
        assert np.ptp(straight[:, 0]) > np.ptp(straight[:, 1])
        assert np.ptp(rotated[:, 1]) > np.ptp(rotated[:, 0])

    def test_tree_points_height(self, rng):
        pts = prim.tree_points([0, 0, 0], 120, rng, trunk_height=3.0)
        assert pts[:, 2].max() > 3.0

    def test_heightfield_amplitude(self, rng):
        pts = prim.heightfield_points((0, 10), (0, 10), 200, rng, amplitude=0.5,
                                      frequency=1.0)
        assert np.abs(pts[:, 2]).max() <= 0.5 + 1e-9


class TestS3DISGenerator:
    def test_class_names_paper_order(self):
        assert S3DIS_CLASS_NAMES[2] == "wall"
        assert S3DIS_CLASS_NAMES[5] == "window"
        assert S3DIS_CLASS_NAMES[6] == "door"
        assert S3DIS_CLASS_NAMES[7] == "table"
        assert S3DIS_CLASS_NAMES[8] == "chair"
        assert S3DIS_CLASS_NAMES[10] == "bookcase"
        assert S3DIS_CLASS_NAMES[11] == "board"
        assert len(S3DIS_CLASS_NAMES) == 13

    def test_exact_point_count(self):
        scene = generate_room_scene(300, rng=np.random.default_rng(0))
        assert scene.num_points == 300

    @pytest.mark.parametrize("room_type", ROOM_TYPES)
    def test_room_types_generate(self, room_type):
        scene = generate_room_scene(256, room_type=room_type,
                                    rng=np.random.default_rng(1))
        assert scene.num_points == 256
        assert scene.metadata["room_type"] == room_type

    def test_office_contains_hiding_source_classes(self, office_scene):
        counts = office_scene.class_counts()
        for name in ("window", "door", "table", "chair", "bookcase", "board", "wall"):
            assert counts[S3DIS_CLASS_INDEX[name]] > 0

    def test_unknown_room_type_rejected(self):
        with pytest.raises(ValueError):
            generate_room_scene(200, room_type="garage")

    def test_colors_in_range(self, office_scene):
        assert office_scene.colors.min() >= 0.0
        assert office_scene.colors.max() <= 255.0

    def test_deterministic_given_seed(self):
        a = generate_room_scene(200, rng=np.random.default_rng(5))
        b = generate_room_scene(200, rng=np.random.default_rng(5))
        np.testing.assert_allclose(a.coords, b.coords)
        np.testing.assert_allclose(a.colors, b.colors)

    def test_ceiling_above_floor(self, office_scene):
        ceiling = office_scene.coords[office_scene.labels == S3DIS_CLASS_INDEX["ceiling"]]
        floor = office_scene.coords[office_scene.labels == S3DIS_CLASS_INDEX["floor"]]
        assert ceiling[:, 2].mean() > floor[:, 2].mean() + 1.0

    def test_dataset_areas_and_split(self):
        dataset = generate_s3dis_dataset(scenes_per_area=2, num_points=128, seed=0)
        assert len(dataset) == 12
        train, test = s3dis_train_test_split(dataset)
        assert len(train) == 10
        assert len(test) == 2
        assert all(s.metadata["area"] == 5 for s in test)


class TestSemantic3DGenerator:
    def test_class_names_and_paper_labels(self):
        assert len(SEMANTIC3D_CLASS_NAMES) == 8
        assert SEMANTIC3D_PAPER_LABELS["cars"] == 8
        assert SEMANTIC3D_PAPER_LABELS["man-made terrain"] == 1

    def test_exact_point_count_and_all_classes(self, outdoor_scene):
        assert outdoor_scene.num_points == 320
        assert (outdoor_scene.class_counts() > 0).all()

    def test_extent_respected(self):
        scene = generate_outdoor_scene(256, rng=np.random.default_rng(0), extent=30.0)
        span = scene.coords[:, :2].max(axis=0) - scene.coords[:, :2].min(axis=0)
        assert (span <= 32.0).all()

    def test_dataset_split(self):
        dataset = generate_semantic3d_dataset(num_scenes=4, num_points=192, seed=0)
        train, test = semantic3d_train_test_split(dataset)
        assert len(train) == 3
        assert len(test) == 1

    def test_cars_above_ground(self, outdoor_scene):
        cars = outdoor_scene.coords[outdoor_scene.labels ==
                                    list(SEMANTIC3D_CLASS_NAMES).index("cars")]
        assert cars[:, 2].min() >= -0.1
        assert cars[:, 2].max() <= 3.0


class TestBatching:
    def test_prepare_scene_ranges(self, office_scene):
        prepared = prepare_scene(office_scene, RESGCN_SPEC)
        assert prepared.coords.min() == pytest.approx(-1.0)
        assert prepared.coords.max() == pytest.approx(1.0)
        assert prepared.colors.min() >= 0.0 and prepared.colors.max() <= 1.0
        np.testing.assert_array_equal(prepared.indices, np.arange(office_scene.num_points))

    def test_prepare_scene_resize(self, office_scene):
        prepared = prepare_scene(office_scene, POINTNET2_SPEC, num_points=100,
                                 rng=np.random.default_rng(0))
        assert prepared.num_points == 100
        assert prepared.labels.shape == (100,)
        np.testing.assert_array_equal(prepared.labels,
                                      office_scene.labels[prepared.indices])

    def test_prepare_batch_stacks(self, tiny_s3dis):
        batch = prepare_batch(tiny_s3dis.scenes[:3], RESGCN_SPEC)
        assert isinstance(batch, Batch)
        assert batch.coords.shape == (3, 192, 3)
        assert batch.labels.shape == (3, 192)
        assert batch.batch_size == 3 and batch.num_points == 192

    def test_prepare_batch_empty_rejected(self):
        with pytest.raises(ValueError):
            prepare_batch([], RESGCN_SPEC)

    def test_iterate_batches_covers_all(self, tiny_s3dis):
        batches = list(iterate_batches(tiny_s3dis.scenes, RESGCN_SPEC, batch_size=4,
                                       rng=np.random.default_rng(0)))
        assert sum(b.batch_size for b in batches) == len(tiny_s3dis)
        assert batches[0].batch_size == 4
