"""Unit tests for modules, layers, optimizers and serialization."""

import os

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    SharedMLP,
    StepLR,
    Tensor,
    load_state_dict,
    load_into,
    save_state_dict,
)


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestModule:
    def test_named_parameters_discovery(self):
        net = TinyNet()
        names = {name for name, _ in net.named_parameters()}
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_parameters_in_lists_are_discovered(self):
        class ListNet(Module):
            def __init__(self):
                super().__init__()
                self.blocks = [Linear(2, 2), Linear(2, 2)]

        assert len(ListNet().parameters()) == 4

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_propagates(self):
        mlp = SharedMLP([3, 4])
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_zero_grad(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.fc1.weight.data = net2.fc1.weight.data + 1.0
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net2.fc1.weight.data, net1.fc1.weight.data)

    def test_load_state_dict_rejects_unknown_key(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_missing_key(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc2.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_leading_dims_preserved(self, rng):
        layer = Linear(5, 3)
        out = layer(Tensor(rng.normal(size=(2, 4, 6, 5))))
        assert out.shape == (2, 4, 6, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_reach_weights(self, rng):
        layer = Linear(4, 2)
        layer(Tensor(rng.normal(size=(3, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestBatchNorm:
    def test_training_normalises(self, rng):
        bn = BatchNorm(6)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(200, 6)))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(6), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=0), np.ones(6), atol=1e-2)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm(3, momentum=1.0)
        x = Tensor(rng.normal(loc=2.0, size=(500, 3)))
        bn(x)
        np.testing.assert_allclose(bn.running_mean, x.data.mean(axis=0), atol=1e-9)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm(3, momentum=1.0)
        bn(Tensor(rng.normal(size=(100, 3))))
        bn.eval()
        x = rng.normal(size=(10, 3))
        out1 = bn(Tensor(x)).data
        out2 = bn(Tensor(x)).data
        np.testing.assert_allclose(out1, out2)

    def test_buffers_serialized(self, rng, tmp_path):
        bn = BatchNorm(3, momentum=1.0)
        bn(Tensor(rng.normal(loc=4.0, size=(50, 3))))
        path = os.path.join(tmp_path, "bn.npz")
        save_state_dict(bn, path)
        bn2 = BatchNorm(3)
        load_into(bn2, path)
        np.testing.assert_allclose(bn2.running_mean, bn.running_mean)

    def test_gradient_flows(self, rng):
        bn = BatchNorm(4)
        x = Tensor(rng.normal(size=(20, 4)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.gamma.grad is not None


class TestOtherLayers:
    def test_dropout_eval_identity(self, rng):
        layer = Dropout(0.9)
        layer.eval()
        x = rng.normal(size=(5, 5))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_relu_layer(self):
        np.testing.assert_allclose(ReLU()(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_sequential_runs_in_order(self, rng):
        seq = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        out = seq(Tensor(rng.normal(size=(5, 3))))
        assert out.shape == (5, 2)
        assert len(seq) == 3

    def test_shared_mlp_shapes(self, rng):
        mlp = SharedMLP([6, 16, 8])
        out = mlp(Tensor(rng.normal(size=(2, 10, 6))))
        assert out.shape == (2, 10, 8)

    def test_shared_mlp_final_activation_flag(self, rng):
        mlp = SharedMLP([3, 4], batch_norm=False, final_activation=False)
        x = rng.normal(size=(50, 3))
        out = mlp(Tensor(x)).data
        assert (out < 0).any()   # no ReLU on the output


class TestOptimizers:
    def _quadratic(self, optimizer_cls, **kwargs):
        target = np.array([3.0, -2.0])
        param = Parameter(np.zeros(2))
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(300):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        return param.data, target

    def test_sgd_converges(self):
        value, target = self._quadratic(SGD, lr=0.05)
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        value, target = self._quadratic(SGD, lr=0.02, momentum=0.9)
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_adam_converges(self):
        value, target = self._quadratic(Adam, lr=0.1)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        no_decay, _ = self._quadratic(Adam, lr=0.1)
        decayed, _ = self._quadratic(Adam, lr=0.1, weight_decay=1.0)
        assert np.linalg.norm(decayed) < np.linalg.norm(no_decay)

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_step_skips_missing_gradients(self):
        param = Parameter(np.ones(2))
        optimizer = SGD([param], lr=0.5)
        optimizer.step()
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_step_lr_decays(self):
        param = Parameter(np.ones(1))
        optimizer = SGD([param], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        net = TinyNet()
        path = os.path.join(tmp_path, "sub", "net.npz")
        save_state_dict(net, path)
        assert os.path.exists(path)
        state = load_state_dict(path)
        np.testing.assert_allclose(state["fc1.weight"], net.fc1.weight.data)

    def test_load_into_returns_module(self, tmp_path):
        net1, net2 = TinyNet(), TinyNet()
        net1.fc1.weight.data = net1.fc1.weight.data * 2.0
        path = os.path.join(tmp_path, "net.npz")
        save_state_dict(net1, path)
        returned = load_into(net2, path)
        assert returned is net2
        np.testing.assert_allclose(net2.fc1.weight.data, net1.fc1.weight.data)
