"""Unit tests for the attack framework's building blocks (repro.core)."""

import numpy as np
import pytest

from repro.core import (
    AttackConfig,
    AttackField,
    AttackMethod,
    AttackObjective,
    BoxReparam,
    ConvergenceCheck,
    MinImpactSelector,
    PerturbationSpec,
    class_mask,
    full_mask,
    l0_distance_numpy,
    l2_distance,
    l2_distance_numpy,
    linf_distance_numpy,
    object_hiding_loss,
    performance_degradation_loss,
    rms_distance_numpy,
    smoothness_penalty,
    smoothness_penalty_numpy,
)
from repro.geometry import RESGCN_SPEC
from repro.nn import Tensor


class TestAttackConfig:
    def test_defaults_follow_paper(self):
        config = AttackConfig.paper_scale()
        assert config.bounded_steps == 50
        assert config.unbounded_steps == 1000
        assert config.learning_rate == pytest.approx(0.01)
        assert config.lambda1 == pytest.approx(1.0)
        assert config.lambda2 == pytest.approx(0.1)
        assert config.smoothness_alpha == 10
        assert config.min_impact_points == 100

    def test_steps_property_tracks_method(self):
        bounded = AttackConfig(method="bounded", bounded_steps=7)
        unbounded = AttackConfig(method="unbounded", unbounded_steps=9)
        noise = AttackConfig(method="noise")
        assert bounded.steps == 7
        assert unbounded.steps == 9
        assert noise.steps == 1

    def test_string_coercion(self):
        config = AttackConfig(objective="hiding", method="bounded", field="coordinate",
                              target_class=2)
        assert config.objective is AttackObjective.OBJECT_HIDING
        assert config.method is AttackMethod.NORM_BOUNDED
        assert config.field is AttackField.COORDINATE

    def test_hiding_requires_target_class(self):
        with pytest.raises(ValueError):
            AttackConfig(objective="hiding")

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(epsilon=0.0)

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(bounded_steps=0)

    def test_fast_overrides(self):
        config = AttackConfig.fast(unbounded_steps=5)
        assert config.unbounded_steps == 5


class TestAttackField:
    def test_color_flags(self):
        assert AttackField.COLOR.perturbs_color
        assert not AttackField.COLOR.perturbs_coordinate

    def test_coordinate_flags(self):
        assert AttackField.COORDINATE.perturbs_coordinate
        assert not AttackField.COORDINATE.perturbs_color

    def test_both_flags(self):
        assert AttackField.BOTH.perturbs_color and AttackField.BOTH.perturbs_coordinate


class TestPerturbationSpec:
    def test_masks(self):
        labels = np.array([0, 1, 1, 2])
        np.testing.assert_array_equal(full_mask(4), np.ones(4, dtype=bool))
        np.testing.assert_array_equal(class_mask(labels, 1),
                                      np.array([False, True, True, False]))

    def test_for_model_uses_spec_ranges(self):
        spec = PerturbationSpec.for_model("color", full_mask(5), RESGCN_SPEC)
        assert spec.color_box == (0.0, 1.0)
        assert spec.coord_box == (-1.0, 1.0)
        assert spec.num_targets == 5

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            PerturbationSpec(AttackField.COLOR, np.zeros(4, dtype=bool))

    def test_box_for_lookup(self):
        spec = PerturbationSpec(AttackField.BOTH, full_mask(3),
                                color_box=(0, 1), coord_box=(-2, 2))
        assert spec.box_for("color") == (0, 1)
        assert spec.box_for("coordinate") == (-2, 2)
        with pytest.raises(ValueError):
            spec.box_for("intensity")


class TestBoxReparam:
    def test_to_box_stays_inside(self, rng):
        reparam = BoxReparam(0.0, 1.0)
        w = rng.normal(scale=10.0, size=(50, 3))
        values = reparam.to_box_numpy(w)
        assert values.min() >= 0.0 and values.max() <= 1.0

    def test_roundtrip(self, rng):
        reparam = BoxReparam(0.0, 1.0)
        values = rng.uniform(0.05, 0.95, size=(20, 3))
        recovered = reparam.to_box_numpy(reparam.from_box(values))
        np.testing.assert_allclose(recovered, values, atol=1e-9)

    def test_roundtrip_asymmetric_box(self, rng):
        reparam = BoxReparam(-1.0, 3.0)
        values = rng.uniform(-0.9, 2.9, size=(10,))
        np.testing.assert_allclose(reparam.to_box_numpy(reparam.from_box(values)),
                                   values, atol=1e-9)

    def test_from_box_clamps_boundary_values(self):
        reparam = BoxReparam(0.0, 1.0)
        w = reparam.from_box(np.array([0.0, 1.0]))
        assert np.isfinite(w).all()

    def test_tensor_path_matches_numpy(self, rng):
        reparam = BoxReparam(0.0, 1.0)
        w = rng.normal(size=(4, 3))
        np.testing.assert_allclose(reparam.to_box(Tensor(w)).data,
                                   reparam.to_box_numpy(w))

    def test_gradient_through_to_box(self, rng):
        reparam = BoxReparam(0.0, 1.0)
        w = Tensor(rng.normal(size=(5,)), requires_grad=True)
        reparam.to_box(w).sum().backward()
        assert w.grad is not None and np.all(w.grad > 0)

    def test_contains(self):
        reparam = BoxReparam(0.0, 1.0)
        assert reparam.contains(np.array([0.0, 0.5, 1.0]))
        assert not reparam.contains(np.array([1.5]))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoxReparam(1.0, 1.0)


class TestDistances:
    def test_l2_matches_manual(self, rng):
        perturbation = rng.normal(size=(10, 3))
        assert l2_distance_numpy(perturbation) == pytest.approx(np.sum(perturbation ** 2))

    def test_l2_mask_restricts(self, rng):
        perturbation = rng.normal(size=(10, 3))
        mask = np.zeros(10, dtype=bool)
        mask[:4] = True
        assert l2_distance_numpy(perturbation, mask) == pytest.approx(
            np.sum(perturbation[:4] ** 2))

    def test_l2_tensor_matches_numpy(self, rng):
        perturbation = rng.normal(size=(1, 8, 3))
        mask = np.zeros(8, dtype=bool)
        mask[2:6] = True
        tensor_value = l2_distance(Tensor(perturbation), mask).item()
        numpy_value = l2_distance_numpy(perturbation, mask)
        assert tensor_value == pytest.approx(numpy_value)

    def test_l2_tensor_gradient(self, rng):
        perturbation = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        l2_distance(perturbation).backward()
        np.testing.assert_allclose(perturbation.grad, 2 * perturbation.data)

    def test_l0_counts_changed_points(self):
        perturbation = np.zeros((6, 3))
        perturbation[1, 0] = 0.5
        perturbation[4, 2] = -0.1
        assert l0_distance_numpy(perturbation) == 2.0

    def test_l0_ignores_tiny_changes(self):
        perturbation = np.full((5, 3), 1e-12)
        assert l0_distance_numpy(perturbation) == 0.0

    def test_linf_and_rms(self):
        perturbation = np.array([[0.1, -0.4, 0.0]])
        assert linf_distance_numpy(perturbation) == pytest.approx(0.4)
        assert rms_distance_numpy(perturbation) == pytest.approx(
            np.sqrt(np.mean(perturbation ** 2)))

    def test_empty_perturbation(self):
        assert linf_distance_numpy(np.zeros((0, 3))) == 0.0
        assert rms_distance_numpy(np.zeros((0, 3))) == 0.0


class TestSmoothness:
    def test_zero_for_identical_points(self):
        coords = np.zeros((1, 5, 3))
        colors = np.zeros((1, 5, 3))
        assert smoothness_penalty(Tensor(coords), Tensor(colors), alpha=3).item() == pytest.approx(0.0, abs=1e-4)

    def test_tensor_matches_numpy(self, rng):
        coords = rng.normal(size=(1, 12, 3))
        colors = rng.uniform(size=(1, 12, 3))
        tensor_value = smoothness_penalty(Tensor(coords), Tensor(colors), alpha=4).item()
        numpy_value = smoothness_penalty_numpy(coords[0], colors[0], alpha=4)
        assert tensor_value == pytest.approx(numpy_value, rel=1e-6)

    def test_increases_with_color_noise(self, rng):
        coords = rng.normal(size=(1, 20, 3))
        colors = rng.uniform(size=(1, 20, 3))
        base = smoothness_penalty(Tensor(coords), Tensor(colors), alpha=5).item()
        noisy = colors + rng.normal(scale=0.5, size=colors.shape)
        higher = smoothness_penalty(Tensor(coords), Tensor(noisy), alpha=5).item()
        assert higher > base

    def test_gradient_flows_to_colors(self, rng):
        coords = Tensor(rng.normal(size=(1, 10, 3)))
        colors = Tensor(rng.uniform(size=(1, 10, 3)), requires_grad=True)
        smoothness_penalty(coords, colors, alpha=3).backward()
        assert colors.grad is not None

    def test_alpha_larger_than_cloud_is_safe(self, rng):
        coords = rng.normal(size=(1, 4, 3))
        colors = rng.uniform(size=(1, 4, 3))
        value = smoothness_penalty(Tensor(coords), Tensor(colors), alpha=100).item()
        assert np.isfinite(value)

    def test_single_point_returns_zero(self):
        value = smoothness_penalty(Tensor(np.zeros((1, 1, 3))),
                                   Tensor(np.zeros((1, 1, 3))), alpha=5).item()
        assert value == 0.0


class TestObjectives:
    def _logits(self, values):
        return Tensor(np.asarray(values, dtype=np.float64)[None])

    def test_hiding_loss_zero_when_target_wins(self):
        logits = self._logits([[0.0, 5.0], [0.0, 4.0]])
        targets = np.array([[1, 1]])
        assert object_hiding_loss(logits, targets).item() == pytest.approx(0.0)

    def test_hiding_loss_positive_when_target_loses(self):
        logits = self._logits([[5.0, 0.0]])
        targets = np.array([[1]])
        assert object_hiding_loss(logits, targets).item() == pytest.approx(5.0)

    def test_hiding_loss_respects_mask(self):
        logits = self._logits([[5.0, 0.0], [5.0, 0.0]])
        targets = np.array([[1, 1]])
        mask = np.array([[True, False]])
        assert object_hiding_loss(logits, targets, mask).item() == pytest.approx(5.0)

    def test_degradation_loss_zero_when_misclassified(self):
        logits = self._logits([[0.0, 5.0]])
        ground_truth = np.array([[0]])
        assert performance_degradation_loss(logits, ground_truth).item() == pytest.approx(0.0)

    def test_degradation_loss_positive_when_correct(self):
        logits = self._logits([[5.0, 1.0]])
        ground_truth = np.array([[0]])
        assert performance_degradation_loss(logits, ground_truth).item() == pytest.approx(4.0)

    def test_degradation_gradient_reduces_margin(self, rng):
        logits = Tensor(rng.normal(size=(1, 6, 4)), requires_grad=True)
        labels = rng.integers(0, 4, size=(1, 6))
        loss = performance_degradation_loss(logits, labels)
        loss.backward()
        stepped = Tensor(logits.data - 0.1 * logits.grad)
        assert performance_degradation_loss(stepped, labels).item() <= loss.item()

    def test_hiding_gradient_increases_target_logit(self, rng):
        logits = Tensor(rng.normal(size=(1, 5, 3)), requires_grad=True)
        targets = np.full((1, 5), 2)
        loss = object_hiding_loss(logits, targets)
        loss.backward()
        stepped = Tensor(logits.data - 0.1 * logits.grad)
        assert object_hiding_loss(stepped, targets).item() <= loss.item()


class TestMinImpactSelector:
    def test_prunes_lowest_impact(self):
        mask = np.ones(10, dtype=bool)
        selector = MinImpactSelector(mask, points_per_round=2, floor_fraction=0.1)
        gradient = np.arange(10, dtype=float)[:, None] * np.ones((10, 3))
        perturbation = np.ones((10, 3))
        pruned = selector.prune(gradient, perturbation)
        np.testing.assert_array_equal(np.sort(pruned), [0, 1])
        assert not selector.allowed[0] and not selector.allowed[1]

    def test_respects_floor(self):
        mask = np.ones(10, dtype=bool)
        selector = MinImpactSelector(mask, points_per_round=100, floor_fraction=0.5)
        selector.prune(np.ones((10, 3)), np.ones((10, 3)))
        assert selector.allowed.sum() == 5
        assert not selector.active

    def test_importance_uses_gradient_times_perturbation(self):
        selector = MinImpactSelector(np.ones(3, dtype=bool), 1)
        impact = selector.importance(np.array([[1.0, 0, 0], [2.0, 0, 0], [0.5, 0, 0]]),
                                     np.array([[1.0, 0, 0], [1.0, 0, 0], [4.0, 0, 0]]))
        np.testing.assert_allclose(impact, [1.0, 2.0, 2.0])

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            MinImpactSelector(np.zeros(5, dtype=bool), 1)

    def test_inactive_returns_no_prunes(self):
        selector = MinImpactSelector(np.ones(4, dtype=bool), 2, floor_fraction=1.0)
        assert selector.prune(np.ones((4, 3)), np.ones((4, 3))).size == 0


class TestConvergence:
    def test_degradation_threshold_defaults_to_chance(self):
        config = AttackConfig(objective="degradation")
        check = ConvergenceCheck(config, num_classes=13)
        assert check.accuracy_threshold == pytest.approx(1 / 13)

    def test_degradation_converges_when_accuracy_low(self):
        config = AttackConfig(objective="degradation", target_accuracy=0.2)
        check = ConvergenceCheck(config, num_classes=13)
        labels = np.zeros(10, dtype=int)
        prediction = np.ones(10, dtype=int)
        assert check.converged(prediction, labels, None, np.ones(10, dtype=bool))

    def test_hiding_converges_on_psr(self):
        config = AttackConfig(objective="hiding", target_class=2, target_psr=0.9)
        check = ConvergenceCheck(config, num_classes=13)
        labels = np.zeros(10, dtype=int)
        targets = np.full(10, 2)
        prediction = np.full(10, 2)
        assert check.converged(prediction, labels, targets, np.ones(10, dtype=bool))
        prediction[:5] = 0
        assert not check.converged(prediction, labels, targets, np.ones(10, dtype=bool))

    def test_hiding_requires_targets(self):
        config = AttackConfig(objective="hiding", target_class=2)
        check = ConvergenceCheck(config, num_classes=13)
        with pytest.raises(ValueError):
            check.converged(np.zeros(3), np.zeros(3), None, np.ones(3, dtype=bool))

    def test_gain_monotone_in_success(self):
        config = AttackConfig(objective="degradation")
        check = ConvergenceCheck(config, num_classes=13)
        labels = np.zeros(10, dtype=int)
        mask = np.ones(10, dtype=bool)
        weak = np.zeros(10, dtype=int)       # everything still correct
        strong = np.ones(10, dtype=int)      # everything misclassified
        assert check.gain(strong, labels, None, mask) > check.gain(weak, labels, None, mask)
