"""Tests for the fault-tolerance layer (``repro.pipeline.resilience``).

Driven almost entirely through deterministic fault injection: retry with
backoff until success, permanent-error fail-fast, budget exhaustion with
dependent skipping, wall-clock timeout kills, broken-pool rebuilds,
degradation to serial execution, store integrity (checksum verification,
quarantine, whole-store audit) — and the headline guarantee that a run
which retried its way through faults produces bit-for-bit the same cached
payloads as an unfaulted run.
"""

import os

import pytest

from repro.experiments import ExperimentConfig
from repro.pipeline import (FaultPlan, PipelineSession, ResultStore,
                            RetryPolicy, Task, TaskGraph, WorkerCrashError,
                            classify_error, config_salt, register_executor,
                            run_graph)
from repro.pipeline.progress import CACHED, FAILED, RAN, SKIPPED
from repro.pipeline.resilience import (PERMANENT, TRANSIENT, FaultSpec,
                                       InjectedFault, TaskTimeoutError,
                                       corrupt_payload_file,
                                       error_type_names)
from repro.pipeline.worker import run_task

# ---------------------------------------------------------------------- #
# Stub executors (registered at import so fork workers inherit them)
# ---------------------------------------------------------------------- #


@register_executor("res:value")
def _res_value(context, params, deps):
    return params["value"]


@register_executor("res:sum")
def _res_sum(context, params, deps):
    return sum(deps.values()) + params.get("add", 0)


@register_executor("res:boom")
def _res_boom(context, params, deps):
    raise RuntimeError("deterministic boom")


#: Fast-backoff policy used throughout, so retry tests don't sleep for real.
def _policy(**overrides):
    defaults = dict(max_attempts=2, backoff_base=0.01, backoff_max=0.05)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _diamond() -> TaskGraph:
    graph = TaskGraph(result="d")
    graph.add(Task("a", "res:value", {"value": 1}))
    graph.add(Task("b", "res:sum", {"add": 10}, deps=("a",)))
    graph.add(Task("c", "res:sum", {"add": 100}, deps=("a",)))
    graph.add(Task("d", "res:sum", {}, deps=("b", "c")))
    return graph


def _statuses(result):
    return {r.task_id: r.status for r in result.report.records}


def _attempts(result):
    return {r.task_id: r.attempts for r in result.report.records}


# ---------------------------------------------------------------------- #
# Units: policy, classification, fault plans
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_retryable_respects_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.retryable(1) and policy.retryable(2)
        assert not policy.retryable(3)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=3.0, jitter=0.0)
        assert policy.delay("t", 1) == 1.0
        assert policy.delay("t", 2) == 2.0
        assert policy.delay("t", 3) == 3.0      # capped, not 4.0
        assert policy.delay("t", 9) == 3.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.25)
        first = policy.delay("table3/pct/unbounded", 1)
        assert first == policy.delay("table3/pct/unbounded", 1)
        assert 0.75 <= first <= 1.25
        # Different tasks/attempts de-synchronise.
        others = {policy.delay("other/task", 1), policy.delay("t", 2)}
        assert first not in others

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_rebuilds=-1)


class TestClassification:
    def test_transient_families(self):
        assert classify_error(["BrokenProcessPool", "BrokenExecutor"]) \
            == TRANSIENT
        assert classify_error(["ConnectionResetError", "OSError"]) == TRANSIENT
        assert classify_error(error_type_names(InjectedFault("x"))) \
            == TRANSIENT
        assert classify_error(error_type_names(WorkerCrashError("x"))) \
            == TRANSIENT
        assert classify_error(error_type_names(TaskTimeoutError("x"))) \
            == TRANSIENT

    def test_deterministic_errors_are_permanent(self):
        assert classify_error(error_type_names(RuntimeError("boom"))) \
            == PERMANENT
        assert classify_error(error_type_names(ValueError("bad"))) == PERMANENT
        assert classify_error(None) == PERMANENT
        assert classify_error([]) == PERMANENT

    def test_error_type_names_walks_mro(self):
        names = error_type_names(InjectedFault("x"))
        assert names[0] == "InjectedFault"
        assert "TransientTaskError" in names and "RuntimeError" in names
        assert "object" not in names


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("table3/*=crash, cell=fail:2 ;slow=hang:1:20")
        assert [s.mode for s in plan.specs] == ["crash", "fail", "hang"]
        assert plan.specs[1].times == 2
        assert plan.specs[2].seconds == 20.0
        rebuilt = FaultPlan.from_specs(plan.as_specs())
        assert rebuilt.as_specs() == plan.as_specs()
        assert FaultPlan.parse(plan.text()).as_specs() == plan.as_specs()

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("no-equals-sign")
        with pytest.raises(ValueError):
            FaultPlan.parse("t=explode")
        with pytest.raises(ValueError):
            FaultPlan.parse("t=fail:many")

    def test_empty_plans(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.from_specs(None) is None
        assert FaultPlan.from_specs([]) is None

    def test_matching_is_attempt_bounded(self):
        spec = FaultSpec(task="table3/*", mode="fail", times=2)
        assert spec.matches("table3/pct/unbounded", 1)
        assert spec.matches("table3/pct/unbounded", 2)
        assert not spec.matches("table3/pct/unbounded", 3)
        assert not spec.matches("table6/noise", 1)

    def test_inject_fail_then_succeed(self):
        plan = FaultPlan.parse("t=fail:2")
        for attempt in (1, 2):
            with pytest.raises(InjectedFault):
                plan.inject("t", attempt)
        plan.inject("t", 3)                     # no fault: returns quietly
        plan.inject("other", 1)

    def test_inject_crash_in_process_raises(self):
        with pytest.raises(WorkerCrashError):
            FaultPlan.parse("t=crash").inject("t", 1, allow_exit=False)

    def test_take_corruption_consumes_budget(self):
        plan = FaultPlan.parse("cell=corrupt:2")
        assert plan.take_corruption("cell")
        assert plan.take_corruption("cell")
        assert not plan.take_corruption("cell")
        assert not plan.take_corruption("other")

    def test_corrupt_payload_flips_bytes_keeps_length(self, tmp_path):
        path = str(tmp_path / "payload.pkl")
        original = bytes(range(64))
        with open(path, "wb") as handle:
            handle.write(original)
        corrupt_payload_file(path)
        with open(path, "rb") as handle:
            damaged = handle.read()
        assert len(damaged) == len(original)
        assert damaged != original


# ---------------------------------------------------------------------- #
# Scheduler: serial retries
# ---------------------------------------------------------------------- #
class TestSerialRetries:
    def test_transient_failures_retry_then_succeed(self):
        result = run_graph(_diamond(), {}, retry=_policy(max_attempts=3),
                           faults=FaultPlan.parse("b=fail:2"))
        assert result.succeeded and result.result == 112
        assert _attempts(result)["b"] == 3
        assert result.report.retries == 2

    def test_injected_crash_is_transient_in_serial(self):
        result = run_graph(_diamond(), {}, retry=_policy(),
                           faults=FaultPlan.parse("c=crash:1"))
        assert result.succeeded and result.result == 112
        assert _attempts(result)["c"] == 2

    def test_permanent_errors_fail_fast(self):
        graph = TaskGraph()
        graph.add(Task("bad", "res:boom", {}))
        result = run_graph(graph, {}, retry=_policy(max_attempts=5))
        assert _statuses(result) == {"bad": FAILED}
        assert _attempts(result)["bad"] == 1    # no budget burned on retries
        assert result.report.retries == 0
        assert "deterministic boom" in result.report.failures()[0].error

    def test_budget_exhaustion_fails_and_skips_dependents(self):
        result = run_graph(_diamond(), {}, retry=_policy(max_attempts=2),
                           faults=FaultPlan.parse("b=fail:5"))
        statuses = _statuses(result)
        assert statuses["b"] == FAILED and statuses["d"] == SKIPPED
        assert statuses["a"] == RAN and statuses["c"] == RAN
        assert _attempts(result)["b"] == 2
        assert result.report.retries == 1

    def test_no_retries_when_budget_is_one(self):
        result = run_graph(_diamond(), {}, retry=_policy(max_attempts=1),
                           faults=FaultPlan.parse("b=fail:1"))
        assert _statuses(result)["b"] == FAILED
        assert result.report.retries == 0


# ---------------------------------------------------------------------- #
# Scheduler: parallel recovery
# ---------------------------------------------------------------------- #
class TestParallelRecovery:
    def test_transient_failure_retries_in_parallel(self):
        result = run_graph(_diamond(), {}, jobs=2,
                           retry=_policy(max_attempts=3),
                           faults=FaultPlan.parse("b=fail:2"))
        assert result.succeeded and result.result == 112
        assert _attempts(result)["b"] == 3
        assert result.report.retries == 2

    def test_worker_crash_rebuilds_pool_and_completes(self):
        result = run_graph(_diamond(), {}, jobs=2, retry=_policy(),
                           faults=FaultPlan.parse("b=crash:1"))
        assert result.succeeded and result.result == 112
        assert result.report.pool_rebuilds >= 1
        assert not result.report.degraded
        assert _attempts(result)["b"] == 2

    def test_hung_task_is_killed_at_deadline_and_retried(self):
        # Attempt 1 hangs far beyond the deadline; the scheduler terminates
        # its worker at ~1s, the attempt counts as a transient timeout, and
        # attempt 2 (fault exhausted) succeeds.
        result = run_graph(_diamond(), {}, jobs=2,
                           retry=_policy(max_attempts=2, task_timeout=1.0),
                           faults=FaultPlan.parse("c=hang:1:60"))
        assert result.succeeded and result.result == 112
        assert result.report.timeouts == 1
        assert _attempts(result)["c"] == 2

    def test_per_task_timeout_overrides_policy(self):
        graph = TaskGraph(result="slow")
        graph.add(Task("slow", "res:value", {"value": 7}, timeout=1.0))
        result = run_graph(graph, {}, jobs=2,
                           retry=_policy(max_attempts=2),
                           faults=FaultPlan.parse("slow=hang:1:60"))
        assert result.succeeded and result.result == 7
        assert result.report.timeouts == 1

    def test_timeout_exhaustion_fails_task(self):
        graph = TaskGraph()
        graph.add(Task("hang", "res:value", {"value": 1}))
        graph.add(Task("after", "res:sum", {}, deps=("hang",)))
        result = run_graph(graph, {}, jobs=2,
                           retry=_policy(max_attempts=1, task_timeout=0.5),
                           faults=FaultPlan.parse("hang=hang:5:60"))
        statuses = _statuses(result)
        assert statuses["hang"] == FAILED and statuses["after"] == SKIPPED
        assert "timed out" in result.report.failures()[0].error

    def test_persistent_crashes_degrade_to_serial(self):
        # The pool dies twice (budget: one rebuild), so the run degrades to
        # in-process execution, where the third crash fault raises
        # WorkerCrashError, is retried, and the task finally succeeds —
        # forward progress no matter how unhealthy the pool.
        result = run_graph(_diamond(), {}, jobs=2,
                           retry=_policy(max_attempts=5, max_pool_rebuilds=1),
                           faults=FaultPlan.parse("b=crash:3"))
        assert result.succeeded and result.result == 112
        assert result.report.degraded
        assert result.report.pool_rebuilds == 1
        assert _attempts(result)["b"] == 4
        assert "degraded to serial" in result.report.summary()

    def test_session_forwards_resilience_policy(self):
        session = PipelineSession(jobs=2, retry=_policy(max_attempts=3),
                                  faults=FaultPlan.parse("b=fail:1"))
        result = session.run(_diamond(), {})
        assert result.succeeded
        assert session.last_report.retries == 1


# ---------------------------------------------------------------------- #
# Store integrity
# ---------------------------------------------------------------------- #
class TestStoreIntegrity:
    def test_corrupt_entry_quarantined_on_get(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("ab" * 32, {"value": 41})
        corrupt_payload_file(store.payload_path("ab" * 32))
        with pytest.raises(KeyError):
            store.get("ab" * 32)
        # Entry is gone from the store but preserved for post-mortem.
        assert not store.contains("ab" * 32, count=False)
        quarantined = os.path.join(str(tmp_path), ResultStore.CORRUPT_DIR,
                                   "ab" * 32 + ".pkl")
        assert os.path.exists(quarantined)
        meta = os.path.join(str(tmp_path), ResultStore.CORRUPT_DIR,
                            "ab" * 32 + ".json")
        assert os.path.exists(meta)
        stats = store.session_stats()
        assert stats["quarantined"] == 1 and stats["misses"] == 1

    def test_put_records_checksum_and_size(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("cd" * 32, [1, 2, 3])
        meta = store.metadata("cd" * 32)
        assert meta["checksum"].startswith("sha256:")
        assert meta["payload_bytes"] > 0

    def test_verify_audits_whole_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        keys = [format(i, "02x") * 32 for i in range(4)]
        for key in keys:
            store.put(key, {"key": key})
        corrupt_payload_file(store.payload_path(keys[1]))
        audit = store.verify()
        assert audit["checked"] == 4 and audit["ok"] == 3
        assert audit["quarantined"] == [keys[1]]
        assert len(store) == 3
        # A second audit of the now-clean store finds nothing.
        assert store.verify() == {"checked": 3, "ok": 3, "quarantined": [],
                                  "unchecksummed": 0}

    def test_verify_tolerates_pre_checksum_entries(self, tmp_path):
        import json
        store = ResultStore(str(tmp_path))
        store.put("ef" * 32, "legacy")
        meta = store.metadata("ef" * 32)
        del meta["checksum"]
        with open(store._meta_path("ef" * 32), "w",
                  encoding="utf-8") as handle:
            json.dump(meta, handle)
        audit = store.verify()
        # Disjoint buckets: an unverifiable legacy entry is counted once,
        # as unchecksummed — never also as "ok" (it was not verified).
        assert audit == {"checked": 1, "ok": 0, "quarantined": [],
                         "unchecksummed": 1}
        assert store.get("ef" * 32) == "legacy"   # served, just unverified

    def test_contains_count_opt_out(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert not store.contains("11" * 32, count=False)
        assert store.session_stats()["misses"] == 0
        assert not store.contains("11" * 32)      # counting is the default
        assert store.session_stats()["misses"] == 1

    def test_discard_does_not_inflate_misses(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert not store.discard("22" * 32)
        store.put("33" * 32, "x")
        assert store.discard("33" * 32)
        assert store.session_stats()["misses"] == 0


# ---------------------------------------------------------------------- #
# Corruption faults through the scheduler, and payload determinism
# ---------------------------------------------------------------------- #
class TestIntegrityThroughScheduler:
    def test_corrupt_fault_is_recomputed_on_next_run(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        faulted = run_graph(_diamond(), {}, store=store,
                            faults=FaultPlan.parse("b=corrupt:1"))
        assert faulted.succeeded
        # The rerun detects the damaged entry, quarantines it, recomputes
        # it, and still serves the clean entries from cache.
        rerun = run_graph(_diamond(), {}, store=store)
        statuses = _statuses(rerun)
        assert statuses["b"] == RAN
        assert statuses["a"] == CACHED and statuses["c"] == CACHED
        assert rerun.succeeded and rerun.result == 112
        assert rerun.report.store_stats["quarantined"] == 1
        assert "quarantined" in rerun.report.summary()
        # Third run: fully cached again, from the recomputed entry.
        third = run_graph(_diamond(), {}, store=store)
        assert set(_statuses(third).values()) == {CACHED}

    def test_faulted_run_payloads_bitwise_match_clean_run(self, tmp_path):
        clean_store = ResultStore(str(tmp_path / "clean"))
        clean = run_graph(_diamond(), {"seed": 7}, store=clean_store)
        faulted_store = ResultStore(str(tmp_path / "faulted"))
        faulted = run_graph(
            _diamond(), {"seed": 7}, store=faulted_store,
            retry=_policy(max_attempts=3),
            faults=FaultPlan.parse("b=fail:2,c=crash:1"))
        assert clean.succeeded and faulted.succeeded
        assert faulted.report.retries >= 3
        clean_keys = set(clean_store.keys())
        assert clean_keys == set(faulted_store.keys())
        for key in clean_keys:
            with open(clean_store.payload_path(key), "rb") as handle:
                expected = handle.read()
            with open(faulted_store.payload_path(key), "rb") as handle:
                assert handle.read() == expected


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One checkpoint cache for the end-to-end tests (models train once)."""
    return str(tmp_path_factory.mktemp("resilience_cache"))


class TestEndToEndDeterminism:
    @pytest.mark.parametrize("accel", ["fast", "exact"])
    def test_real_experiment_identical_under_faults(self, accel, shared_cache,
                                                    tmp_path, monkeypatch):
        """A chaos-tested table6 run caches bit-for-bit what a clean run does,
        under both compute policies (the store salt resolves the policy, so
        each parametrization compares within one policy)."""
        from repro.experiments.table67 import plan_table6

        monkeypatch.setenv("REPRO_ACCEL", accel)
        config = ExperimentConfig.tiny(cache_dir=shared_cache)
        clean_store = ResultStore(str(tmp_path / "clean"))
        clean = run_graph(plan_table6(config), config, store=clean_store)
        assert clean.succeeded

        faulted_store = ResultStore(str(tmp_path / "faulted"))
        faulted = run_graph(
            plan_table6(config), config, store=faulted_store,
            retry=_policy(max_attempts=3),
            faults=FaultPlan.parse("table6/*=fail:1,table6/noise=corrupt:1"))
        assert faulted.succeeded
        assert faulted.report.retries >= 2
        assert faulted.result.formatted() == clean.result.formatted()

        # The corrupt fault damaged one on-disk entry; a rerun quarantines
        # and recomputes it (self-healing), after which every payload must
        # be bit-for-bit what the clean run cached.
        healed = run_graph(plan_table6(config), config, store=faulted_store)
        assert healed.succeeded
        assert healed.report.store_stats["quarantined"] == 1

        keys = set(clean_store.keys())
        assert keys == set(faulted_store.keys()) and keys
        for key in keys:
            with open(clean_store.payload_path(key), "rb") as handle:
                expected = handle.read()
            with open(faulted_store.payload_path(key), "rb") as handle:
                assert handle.read() == expected
        # Retry/fault machinery must not leak into the content hashes.
        assert config_salt(config) == config_salt(config)


# ---------------------------------------------------------------------- #
# Worker protocol and CLI plumbing
# ---------------------------------------------------------------------- #
class TestWorkerProtocol:
    @pytest.fixture(autouse=True)
    def _worker_process(self):
        from repro.pipeline.worker import initialize_worker
        initialize_worker({})

    def test_run_task_returns_error_types_on_failure(self):
        task_id, ok, error_text, elapsed, stats, error_types = \
            run_task("t", "res:boom", {}, {})
        assert not ok and task_id == "t"
        assert "deterministic boom" in error_text
        assert error_types[0] == "RuntimeError"
        assert stats is None

    def test_run_task_success_tuple(self):
        task_id, ok, payload, elapsed, stats, error_types = \
            run_task("t", "res:value", {"value": 5}, {})
        assert ok and payload == 5 and error_types is None


class TestCli:
    def _options(self, argv):
        from repro.pipeline.cli import build_parser, resilience_options
        return resilience_options(build_parser().parse_args(argv))

    def test_defaults_mean_scheduler_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        retry, faults = self._options([])
        assert retry is None and faults is None

    def test_retries_and_timeout_build_policy(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        retry, faults = self._options(["--retries", "2",
                                       "--task-timeout", "5.5"])
        assert retry.max_attempts == 3
        assert retry.task_timeout == 5.5
        assert faults is None

    def test_zero_retries_disables_them(self):
        retry, _ = self._options(["--retries", "0"])
        assert retry.max_attempts == 1

    def test_fault_plan_flag_and_env_fallback(self, monkeypatch):
        _, faults = self._options(["--fault-plan", "t=fail:2"])
        assert faults.specs[0].times == 2
        monkeypatch.setenv("REPRO_FAULT_PLAN", "u=crash")
        _, env_faults = self._options([])
        assert env_faults.specs[0].mode == "crash"
        # An explicit flag wins over the environment.
        _, both = self._options(["--fault-plan", "v=hang:1:9"])
        assert both.specs[0].task == "v"

    def test_experiments_cli_delegates_on_resilience_flags(self, monkeypatch):
        from repro.experiments import run as experiments_run
        seen = {}

        def fake_main(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr("repro.pipeline.cli.main", fake_main)
        assert experiments_run.main(["--experiment", "table6",
                                     "--retries", "2",
                                     "--fault-plan", "t=fail"]) == 0
        argv = seen["argv"]
        assert "--retries" in argv and "--fault-plan" in argv
        assert argv[argv.index("--jobs") + 1] == "1"
