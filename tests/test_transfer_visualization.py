"""Tests for attack transferability tooling and the visualisation helpers."""

import os

import numpy as np
import pytest

from repro.core import AttackConfig, evaluate_transfer, remap_adversarial_example, run_attack
from repro.visualization import (
    LABEL_PALETTE,
    attack_figure,
    compose_panels,
    label_colors,
    project_top_down,
    rasterize,
    render_ascii,
    save_ppm,
    segmentation_comparison,
)


@pytest.fixture(scope="module")
def unbounded_result(trained_resgcn, office_scene):
    config = AttackConfig.fast(objective="degradation", method="unbounded",
                               field="color", unbounded_steps=25)
    return run_attack(trained_resgcn, office_scene, config)


class TestTransfer:
    def test_remap_changes_coordinate_range(self, unbounded_result, trained_resgcn,
                                            trained_pointnet2):
        remapped = remap_adversarial_example(unbounded_result, trained_resgcn,
                                             trained_pointnet2)
        # ResGCN coords live in [-1, 1]; PointNet++ expects [0, 3].
        assert remapped["coords"].min() >= -1e-9
        assert remapped["coords"].max() <= 3.0 + 1e-9
        assert remapped["colors"].min() >= 0.0
        assert remapped["colors"].max() <= 1.0

    def test_same_model_remap_is_identity(self, unbounded_result, trained_resgcn):
        remapped = remap_adversarial_example(unbounded_result, trained_resgcn,
                                             trained_resgcn)
        np.testing.assert_allclose(remapped["coords"],
                                   unbounded_result.adversarial_coords, atol=1e-9)

    def test_evaluate_transfer_outcome(self, unbounded_result, trained_resgcn,
                                       trained_pointnet2):
        outcome = evaluate_transfer([unbounded_result], trained_resgcn,
                                    trained_pointnet2)
        assert outcome.num_samples == 1
        assert 0.0 <= outcome.accuracy <= 1.0
        assert outcome.source_accuracy == pytest.approx(
            unbounded_result.outcome.accuracy)

    def test_evaluate_transfer_requires_results(self, trained_resgcn, trained_pointnet2):
        with pytest.raises(ValueError):
            evaluate_transfer([], trained_resgcn, trained_pointnet2)


class TestRendering:
    def test_label_colors_shape_and_range(self):
        colors = label_colors(np.array([0, 5, 12, 25]))
        assert colors.shape == (4, 3)
        assert colors.min() >= 0 and colors.max() <= 255
        assert len(LABEL_PALETTE) >= 13

    def test_project_top_down_bounds(self, rng):
        coords = rng.normal(size=(100, 3))
        cols, rows, order = project_top_down(coords, 64, 32)
        assert cols.min() >= 0 and cols.max() < 64
        assert rows.min() >= 0 and rows.max() < 32
        assert order.shape == (100,)

    def test_rasterize_shape(self, rng):
        image = rasterize(rng.normal(size=(50, 3)), rng.uniform(0, 255, size=(50, 3)),
                          width=40, height=20)
        assert image.shape == (20, 40, 3)

    def test_higher_points_drawn_last(self):
        coords = np.array([[0.5, 0.5, 0.0], [0.5, 0.5, 1.0]])
        colors = np.array([[10.0, 10, 10], [200.0, 200, 200]])
        image = rasterize(coords, colors, width=3, height=3)
        # Both points land on the same pixel; the higher (brighter) one wins.
        assert (image == 200.0).any()
        assert not (image == 10.0).any()

    def test_render_ascii_dimensions(self, office_scene):
        art = render_ascii(office_scene.coords, office_scene.labels, width=40, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)
        assert any(ch != " " for ch in art)

    def test_save_ppm_writes_valid_header(self, tmp_path, rng):
        image = rng.uniform(0, 255, size=(8, 10, 3))
        path = os.path.join(tmp_path, "img", "test.ppm")
        save_ppm(path, image)
        with open(path, "rb") as handle:
            header = handle.read(15)
        assert header.startswith(b"P6\n10 8\n255\n")

    def test_compose_panels_grid(self, rng):
        panels = [rng.uniform(0, 255, size=(10, 12, 3)) for _ in range(4)]
        grid = compose_panels(panels, columns=2, padding=2)
        assert grid.shape == (22, 26, 3)

    def test_compose_panels_rejects_mismatched_shapes(self, rng):
        with pytest.raises(ValueError):
            compose_panels([np.zeros((4, 4, 3)), np.zeros((5, 4, 3))])

    def test_compose_panels_requires_input(self):
        with pytest.raises(ValueError):
            compose_panels([])


class TestFigures:
    def test_attack_figure_without_file(self, unbounded_result):
        figure = attack_figure(unbounded_result, path=None)
        assert figure.image_path is None
        assert figure.accuracy_before >= figure.accuracy_after
        assert len(figure.ascii_original.split("\n")) == 28

    def test_attack_figure_writes_ppm(self, unbounded_result, tmp_path):
        path = os.path.join(tmp_path, "figure.ppm")
        figure = attack_figure(unbounded_result, path=path)
        assert figure.image_path == path
        assert os.path.getsize(path) > 100

    def test_segmentation_comparison(self, trained_resgcn, office_scene, tmp_path):
        from repro.datasets import prepare_scene
        prepared = prepare_scene(office_scene, trained_resgcn.spec)
        prediction = trained_resgcn.predict_single(prepared.coords, prepared.colors)
        path = os.path.join(tmp_path, "clean.ppm")
        output = segmentation_comparison(prepared.coords, prediction, prepared.labels,
                                         path=path)
        assert os.path.exists(output["image_path"])
        assert "ascii_ground_truth" in output and "ascii_prediction" in output
