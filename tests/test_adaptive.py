"""Adaptive (defense-aware) attack mode: EOT engines, salting, experiments.

Extends the cross-engine contract to the adaptive mode: for every engine
family and compute policy, a defense-aware attack must stay deterministic
and bit-for-bit identical between serial and ``batch_scenes`` execution —
for a stochastic transformation defense (jitter), an affine one (rotation)
and a removal defense (SOR).  Plus: the ``AttackConfig`` validation rules,
result-store salting of the new knobs, black-box query accounting under
EOT, empty-defended-cloud evaluation semantics, and the ``table_defenses``
plan.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import AttackConfig, run_attack, run_attack_batch
from repro.datasets import generate_room_scene, prepare_scene
from repro.defenses import SimpleRandomSampling, evaluate_with_defense
from repro.experiments.context import ExperimentConfig
from repro.models import build_model
from repro.pipeline.scheduler import config_salt

pytestmark = pytest.mark.contract

ENGINES = {
    "bounded": dict(method="bounded", bounded_steps=4),
    "unbounded": dict(method="unbounded", unbounded_steps=4,
                      smoothness_alpha=4),
    "nes": dict(attack_mode="nes", query_budget=40, samples_per_step=2),
    "boundary": dict(attack_mode="boundary", query_budget=40,
                     boundary_init_tries=3),
}

DEFENSES = {
    "jitter": {"sigma": 0.03, "color_sigma": 0.02},
    "rotation": {"max_angle_deg": 15.0},
    "sor": {},                       # deterministic removal: collapses to K=1
    "srs": {"num_removed": 10},      # stochastic removal: K shared forwards
}

POLICIES = {
    "fast": dict(compute_dtype="float32", neighbor_refresh=5,
                 smoothness_neighbors="clean"),
    "exact": dict(compute_dtype="float64", neighbor_refresh=1,
                  smoothness_neighbors="current"),
}


def make_config(engine: str, defense: str, policy: str, **overrides
                ) -> AttackConfig:
    values = dict(field="color", seed=0, target_accuracy=0.0,
                  adaptive=True, defense=defense,
                  defense_kwargs=DEFENSES[defense], eot_samples=2)
    values.update(ENGINES[engine])
    values.update(POLICIES[policy])
    values.update(overrides)
    return AttackConfig.fast(**values)


@pytest.fixture(scope="module")
def scenes():
    rng = np.random.default_rng(13)
    return [generate_room_scene(num_points=96, room_type="office", rng=rng,
                                name=f"adaptive_{i}")
            for i in range(3)]


@pytest.fixture(scope="module")
def model():
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    model.eval()
    return model


class TestConfigValidation:
    def test_adaptive_requires_defense(self):
        with pytest.raises(ValueError, match="require a defense"):
            AttackConfig.fast(adaptive=True)

    def test_defense_requires_adaptive(self):
        with pytest.raises(ValueError, match="adaptive"):
            AttackConfig.fast(defense="jitter")

    def test_eot_samples_validated(self):
        with pytest.raises(ValueError, match="eot_samples"):
            AttackConfig.fast(eot_samples=0)

    def test_unknown_defense_rejected_at_engine_build(self, model, scenes):
        config = AttackConfig.fast(adaptive=True, defense="nope",
                                   method="bounded")
        with pytest.raises(ValueError, match="unknown defense"):
            run_attack(model, scenes[0], config)

    def test_steps_accounts_for_eot_queries(self):
        static = AttackConfig.fast(attack_mode="nes", query_budget=100,
                                   samples_per_step=4)
        adaptive = AttackConfig.fast(attack_mode="nes", query_budget=100,
                                     samples_per_step=4, adaptive=True,
                                     defense="jitter", eot_samples=4)
        assert adaptive.steps < static.steps
        boundary = AttackConfig.fast(attack_mode="boundary", query_budget=100,
                                     adaptive=True, defense="jitter",
                                     eot_samples=4)
        assert boundary.steps == 25


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("defense", sorted(DEFENSES))
@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestAdaptiveEngineContract:
    def test_seeded_determinism(self, model, scenes, engine, defense, policy):
        config = make_config(engine, defense, policy)
        first = run_attack(model, scenes[0], config)
        second = run_attack(model, scenes[0], config)
        np.testing.assert_array_equal(first.adversarial_colors,
                                      second.adversarial_colors)
        assert first.history == second.history

    def test_serial_vs_batched_bitwise(self, model, scenes, engine, defense,
                                       policy):
        config = make_config(engine, defense, policy)
        serial = run_attack_batch(model, scenes, config)
        batched = run_attack_batch(
            model, scenes, dataclasses.replace(config,
                                               batch_scenes=len(scenes)))
        assert len(serial) == len(batched)
        for left, right in zip(serial, batched):
            np.testing.assert_array_equal(left.adversarial_colors,
                                          right.adversarial_colors)
            np.testing.assert_array_equal(left.adversarial_coords,
                                          right.adversarial_coords)
            assert left.history == right.history
            assert left.iterations == right.iterations
            assert left.l2 == right.l2


class TestAdaptiveQueryAccounting:
    def test_nes_budget_respected_with_eot(self, model, scenes):
        config = make_config("nes", "jitter", "fast", query_budget=30,
                             eot_samples=3, target_accuracy=-1.0)
        result = run_attack(model, scenes[0], config)
        queries = [entry["queries"] for entry in result.history]
        assert queries == sorted(queries)
        assert queries[-1] <= 30
        # History records queries at each convergence check: the first costs
        # one, and between checks a step spends 2 * S * K defended probes.
        assert queries[0] == 1
        if len(queries) > 1:
            assert queries[1] == 2 + 2 * config.samples_per_step * 3

    def test_boundary_counts_each_view(self, model, scenes):
        config = make_config("boundary", "jitter", "fast", query_budget=31,
                             eot_samples=3)
        result = run_attack(model, scenes[0], config)
        assert result.history[-1]["queries"] <= 31
        # Every proposal costs one query per defended view.
        assert result.history[0]["queries"] == 3

    def test_boundary_budget_smaller_than_views(self, model, scenes):
        """A walk that cannot afford one full proposal spends nothing."""
        config = make_config("boundary", "jitter", "fast", query_budget=2,
                             eot_samples=5)
        result = run_attack(model, scenes[0], config)
        assert result.history == []
        assert not result.converged
        np.testing.assert_array_equal(result.adversarial_colors,
                                      result.original_colors)

    def test_deterministic_defense_collapses_samples(self, model, scenes):
        """Identical samples are pointless: voxel draws once, jitter K times."""
        from repro.core.eot import build_eot

        voxel = AttackConfig.fast(attack_mode="nes", field="color",
                                  query_budget=40, samples_per_step=2,
                                  adaptive=True, defense="voxel",
                                  eot_samples=4)
        jitter = make_config("nes", "jitter", "fast", eot_samples=4)
        assert build_eot(voxel).samples == 1
        assert build_eot(jitter).samples == 4
        # The collapsed count also drives the black-box query cost: a NES
        # step against voxel pays the static 2 * S probes, not 2 * S * K.
        result = run_attack(model, scenes[0],
                            dataclasses.replace(voxel, query_budget=30,
                                                target_accuracy=-1.0))
        queries = [entry["queries"] for entry in result.history]
        if len(queries) > 1:
            assert queries[1] == 2 + 2 * voxel.samples_per_step


class TestChunkedEvaluation:
    def test_forward_chunking_is_bitwise_neutral(self, model, scenes,
                                                 monkeypatch):
        """Splitting the stacked inference forward never changes results.

        Adaptive probes multiply the row count by ``eot_samples``; the
        engines chunk oversized forwards, relying on batch-position
        independence — asserted here by forcing a tiny chunk size.
        """
        from repro.core.blackbox import _BlackBoxAttack

        config = make_config("nes", "jitter", "fast", eot_samples=3)
        reference = run_attack(model, scenes[0], config)
        monkeypatch.setattr(_BlackBoxAttack, "max_eval_rows", 2)
        chunked = run_attack(model, scenes[0], config)
        np.testing.assert_array_equal(reference.adversarial_colors,
                                      chunked.adversarial_colors)
        assert reference.history == chunked.history


class TestStoreSalt:
    def test_eot_samples_participates(self):
        base = config_salt(ExperimentConfig.default())
        assert config_salt(ExperimentConfig.default(eot_samples=4)) != base

    def test_batch_scenes_still_excluded(self):
        adaptive = config_salt(ExperimentConfig.default(eot_samples=4))
        batched = config_salt(ExperimentConfig.default(eot_samples=4,
                                                       batch_scenes=8))
        assert adaptive == batched


class TestEmptyDefendedCloud:
    def test_nan_scores_and_no_model_call(self, office_scene):
        class _ExplodingModel:
            num_classes = 13

            def predict_single(self, coords, colors):
                raise AssertionError("model must not see an empty cloud")

        coords = np.zeros((5, 3))
        colors = np.zeros((5, 3))
        labels = np.zeros(5, dtype=np.int64)
        defense = SimpleRandomSampling(num_removed=50, seed=0)
        evaluation = evaluate_with_defense(_ExplodingModel(), defense,
                                           coords, colors, labels)
        assert np.isnan(evaluation.accuracy)
        assert np.isnan(evaluation.aiou)
        assert evaluation.points_removed == 5
        assert evaluation.defended_points == 0

    def test_surviving_cloud_reports_counts(self, trained_resgcn, office_scene):
        prepared = prepare_scene(office_scene, trained_resgcn.spec)
        defense = SimpleRandomSampling(num_removed=10, seed=0)
        evaluation = evaluate_with_defense(trained_resgcn, defense,
                                           prepared.coords, prepared.colors,
                                           prepared.labels)
        assert evaluation.defended_points == prepared.coords.shape[0] - 10
        assert not np.isnan(evaluation.accuracy)


class TestTableDefensesPlan:
    def test_plan_structure(self):
        from repro.experiments.table_defenses import (defense_specs,
                                                      plan_table_defenses)
        config = ExperimentConfig.tiny()
        graph = plan_table_defenses(config)
        ids = {task.task_id for task in graph.topological_order()}
        assert "table_defenses/static" in ids
        assert "table_defenses/clean" in ids
        for spec in defense_specs(config):
            label = spec.get("label", spec["name"])
            assert f"table_defenses/adaptive/{label}" in ids
        assert graph.result == "table_defenses:result"

    def test_eot_samples_override(self):
        from repro.experiments.table_defenses import eot_samples
        assert eot_samples(ExperimentConfig.default()) == 4
        assert eot_samples(ExperimentConfig.default(eot_samples=9)) == 9
        assert eot_samples(ExperimentConfig.paper_scale()) == 8

    def test_nan_safe_mean(self):
        from repro.experiments.table8 import nan_safe_mean
        assert nan_safe_mean([0.5, float("nan"), 0.7]) == pytest.approx(0.6)
        assert np.isnan(nan_safe_mean([float("nan")]))
