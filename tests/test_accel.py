"""Tests for the repro.accel compute-policy layer.

Covers the three contracts the layer makes:

* **dtype policy** — tensors follow the active policy; gradients are correct
  at float32 tolerances; float64 exactness mode reproduces the seed
  implementation bit-for-bit (golden values captured from the pre-accel
  code in ``tests/data/seed_golden.json``);
* **NeighborhoodCache** — exact hits on unchanged content, stale reuse only
  inside the refresh window, invalidation on coordinate updates;
* **model casting / freezing** — parameters are viewed in float32 inside an
  attack context and restored (same objects, same bits) afterwards.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.accel import (
    ComputePolicy,
    NeighborhoodCache,
    attack_compute,
    cast_model,
    compute_dtype,
    current_policy,
    freeze_parameters,
    neighborhoods,
    use_cache,
    use_policy,
)
from repro.core import AttackConfig, run_attack
from repro.datasets import generate_room_scene
from repro.geometry import knn_indices
from repro.models import build_model
from repro.nn import Tensor

DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")
GOLDEN_PATH = os.path.join(DATA_DIR, "seed_golden.json")
GOLDEN_NPZ_PATH = os.path.join(DATA_DIR, "seed_golden.npz")

#: Bit-for-bit golden assertions (hex floats, sha256 of trajectories) hold on
#: the machine/numpy-BLAS combination that captured the goldens; a different
#: dgemm kernel legitimately changes low-order bits.  The tolerance-based
#: comparison against the full seed arrays always runs; set
#: ``REPRO_GOLDEN_BITWISE=1`` to also enforce bitwise equality.
BITWISE = os.environ.get("REPRO_GOLDEN_BITWISE", "") == "1"


def _digest(arr: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(arr, dtype=np.float64).tobytes()).hexdigest()


def _golden_scene():
    return generate_room_scene(num_points=128, room_type="office",
                               rng=np.random.default_rng(7), name="golden")


def _golden_config(method: str, field: str, **compute) -> AttackConfig:
    return AttackConfig.fast(method=method, field=field, unbounded_steps=6,
                             bounded_steps=6, smoothness_alpha=4,
                             min_impact_points=16, seed=3,
                             target_accuracy=0.0, **compute)


# ---------------------------------------------------------------------- #
# ComputePolicy
# ---------------------------------------------------------------------- #
class TestComputePolicy:
    def test_default_policy_is_exact_float64(self):
        assert current_policy().is_exact
        assert compute_dtype() == np.dtype(np.float64)
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_policy_context_switches_tensor_dtype(self):
        with use_policy(ComputePolicy.fast()):
            assert Tensor([1.0, 2.0]).dtype == np.float32
            t = Tensor(np.arange(4, dtype=np.float64))
            assert t.dtype == np.float32
        assert Tensor([1.0]).dtype == np.float64

    def test_policy_contexts_nest(self):
        with use_policy(ComputePolicy.fast()):
            with use_policy(ComputePolicy.exact()):
                assert compute_dtype() == np.dtype(np.float64)
            assert compute_dtype() == np.dtype(np.float32)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            ComputePolicy(dtype=np.int32)
        with pytest.raises(ValueError):
            ComputePolicy(neighbor_refresh=0)

    def test_from_attack_config(self):
        fast = ComputePolicy.from_attack_config(AttackConfig.fast())
        assert fast.dtype == np.dtype(np.float32)
        assert fast.neighbor_refresh == 5
        exact = ComputePolicy.from_attack_config(AttackConfig.paper_scale())
        assert exact.is_exact

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "exact")
        assert ComputePolicy.from_attack_config(AttackConfig.fast()).is_exact
        monkeypatch.setenv("REPRO_ACCEL", "fast")
        assert not ComputePolicy.from_attack_config(
            AttackConfig.paper_scale()).is_exact

    def test_env_override_typo_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL", "excat")
        with pytest.raises(ValueError):
            ComputePolicy.from_attack_config(AttackConfig.fast())

    def test_float32_gradients_match_finite_differences(self):
        """Autograd under the fast policy is correct at float32 tolerances."""
        rng = np.random.default_rng(0)
        x64 = rng.normal(size=(5, 4))

        def objective(t):
            return ((t * t).sum(axis=1) + 1.0).sqrt().tanh().sum()

        with use_policy(ComputePolicy.fast()):
            t = Tensor(x64, requires_grad=True)
            assert t.dtype == np.float32
            out = objective(t)
            assert out.dtype == np.float32
            out.backward()
            grad = np.array(t.grad, dtype=np.float64)

        eps = 1e-4
        numeric = np.zeros_like(x64)
        for i in np.ndindex(*x64.shape):
            hi, lo = x64.copy(), x64.copy()
            hi[i] += eps
            lo[i] -= eps
            numeric[i] = (objective(Tensor(hi)).item()
                          - objective(Tensor(lo)).item()) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, rtol=1e-2, atol=1e-3)


# ---------------------------------------------------------------------- #
# Exactness mode vs the seed implementation
# ---------------------------------------------------------------------- #
class TestExactnessGolden:
    """float64 / R=1 / current-neighbour mode reproduces the seed.

    The golden arrays were captured by running the *pre-accel* code on the
    same models, scene and configurations.  The comparison is tight
    tolerance by default (robust to BLAS kernel differences between
    machines) and bit-for-bit under ``REPRO_GOLDEN_BITWISE=1`` (verified on
    the capture machine).
    """

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            return json.load(handle)

    @pytest.fixture(scope="class")
    def golden_arrays(self):
        with np.load(GOLDEN_NPZ_PATH) as payload:
            return {key: payload[key] for key in payload.files}

    def _check_against_golden(self, result, case, golden, golden_arrays):
        expected = golden[case]
        l2, linf, l0, accuracy, iterations = golden_arrays[f"{case}/scalars"]
        np.testing.assert_allclose(result.adversarial_coords,
                                   golden_arrays[f"{case}/coords"],
                                   rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(result.adversarial_colors,
                                   golden_arrays[f"{case}/colors"],
                                   rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose([h["loss"] for h in result.history],
                                   golden_arrays[f"{case}/losses"],
                                   rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(
            [result.l2, result.linf, result.l0, result.outcome.accuracy],
            [l2, linf, l0, accuracy], rtol=1e-7, atol=1e-9)
        assert result.iterations == int(iterations)
        if BITWISE:
            assert result.l2.hex() == expected["l2"]
            assert result.linf.hex() == expected["linf"]
            assert result.l0.hex() == expected["l0"]
            assert float(result.outcome.accuracy).hex() == expected["accuracy"]
            assert _digest(result.adversarial_colors) == expected["colors_sha256"]
            assert _digest(result.adversarial_coords) == expected["coords_sha256"]
            assert ([h["loss"].hex() for h in result.history]
                    == expected["loss_history"])

    @pytest.mark.parametrize("case", [
        "pointnet2/unbounded/color",
        "pointnet2/bounded/color",
        "resgcn/unbounded/coordinate",
        "resgcn/bounded/color",
        "randlanet/unbounded/color",
    ])
    def test_exact_mode_reproduces_seed(self, golden, golden_arrays, case):
        model_name, method, field = case.split("/")
        kwargs = {"num_blocks": 2} if model_name == "resgcn" else {}
        model = build_model(model_name, num_classes=13, hidden=16, seed=0,
                            **kwargs)
        model.eval()
        config = _golden_config(method, field, compute_dtype="float64",
                                neighbor_refresh=1,
                                smoothness_neighbors="current")
        result = run_attack(model, _golden_scene(), config)
        self._check_against_golden(result, case, golden, golden_arrays)

    def test_env_exact_override_restores_full_seed_behaviour(
            self, golden, golden_arrays, monkeypatch):
        """REPRO_ACCEL=exact on a *fast* config reproduces the seed exactly.

        Regression test: the override must restore the smoothness neighbour
        source too, which only matters for coordinate-field attacks (the
        clean and current sources coincide for colour attacks).
        """
        monkeypatch.setenv("REPRO_ACCEL", "exact")
        case = "resgcn/unbounded/coordinate"
        model = build_model("resgcn", num_classes=13, hidden=16, num_blocks=2,
                            seed=0)
        model.eval()
        config = _golden_config("unbounded", "coordinate")
        assert config.compute_dtype == "float32"   # fast defaults in config
        result = run_attack(model, _golden_scene(), config)
        self._check_against_golden(result, case, golden, golden_arrays)

    def test_fast_mode_still_attacks(self, golden):
        """Fast mode changes the numbers but not the qualitative outcome."""
        model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
        model.eval()
        config = _golden_config("unbounded", "color")
        assert config.compute_dtype == "float32"
        result = run_attack(model, _golden_scene(), config)
        assert np.isfinite(result.l2)
        assert result.adversarial_colors.dtype == np.float64  # reporting dtype
        assert np.abs(result.color_perturbation).max() > 0

    def test_float32_sqrt_zero_gradient_is_finite(self):
        """sqrt(0) backward must not divide by zero under float32.

        Regression test: the seed's 1e-300 division floor underflows to 0
        in float32, which NaN-poisoned RandLANet gradients (its LocSE
        branch takes sqrt of each point's zero self-distance).
        """
        with use_policy(ComputePolicy.fast()):
            t = Tensor(np.array([0.0, 4.0]), requires_grad=True)
            t.sqrt().sum().backward()
            assert np.isfinite(t.grad).all()

    @pytest.mark.parametrize("model_name", ["pointnet2", "resgcn", "randlanet"])
    def test_fast_mode_multistep_coordinate_gradients_finite(self, model_name):
        """Multi-step fast-mode coordinate attacks stay NaN-free per model."""
        kwargs = {"num_blocks": 2} if model_name == "resgcn" else {}
        model = build_model(model_name, num_classes=13, hidden=16, seed=0,
                            **kwargs)
        model.eval()
        config = AttackConfig.fast(method="unbounded", field="coordinate",
                                   unbounded_steps=4, smoothness_alpha=4,
                                   min_impact_points=16, seed=3,
                                   target_accuracy=-1.0)  # never converge
        result = run_attack(model, _golden_scene(), config)
        assert result.iterations == 4
        assert np.isfinite(result.adversarial_coords).all()
        assert np.isfinite([h["loss"] for h in result.history]).all()

    def test_fast_mode_l0_not_inflated_by_float32_residue(self):
        """Eq. 12-pruned points must be bit-exact originals in fast mode.

        Regression test: recomposing the best snapshot with the full target
        mask instead of the per-step allowed mask left float32-rounding
        residue on restored points, counting all of them in L0 (Eq. 8).
        """
        model = build_model("resgcn", num_classes=13, hidden=16, num_blocks=2,
                            seed=0)
        model.eval()
        config = _golden_config("unbounded", "coordinate")
        assert config.compute_dtype == "float32"
        result = run_attack(model, _golden_scene(), config)
        assert result.l0 < 128  # pruned/restored points carry no residue

    def test_bounded_fast_mode_respects_epsilon(self):
        model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
        model.eval()
        config = _golden_config("bounded", "color", )
        result = run_attack(model, _golden_scene(), config)
        assert result.linf <= config.epsilon + 1e-9


# ---------------------------------------------------------------------- #
# NeighborhoodCache
# ---------------------------------------------------------------------- #
class TestNeighborhoodCache:
    def _cloud(self, n=40, seed=0):
        return np.random.default_rng(seed).uniform(0.0, 1.0, (n, 3))

    def test_exact_hit_on_identical_content(self):
        cache = NeighborhoodCache(refresh_interval=1)
        points = self._cloud()
        first = cache.knn(points, 4, slot=("t", 0))
        second = cache.knn(points.copy(), 4, slot=("t", 0))
        np.testing.assert_array_equal(first, second)
        assert cache.exact_hits == 1
        assert cache.misses == 1

    def test_refresh_one_recomputes_on_change(self):
        cache = NeighborhoodCache(refresh_interval=1)
        points = self._cloud()
        first = cache.knn(points, 4, slot=("t", 0))
        moved = points + 0.5
        cache.advance()
        second = cache.knn(moved, 4, slot=("t", 0))
        assert cache.stale_hits == 0
        assert cache.misses == 2
        reference = knn_indices(moved, 4)
        np.testing.assert_array_equal(second, reference)
        del first

    def test_stale_reuse_inside_refresh_window(self):
        cache = NeighborhoodCache(refresh_interval=3)
        points = self._cloud()
        first = cache.knn(points, 4, slot=("t", 0))
        cache.advance()
        moved = points + 0.01
        second = cache.knn(moved, 4, slot=("t", 0))     # age 1 < 3: stale hit
        np.testing.assert_array_equal(first, second)
        assert cache.stale_hits == 1

    def test_recompute_after_refresh_window(self):
        cache = NeighborhoodCache(refresh_interval=2)
        points = self._cloud()
        cache.knn(points, 4, slot=("t", 0))
        rng = np.random.default_rng(9)
        for _ in range(2):
            cache.advance()
        shuffled = points[rng.permutation(points.shape[0])]
        result = cache.knn(shuffled, 4, slot=("t", 0))   # age 2 >= 2: miss
        assert cache.misses == 2
        np.testing.assert_array_equal(result, knn_indices(shuffled, 4))

    def test_distinct_k_do_not_collide(self):
        cache = NeighborhoodCache(refresh_interval=5)
        points = self._cloud()
        k3 = cache.knn(points, 3, slot=("t", 0))
        k5 = cache.knn(points, 5, slot=("t", 0))
        assert k3.shape[1] == 3
        assert k5.shape[1] == 5

    def test_tree_shared_across_k(self):
        cache = NeighborhoodCache()
        points = self._cloud()
        cache.knn(points, 3)
        cache.knn(points, 5)
        cache.dilated(points, 3, dilation=2)
        assert cache.tree_hits >= 2

    def test_content_keyed_lookup_without_slot(self):
        cache = NeighborhoodCache()
        points = self._cloud()
        cache.knn(points, 4, include_self=False)
        cache.knn(points, 4, include_self=False)
        assert cache.exact_hits == 1

    def test_use_cache_installs_and_restores(self):
        default = neighborhoods()
        scoped = NeighborhoodCache(refresh_interval=7)
        with use_cache(scoped):
            assert neighborhoods() is scoped
        assert neighborhoods() is default


# ---------------------------------------------------------------------- #
# kNN vectorisation equivalence
# ---------------------------------------------------------------------- #
class TestKnnEquivalence:
    def _reference_exclude_self(self, points, k):
        """The seed's per-row Python implementation of include_self=False."""
        from scipy.spatial import cKDTree
        n = points.shape[0]
        k = max(min(k, n - 1), 1)
        tree = cKDTree(points)
        _, idx = tree.query(points, k=min(k + 1, n))
        idx = np.atleast_2d(idx)
        cleaned = np.empty((n, k), dtype=np.int64)
        for row in range(n):
            neighbours = [j for j in idx[row] if j != row][:k]
            while len(neighbours) < k:
                neighbours.append(neighbours[-1])
            cleaned[row] = neighbours
        return cleaned

    @pytest.mark.parametrize("n,k", [(10, 3), (25, 6), (5, 4), (7, 1)])
    def test_vectorised_exclude_self_matches_reference(self, n, k):
        points = np.random.default_rng(n * 31 + k).uniform(0, 1, (n, 3))
        np.testing.assert_array_equal(
            knn_indices(points, k, include_self=False),
            self._reference_exclude_self(points, k))

    def test_exclude_self_with_duplicate_points(self):
        base = np.random.default_rng(3).uniform(0, 1, (8, 3))
        points = np.concatenate([base, base[:3]])   # exact duplicates
        result = knn_indices(points, 4, include_self=False)
        assert result.shape == (11, 4)
        for row in range(points.shape[0]):
            assert row not in result[row]

    def test_single_point_cloud_does_not_crash(self):
        result = knn_indices(np.zeros((1, 3)), 2, include_self=False)
        assert result.shape == (1, 1)


# ---------------------------------------------------------------------- #
# Model casting and parameter freezing
# ---------------------------------------------------------------------- #
class TestModelCasting:
    def _model(self):
        model = build_model("resgcn", num_classes=13, hidden=16, num_blocks=2,
                            seed=0)
        model.eval()
        return model

    def test_cast_model_roundtrip_restores_original_arrays(self):
        model = self._model()
        originals = {name: param.data for name, param in model.named_parameters()}
        with cast_model(model, np.float32):
            for _, param in model.named_parameters():
                assert param.data.dtype == np.float32
        for name, param in model.named_parameters():
            assert param.data is originals[name]       # same objects, same bits

    def test_cast_model_casts_batchnorm_buffers(self):
        model = self._model()
        with cast_model(model, np.float32):
            for _, buffer in model.named_buffers():
                assert buffer.dtype == np.float32
        for _, buffer in model.named_buffers():
            assert buffer.dtype == np.float64

    def test_freeze_parameters_restores(self):
        model = self._model()
        with freeze_parameters(model):
            assert not any(p.requires_grad for p in model.parameters())
        assert all(p.requires_grad for p in model.parameters())

    def test_attack_compute_installs_everything(self):
        model = self._model()
        config = AttackConfig.fast()
        with attack_compute(model, config) as cache:
            assert compute_dtype() == np.dtype(np.float32)
            assert neighborhoods() is cache
            assert cache.refresh_interval == config.neighbor_refresh
            assert not model.parameters()[0].requires_grad
            assert model.parameters()[0].data.dtype == np.float32
        assert compute_dtype() == np.dtype(np.float64)
        assert model.parameters()[0].requires_grad
        assert model.parameters()[0].data.dtype == np.float64

    def test_logits_memo_invalidates_on_buffer_change(self):
        """Reporting-forward memoisation keys over BatchNorm buffers too."""
        model = self._model()
        rng = np.random.default_rng(4)
        coords = rng.uniform(0, 1, (1, 24, 3))
        colors = rng.uniform(0, 1, (1, 24, 3))
        before = model.logits_numpy(coords, colors)
        model.train()
        model(Tensor(coords), Tensor(colors))   # updates running stats only
        model.eval()
        after = model.logits_numpy(coords, colors)
        assert not np.array_equal(before, after)

    def test_frozen_parameters_receive_no_gradients(self):
        model = self._model()
        coords = np.random.default_rng(0).uniform(0, 1, (1, 32, 3))
        colors = np.random.default_rng(1).uniform(0, 1, (1, 32, 3))
        with attack_compute(model, AttackConfig.fast()):
            coords_t = Tensor(coords, requires_grad=True)
            logits = model(coords_t, Tensor(colors))
            logits.sum().backward()
            assert coords_t.grad is not None
            assert all(p.grad is None for p in model.parameters())
