"""Unit tests for the PCSS models and the training loop."""

import os

import numpy as np
import pytest

from repro.datasets import prepare_batch, s3dis_train_test_split
from repro.models import (
    PointNet2Seg,
    RandLANetSeg,
    ResGCNSeg,
    TrainingConfig,
    build_model,
    evaluate_model,
    register_model,
    train_model,
    train_or_load,
    MODEL_NAMES,
)
from repro.models.base import check_inputs
from repro.nn import Tensor, cross_entropy


MODEL_CLASSES = {"pointnet2": PointNet2Seg, "resgcn": ResGCNSeg, "randlanet": RandLANetSeg}


class TestRegistry:
    def test_model_names(self):
        assert {"pointnet2", "resgcn", "randlanet", "pct"} <= set(MODEL_NAMES)

    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_build_model_types(self, name):
        model = build_model(name, num_classes=5, hidden=8)
        assert isinstance(model, MODEL_CLASSES[name])
        assert model.num_classes == 5

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("pointnet99", num_classes=3)

    def test_register_model(self):
        register_model("custom-test-model", lambda num_classes, **kw: ResGCNSeg(num_classes, **kw))
        model = build_model("custom-test-model", num_classes=4, hidden=8)
        assert model.num_classes == 4
        with pytest.raises(ValueError):
            register_model("custom-test-model", ResGCNSeg)


class TestForward:
    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_logits_shape(self, untrained_models, office_scene, name):
        model = untrained_models[name]
        batch = prepare_batch([office_scene], model.spec)
        logits = model.logits_numpy(batch.coords, batch.colors)
        assert logits.shape == (1, office_scene.num_points, 13)
        assert np.isfinite(logits).all()

    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_batch_of_two(self, untrained_models, tiny_s3dis, name):
        model = untrained_models[name]
        batch = prepare_batch(tiny_s3dis.scenes[:2], model.spec)
        logits = model.logits_numpy(batch.coords, batch.colors)
        assert logits.shape == (2, 192, 13)

    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_predict_shapes(self, untrained_models, office_scene, name):
        model = untrained_models[name]
        batch = prepare_batch([office_scene], model.spec)
        prediction = model.predict(batch.coords, batch.colors)
        assert prediction.shape == (1, office_scene.num_points)
        single = model.predict_single(batch.coords[0], batch.colors[0])
        assert single.shape == (office_scene.num_points,)

    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_eval_forward_is_deterministic(self, untrained_models, office_scene, name):
        model = untrained_models[name]
        model.eval()
        batch = prepare_batch([office_scene], model.spec)
        first = model.logits_numpy(batch.coords, batch.colors)
        second = model.logits_numpy(batch.coords, batch.colors)
        np.testing.assert_allclose(first, second)

    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_gradient_flows_to_colors(self, untrained_models, office_scene, name):
        model = untrained_models[name]
        model.eval()
        batch = prepare_batch([office_scene], model.spec)
        coords = Tensor(batch.coords)
        colors = Tensor(batch.colors, requires_grad=True)
        logits = model(coords, colors)
        logits.sum().backward()
        assert colors.grad is not None
        assert np.abs(colors.grad).max() > 0

    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_gradient_flows_to_coords(self, untrained_models, office_scene, name):
        model = untrained_models[name]
        model.eval()
        batch = prepare_batch([office_scene], model.spec)
        coords = Tensor(batch.coords, requires_grad=True)
        colors = Tensor(batch.colors)
        logits = model(coords, colors)
        logits.sum().backward()
        assert coords.grad is not None
        assert np.abs(coords.grad).max() > 0

    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_weight_gradients_from_cross_entropy(self, untrained_models,
                                                 office_scene, name):
        model = untrained_models[name]
        model.train()
        batch = prepare_batch([office_scene], model.spec)
        logits = model(Tensor(batch.coords), Tensor(batch.colors))
        loss = cross_entropy(logits, batch.labels)
        model.zero_grad()
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert len(grads) > 0
        assert any(np.abs(g).max() > 0 for g in grads)
        model.eval()

    def test_check_inputs_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            check_inputs(Tensor(np.zeros((2, 5, 2))), Tensor(np.zeros((2, 5, 3))))
        with pytest.raises(ValueError):
            check_inputs(Tensor(np.zeros((2, 5, 3))), Tensor(np.zeros((2, 4, 3))))

    def test_describe_mentions_parameters(self, untrained_models):
        text = untrained_models["resgcn"].describe()
        assert "resgcn" in text
        assert "classes" in text

    def test_resgcn_supports_deep_config(self, office_scene):
        deep = ResGCNSeg(num_classes=13, num_blocks=6, hidden=8, k=4)
        batch = prepare_batch([office_scene], deep.spec)
        logits = deep.logits_numpy(batch.coords[:, :64], batch.colors[:, :64])
        assert logits.shape == (1, 64, 13)

    def test_pointnet2_respects_custom_ratios(self, office_scene):
        model = PointNet2Seg(num_classes=13, hidden=8, sa_ratios=(0.5,))
        batch = prepare_batch([office_scene], model.spec)
        logits = model.logits_numpy(batch.coords[:, :64], batch.colors[:, :64])
        assert logits.shape == (1, 64, 13)

    def test_randlanet_single_layer(self, office_scene):
        model = RandLANetSeg(num_classes=13, hidden=8, num_layers=1)
        batch = prepare_batch([office_scene], model.spec)
        logits = model.logits_numpy(batch.coords[:, :64], batch.colors[:, :64])
        assert logits.shape == (1, 64, 13)


class TestTraining:
    def test_training_reduces_loss(self, tiny_s3dis):
        train, _ = s3dis_train_test_split(tiny_s3dis)
        model = build_model("randlanet", num_classes=13, hidden=16, seed=1)
        history = train_model(model, train.scenes,
                              TrainingConfig(epochs=5, learning_rate=8e-3, seed=1))
        assert len(history.losses) == 5
        assert history.losses[-1] < history.losses[0]
        assert not model.training          # left in eval mode

    def test_trained_model_beats_chance(self, trained_resgcn, tiny_s3dis):
        _, test = s3dis_train_test_split(tiny_s3dis)
        metrics = evaluate_model(trained_resgcn, test.scenes)
        assert metrics["accuracy"] > 2.0 / 13.0
        assert 0.0 <= metrics["aiou"] <= 1.0

    def test_train_or_load_uses_cache(self, tiny_s3dis, tmp_path):
        train, _ = s3dis_train_test_split(tiny_s3dis)
        cache = os.path.join(tmp_path, "model.npz")
        config = TrainingConfig(epochs=1, seed=0)

        model1 = build_model("resgcn", num_classes=13, hidden=8, num_blocks=1, seed=0)
        train_or_load(model1, train.scenes, cache, config)
        assert os.path.exists(cache)

        model2 = build_model("resgcn", num_classes=13, hidden=8, num_blocks=1, seed=99)
        train_or_load(model2, train.scenes, cache, config)
        np.testing.assert_allclose(model2.state_dict()["classifier.weight"],
                                   model1.state_dict()["classifier.weight"])

    def test_train_or_load_retrains_on_incompatible_cache(self, tiny_s3dis, tmp_path):
        train, _ = s3dis_train_test_split(tiny_s3dis)
        cache = os.path.join(tmp_path, "model.npz")
        config = TrainingConfig(epochs=1, seed=0)
        small = build_model("resgcn", num_classes=13, hidden=8, num_blocks=1, seed=0)
        train_or_load(small, train.scenes, cache, config)
        bigger = build_model("resgcn", num_classes=13, hidden=16, num_blocks=1, seed=0)
        train_or_load(bigger, train.scenes, cache, config)   # must not raise
        assert bigger.hidden == 16

    def test_history_records_accuracy(self, tiny_s3dis):
        train, _ = s3dis_train_test_split(tiny_s3dis)
        model = build_model("resgcn", num_classes=13, hidden=8, num_blocks=1, seed=0)
        history = train_model(model, train.scenes, TrainingConfig(epochs=2, seed=0))
        assert len(history.accuracies) == 2
        assert all(0.0 <= a <= 1.0 for a in history.accuracies)
        assert history.duration_seconds > 0
