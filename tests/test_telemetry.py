"""Tests for ``repro.telemetry``: tracing, stats, profiling, summarize.

The tentpole invariants live here:

* **schema** — every event a traced run emits is one well-formed JSON
  object with the shared envelope (``type``/``ts``/``pid``);
* **bitwise neutrality** — attack trajectories are bit-for-bit identical
  with tracing off and on, for every engine in both compute policies
  (telemetry only reads values, never touches RNG or arrays);
* **serial/batched parity** — ``batch_scenes > 1`` emits exactly the same
  per-scene step events as the serial path, for every engine;
* **scheduler integration** — per-task events, ``TaskRecord.stats``,
  ``RunReport`` rollups and the result-store session counters agree.
"""

from __future__ import annotations

import io
import json
from collections import Counter

import numpy as np
import pytest

from repro.core import run_attack, run_attack_batch
from repro.datasets import generate_room_scene
from repro.models import build_model
from repro.pipeline import ResultStore, Task, TaskGraph, register_executor, run_graph
from repro.pipeline.progress import CACHED, RAN, ProgressReporter, RunReport, TaskRecord
from repro.telemetry import (
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    build_manifest,
    cache_totals,
    collect_stats,
    get_tracer,
    install_tracer,
    read_events,
    summarize_events,
    summarize_path,
    trace_to,
)
from repro.telemetry.profiler import profile_ops
from repro.telemetry.summarize import main as summarize_main

from test_engine_contract import ENGINES, POLICIES, make_config

# ---------------------------------------------------------------------- #
# Fixtures
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def telemetry_scenes():
    rng = np.random.default_rng(29)
    return [generate_room_scene(num_points=96, room_type="office", rng=rng,
                                name=f"telemetry_{i}")
            for i in range(2)]


@pytest.fixture(scope="module")
def telemetry_model():
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    model.eval()
    return model


def _trace_events(stream: io.StringIO):
    events = []
    for line in stream.getvalue().splitlines():
        events.append(json.loads(line))
    return events


# ---------------------------------------------------------------------- #
# Tracer unit behaviour
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_null_tracer_is_default_and_inert(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled
        tracer.emit("anything", x=1)
        with tracer.span("noop"):
            pass
        tracer.count("n", 3)
        assert tracer.counters() == {}

    def test_emit_envelope_and_jsonl(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        tracer.emit("custom", value=1.5, arr=np.arange(2))
        tracer.close()
        events = _trace_events(stream)
        assert len(events) == 1
        event = events[0]
        assert event["type"] == "custom"
        assert isinstance(event["ts"], float)
        assert isinstance(event["pid"], int)
        assert event["value"] == 1.5
        assert event["arr"] == [0, 1]    # numpy coerced, not str()-mangled

    def test_manifest_is_first_event(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream, manifest={"config_salt": {"seed": 0}})
        tracer.emit("later")
        tracer.close()
        events = _trace_events(stream)
        assert events[0]["type"] == "manifest"
        assert events[0]["schema"] == TRACE_SCHEMA_VERSION
        assert events[0]["config_salt"] == {"seed": 0}
        assert events[1]["type"] == "later"

    def test_span_and_counters(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        with tracer.span("work", label="x"):
            pass
        tracer.count("events", 2)
        tracer.count("events", 3)
        tracer.close()
        events = _trace_events(stream)
        span = next(e for e in events if e["type"] == "span")
        assert span["name"] == "work" and span["label"] == "x"
        assert span["dur_s"] >= 0.0
        counters = next(e for e in events if e["type"] == "counters")
        assert counters["values"] == {"events": 5}

    def test_close_is_idempotent_and_silences_emit(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        tracer.close()
        tracer.close()
        tracer.emit("after_close")
        assert _trace_events(stream) == []

    def test_path_mode_appends_and_requires_exactly_one_sink(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        for value in (1, 2):
            tracer = Tracer(path)
            tracer.emit("e", value=value)
            tracer.close()
        events = read_events(path)
        assert [e["value"] for e in events] == [1, 2]
        with pytest.raises(ValueError):
            Tracer()
        with pytest.raises(ValueError):
            Tracer(path, stream=io.StringIO())

    def test_read_events_skips_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"ok"}\nnot json\n\n{"type":"ok2"}\n')
        assert [e["type"] for e in read_events(str(path))] == ["ok", "ok2"]

    def test_install_and_trace_to_restore(self):
        before = get_tracer()
        stream = io.StringIO()
        with trace_to(stream=stream) as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is before
        previous = install_tracer(None)
        assert previous is before


class TestManifest:
    def test_build_manifest_fields(self):
        manifest = build_manifest(salt={"config": {"seed": 7}},
                                  extra={"jobs": 2})
        for key in ("argv", "python", "numpy", "platform", "host"):
            assert key in manifest
        assert manifest["config_salt"] == {"config": {"seed": 7}}
        assert manifest["jobs"] == 2
        json.dumps(manifest)    # must be JSON-serialisable as-is


# ---------------------------------------------------------------------- #
# Tentpole: tracing never changes trajectories
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestBitwiseNeutrality:
    def test_traced_run_is_bit_identical(self, telemetry_model,
                                         telemetry_scenes, engine, policy):
        config = make_config(engine, policy)
        plain = run_attack(telemetry_model, telemetry_scenes[0], config)
        stream = io.StringIO()
        with trace_to(stream=stream):
            traced = run_attack(telemetry_model, telemetry_scenes[0], config)
        np.testing.assert_array_equal(plain.adversarial_colors,
                                      traced.adversarial_colors)
        np.testing.assert_array_equal(plain.adversarial_coords,
                                      traced.adversarial_coords)
        assert plain.history == traced.history
        assert plain.l2 == traced.l2
        assert plain.converged == traced.converged
        # ... and the trace actually captured the run.
        events = _trace_events(stream)
        types = Counter(e["type"] for e in events)
        assert types["attack_run"] == 1
        assert types["attack_step"] == len(traced.history)


# ---------------------------------------------------------------------- #
# Satellite: serial == batched event parity
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestEventParity:
    def test_serial_vs_batched_events(self, telemetry_model,
                                      telemetry_scenes, engine):
        def run(batch_scenes):
            config = make_config(engine, "fast", batch_scenes=batch_scenes)
            stream = io.StringIO()
            with trace_to(stream=stream):
                run_attack_batch(telemetry_model, telemetry_scenes, config)
            return _trace_events(stream)

        serial = run(1)
        batched = run(len(telemetry_scenes))

        def step_keys(events):
            return Counter((e["scene"], e["step"]) for e in events
                           if e["type"] == "attack_step")

        def type_counts(events):
            drop = {"attack_run"}   # run granularity differs by design
            return Counter(e["type"] for e in events if e["type"] not in drop)

        assert step_keys(serial) == step_keys(batched)
        assert type_counts(serial) == type_counts(batched)
        # Per-scene loss values in the step events must agree bitwise too.
        def losses(events):
            return {(e["scene"], e["step"]): e["loss"] for e in events
                    if e["type"] == "attack_step"}
        assert losses(serial) == losses(batched)


# ---------------------------------------------------------------------- #
# attack_run events carry the per-run cache counters
# ---------------------------------------------------------------------- #
class TestAttackRunStats:
    def test_cache_stats_reported_per_run(self, telemetry_model,
                                          telemetry_scenes):
        from repro.accel import last_attack_cache_stats
        config = make_config("bounded", "fast")
        stream = io.StringIO()
        with trace_to(stream=stream):
            run_attack(telemetry_model, telemetry_scenes[0], config)
        events = _trace_events(stream)
        run_event = next(e for e in events if e["type"] == "attack_run")
        assert run_event["engine"] == "bounded"
        assert run_event["dur_s"] > 0
        cache = run_event["cache"]
        for key in ("exact_hits", "stale_hits", "misses", "tree_hits"):
            assert cache[key] >= 0
        # The event mirrors NeighborhoodCache.stats() of that run exactly.
        assert cache == last_attack_cache_stats()
        assert cache["misses"] >= 1     # first lookup is always a miss
        totals = cache_totals([run_event])
        assert totals["misses"] == cache["misses"]

    def test_counters_reset_between_runs(self, telemetry_model,
                                         telemetry_scenes):
        """Satellite 1: multi-cell runs must not accumulate stale totals."""
        config = make_config("bounded", "fast")
        stream = io.StringIO()
        with trace_to(stream=stream):
            run_attack(telemetry_model, telemetry_scenes[0], config)
            run_attack(telemetry_model, telemetry_scenes[0], config)
        runs = [e for e in _trace_events(stream) if e["type"] == "attack_run"]
        assert len(runs) == 2
        assert runs[0]["cache"] == runs[1]["cache"]


class TestStatsCollector:
    def test_collects_attack_and_ambient_deltas(self, telemetry_model,
                                                telemetry_scenes):
        config = make_config("bounded", "fast")
        with collect_stats() as collector:
            run_attack(telemetry_model, telemetry_scenes[0], config)
        stats = collector.as_dict()
        assert stats["attacks"] == 1
        assert stats["attack_steps"] >= 1
        assert stats["misses"] >= 1

    def test_ambient_diff_not_process_totals(self):
        from repro.accel.cache import _default_cache
        base = _default_cache.stats()
        with collect_stats() as outer:
            pass
        delta = outer.as_dict()
        # Nothing ran inside: the collector must report zero ambient traffic
        # even though the process-default cache has lived for many tests.
        assert delta["exact_hits"] == 0 and delta["misses"] == 0
        assert base == _default_cache.stats()


class TestCacheResetStats:
    def test_reset_zeroes_counters_not_step_clock(self):
        from repro.accel.cache import NeighborhoodCache
        cache = NeighborhoodCache(refresh_interval=3)
        cache.advance()
        cache.advance()
        step_before = cache.stats()["step"]
        cache.reset_stats()
        stats = cache.stats()
        assert stats["step"] == step_before
        for key in ("exact_hits", "stale_hits", "misses", "tree_hits"):
            assert stats[key] == 0


# ---------------------------------------------------------------------- #
# Scheduler + store integration
# ---------------------------------------------------------------------- #
@register_executor("tel:value")
def _tel_value(context, params, deps):
    return params["value"]


@register_executor("tel:sum")
def _tel_sum(context, params, deps):
    return sum(deps.values())


def _tel_graph() -> TaskGraph:
    graph = TaskGraph(result="total")
    graph.add(Task("one", "tel:value", {"value": 1}))
    graph.add(Task("two", "tel:value", {"value": 2}))
    graph.add(Task("total", "tel:sum", {}, deps=("one", "two")))
    return graph


class TestSchedulerTelemetry:
    def test_task_events_match_records(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        stream = io.StringIO()
        with trace_to(stream=stream):
            result = run_graph(_tel_graph(), {"seed": 0}, store=store)
        events = _trace_events(stream)
        tasks = [e for e in events if e["type"] == "task"]
        assert {e["task_id"] for e in tasks} == {"one", "two", "total"}
        assert all(e["status"] == RAN for e in tasks)
        total = next(e for e in tasks if e["task_id"] == "total")
        assert sorted(total["deps"]) == ["one", "two"]
        report = next(e for e in events if e["type"] == "run_report")
        assert report["jobs"] == 1
        assert report["counts"][RAN] == 3
        assert report["store"]["bytes_written"] > 0
        # Per-task spans must sum (within overhead) to the report wall time.
        busy = sum(e["elapsed"] for e in tasks)
        assert busy <= result.report.wall_time
        assert report["busy_s"] == pytest.approx(busy)

    def test_records_and_store_session_stats(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        first = run_graph(_tel_graph(), {"seed": 0}, store=store)
        assert all(r.stats is not None for r in first.report.records
                   if r.status == RAN)
        assert first.report.store_stats["misses"] >= 3
        assert first.report.store_stats["bytes_written"] > 0
        # Second run from the same store: all cached, session stats fresh.
        store2 = ResultStore(str(tmp_path / "store"))
        second = run_graph(_tel_graph(), {"seed": 0}, store=store2)
        assert second.report.count(CACHED) == 3
        assert second.report.store_stats["hits"] == 3
        assert second.report.store_stats["bytes_read"] > 0
        assert second.report.store_stats["bytes_written"] == 0
        assert "3 cached" in second.report.summary()
        assert "store 3 hits" in second.report.summary()

    def test_untraced_run_unchanged(self, tmp_path):
        result = run_graph(_tel_graph(), {"seed": 0})
        assert result.result == 3
        assert result.report.succeeded


class TestRunReportRollup:
    def test_cache_stats_aggregates_records(self):
        report = RunReport()
        report.add(TaskRecord("a", "k", RAN,
                              stats={"exact_hits": 3, "misses": 1,
                                     "attacks": 1, "attack_steps": 5}))
        report.add(TaskRecord("b", "k", RAN,
                              stats={"exact_hits": 2, "misses": 1,
                                     "stale_hits": 4}))
        report.add(TaskRecord("c", "k", CACHED))    # no stats: skipped
        totals = report.cache_stats()
        assert totals["exact_hits"] == 5
        assert totals["stale_hits"] == 4
        assert totals["misses"] == 2
        assert totals["attacks"] == 1 and totals["attack_steps"] == 5
        assert "nbr-cache 9/11 hits" in report.summary()


# ---------------------------------------------------------------------- #
# Satellite 2: progress reporter flushing
# ---------------------------------------------------------------------- #
class TestProgressReporter:
    def test_non_tty_stream_gets_flushed_lines(self):
        flushes = []

        class Recorder(io.StringIO):
            def flush(self):
                flushes.append(True)
                super().flush()

        stream = Recorder()
        reporter = ProgressReporter(total=2, stream=stream)
        assert reporter.is_tty is False
        reporter.task_done(TaskRecord("cell/a", "attack", RAN, elapsed=1.0))
        reporter.task_done(TaskRecord("cell/b", "attack", CACHED))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("(1.0s)")
        assert "cell/b" in lines[1]
        assert len(flushes) >= 2

    def test_broken_stream_never_raises(self):
        class Broken:
            def write(self, text):
                raise OSError("pipe closed")
            def isatty(self):
                raise ValueError("closed")

        reporter = ProgressReporter(total=1, stream=Broken())
        assert reporter.is_tty is False
        reporter.task_done(TaskRecord("cell/a", "attack", RAN))   # no raise
        assert reporter.done == 1

    def test_disabled_reporter_writes_nothing(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, stream=stream, enabled=False)
        reporter.task_done(TaskRecord("cell/a", "attack", RAN))
        assert stream.getvalue() == ""


# ---------------------------------------------------------------------- #
# Result-store session counters
# ---------------------------------------------------------------------- #
class TestStoreSessionStats:
    def test_put_get_contains_counting(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.session_stats() == {"hits": 0, "misses": 0,
                                         "quarantined": 0,
                                         "bytes_read": 0, "bytes_written": 0}
        key = "ab" + "0" * 62
        assert not store.contains(key)
        store.put(key, {"x": 1})
        assert store.contains(key)
        assert store.get(key) == {"x": 1}
        with pytest.raises(KeyError):
            store.get("cd" + "0" * 62)
        stats = store.session_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2     # failed contains + failed get
        assert stats["bytes_written"] > 0
        assert stats["bytes_read"] > 0


# ---------------------------------------------------------------------- #
# Profiler
# ---------------------------------------------------------------------- #
class TestProfiler:
    def test_profile_ops_counts_forward_and_backward(self):
        from repro.nn import Tensor
        with profile_ops() as profile:
            x = Tensor(np.ones((4, 4)), requires_grad=True)
            y = ((x * 2.0) + 1.0).sum()
            y.backward()
        assert profile.forward["__mul__"][0] == 1
        assert profile.forward["__add__"][0] >= 1
        assert profile.forward["sum"][0] == 1
        assert profile.backward["sum"][0] == 1
        rows = profile.top(5)
        assert rows and all(len(row) == 4 for row in rows)
        assert "op" in profile.table(3)

    def test_methods_restored_after_context(self):
        from repro.nn.tensor import Tensor
        before = Tensor.__add__
        with profile_ops():
            assert Tensor.__add__ is not before
        assert Tensor.__add__ is before

    def test_emits_event_into_tracer(self):
        from repro.nn import Tensor
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        with profile_ops(tracer=tracer, label="unit"):
            (Tensor(np.ones(3)) * 2.0).sum()
        tracer.close()
        event = next(e for e in _trace_events(stream)
                     if e["type"] == "op_profile")
        assert event["label"] == "unit"
        ops = {row["op"] for row in event["ops"]}
        assert {"__mul__", "sum"} <= ops

    def test_profiled_attack_is_bit_identical(self, telemetry_model,
                                              telemetry_scenes, monkeypatch):
        config = make_config("bounded", "fast")
        plain = run_attack(telemetry_model, telemetry_scenes[0], config)
        monkeypatch.setenv("REPRO_PROFILE_OPS", "1")
        stream = io.StringIO()
        with trace_to(stream=stream):
            profiled = run_attack(telemetry_model, telemetry_scenes[0], config)
        np.testing.assert_array_equal(plain.adversarial_colors,
                                      profiled.adversarial_colors)
        assert plain.history == profiled.history
        events = _trace_events(stream)
        assert any(e["type"] == "op_profile" for e in events)


# ---------------------------------------------------------------------- #
# Summarize tool
# ---------------------------------------------------------------------- #
class TestSummarize:
    def _traced_attack(self, model, scenes, path):
        config = make_config("bounded", "fast")
        with trace_to(str(path), manifest=build_manifest(salt={"seed": 0})):
            run_attack(model, scenes[0], config)

    def test_sections_render(self, telemetry_model, telemetry_scenes,
                             tmp_path):
        path = tmp_path / "trace.jsonl"
        self._traced_attack(telemetry_model, telemetry_scenes, path)
        text = summarize_path(str(path))
        assert "== manifest ==" in text
        assert "== attack engines ==" in text
        assert "bounded" in text
        assert "== neighbourhood cache ==" in text
        assert "hit rate" in text
        assert "== step curves" in text

    def test_cache_section_matches_run_events(self, telemetry_model,
                                              telemetry_scenes, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._traced_attack(telemetry_model, telemetry_scenes, path)
        events = read_events(str(path))
        runs = [e for e in events if e["type"] == "attack_run"]
        totals = cache_totals(runs)
        text = summarize_path(str(path))
        assert f"misses {totals['misses']}" in text
        assert f"exact_hits {totals['exact_hits']}" in text

    def test_scheduler_section_and_critical_path(self, tmp_path):
        path = tmp_path / "sched.jsonl"
        with trace_to(str(path)):
            run_graph(_tel_graph(), {"seed": 0})
        text = summarize_path(str(path))
        assert "== scheduler ==" in text
        assert "worker utilization" in text
        assert "critical path" in text
        assert "total" in text      # result task appears in the path

    def test_malformed_lines_reported_not_fatal(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"task","task_id":"a","status":"ran",'
                        '"elapsed":1.0}\ngarbage\n[1,2]\n')
        text = summarize_path(str(path))
        assert "2 malformed lines skipped" in text

    def test_empty_trace(self):
        text = summarize_events([])
        assert "(no attack events)" in text
        assert "0 events" in text

    def test_cli_main(self, telemetry_model, telemetry_scenes, tmp_path,
                      capsys):
        path = tmp_path / "trace.jsonl"
        self._traced_attack(telemetry_model, telemetry_scenes, path)
        assert summarize_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== attack engines ==" in out


class TestEngineName:
    def test_engine_name_property(self):
        assert make_config("bounded", "fast").engine_name == "bounded"
        assert make_config("unbounded", "fast").engine_name == "unbounded"
        assert make_config("nes", "fast").engine_name == "nes"
        assert make_config("spsa", "fast").engine_name == "spsa"
        assert make_config("boundary", "fast").engine_name == "boundary"
        noise = make_config("bounded", "fast", method="noise")
        assert noise.engine_name == "noise"
