"""Tests for the pluggable executor backends and the shared remote store.

Covers the ISSUE-9 checklist: the backend contract (the same graph run
through serial / local-pool / remote-fleet backends produces identical
outputs and **bitwise-identical** store payload bytes), depot-style
round-robin with host failover, work-stealing of straggler shards,
config-salt fencing of the fleet, the HTTP remote store (round-trip,
integrity, GC/eviction, concurrent writers), the LRU garbage collector,
the new ``verify`` / ``gc`` CLI subcommands, and regression tests for the
three closed bugs (corrupt-sidecar quarantine, jittered backoff cap,
disjoint verify buckets).

Executors are registered at import time so fork-started worker pools —
the local backend's and every daemon's — inherit them.
"""

import json
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.pipeline import (RemoteStore, ResultStore, RetryPolicy, Task,
                            TaskGraph, open_store, register_executor,
                            run_graph)
from repro.pipeline import cli as pipeline_cli
from repro.pipeline.executors import (BACKEND_NAMES, LocalPoolBackend,
                                      RemoteBackend, SerialBackend,
                                      compute_salt_hash, decode_deps,
                                      encode_deps, make_backend)
from repro.pipeline.progress import FAILED, RAN
from repro.pipeline.resilience import (PERMANENT, TRANSIENT, classify_error,
                                       error_type_names)
from repro.ioutils import atomic_write_bytes
from repro.pipeline.store import StoreBackend, canonical_payload_bytes
from repro.pipeline.store_http import (StoreServerThread,
                                       StoreUnavailableError)
from repro.serve import AttackServer, Client, ServerThread

# ---------------------------------------------------------------------- #
# Stub executors (inherited by fork workers and serve daemons)
# ---------------------------------------------------------------------- #


@register_executor("exec:value")
def _exec_value(context, params, deps):
    return {"value": params["value"]}


@register_executor("exec:sum")
def _exec_sum(context, params, deps):
    total = sum(d["value"] for d in deps.values()) + params.get("add", 0)
    return {"value": total}


@register_executor("exec:sleepy")
def _exec_sleepy(context, params, deps):
    time.sleep(params.get("sleep", 0.0))
    return {"value": params["value"]}


def _graph() -> TaskGraph:
    graph = TaskGraph(result="d")
    graph.add(Task("a", "exec:value", {"value": 1}))
    graph.add(Task("b", "exec:sum", {"add": 10}, deps=("a",)))
    graph.add(Task("c", "exec:sum", {"add": 100}, deps=("a",)))
    graph.add(Task("d", "exec:sum", {}, deps=("b", "c")))
    return graph


def _wide_graph(n=6, sleep=0.0) -> TaskGraph:
    graph = TaskGraph(result="sum")
    for i in range(n):
        graph.add(Task(f"cell{i}", "exec:sleepy",
                       {"value": i, "sleep": sleep}))
    graph.add(Task("sum", "exec:sum", {},
                   deps=tuple(f"cell{i}" for i in range(n))))
    return graph


def _payload_bytes(store: ResultStore):
    """Raw on-disk payload bytes per key — the bitwise-identity witness."""
    blobs = {}
    for key in store.keys():
        with open(store.payload_path(key), "rb") as handle:
            blobs[key] = handle.read()
    return blobs


def _policy(**overrides):
    defaults = dict(max_attempts=3, backoff_base=0.01, backoff_max=0.05)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class _Daemon:
    """One repro.serve worker daemon on a background thread."""

    def __init__(self, tmp_path, name, config=None, jobs=1, **kwargs):
        self.server = AttackServer(
            config if config is not None else {}, jobs=jobs,
            store=str(tmp_path / f"daemon-store-{name}"), **kwargs)
        self.thread = ServerThread(self.server)
        host, port = self.thread.start()
        self.address = f"{host}:{port}"

    def stop(self, drain=True):
        self.thread.stop(drain=drain)


@pytest.fixture()
def daemons(tmp_path):
    started = []

    def start(name, **kwargs):
        daemon = _Daemon(tmp_path, name, **kwargs)
        started.append(daemon)
        return daemon

    yield start
    for daemon in started:
        daemon.stop()


# ---------------------------------------------------------------------- #
# Backend contract: one graph, three substrates, identical results
# ---------------------------------------------------------------------- #
class TestBackendContract:
    @pytest.mark.parametrize("backend", ("serial", "local"))
    def test_local_backends_run_the_graph(self, tmp_path, backend):
        store = ResultStore(str(tmp_path / f"store-{backend}"))
        result = run_graph(_graph(), {}, jobs=2, store=store,
                           backend=backend)
        assert result.succeeded
        assert result.result == {"value": 112}
        assert result.report.backend == backend
        ran = [r for r in result.report.records if r.status == RAN]
        assert ran and all(r.worker == backend for r in ran)

    def test_remote_backend_runs_the_graph(self, tmp_path, daemons):
        fleet = [daemons("a").address, daemons("b").address]
        store = ResultStore(str(tmp_path / "store-remote"))
        result = run_graph(_graph(), {}, jobs=2, store=store,
                           backend="remote", workers=fleet)
        assert result.succeeded
        assert result.result == {"value": 112}
        assert result.report.backend == "remote"
        # Every executed task is attributed to a fleet member, and the
        # host breakdown aggregates them for the run report.
        ran = [r for r in result.report.records if r.status == RAN]
        assert ran and all(r.worker in fleet for r in ran)
        assert sum(result.report.host_breakdown().values()) == len(ran)
        assert "hosts " in result.report.summary()
        assert result.report.backend_stats["dispatches"] >= len(ran)

    def test_all_backends_produce_bitwise_identical_payloads(
            self, tmp_path, daemons):
        blobs = {}
        for backend in ("serial", "local", "remote"):
            store = ResultStore(str(tmp_path / f"bits-{backend}"))
            workers = None
            if backend == "remote":
                workers = [daemons("bits-a").address,
                           daemons("bits-b").address]
            result = run_graph(_graph(), {}, jobs=2, store=store,
                               backend=backend, workers=workers)
            assert result.succeeded
            blobs[backend] = _payload_bytes(store)
        assert blobs["serial"]                       # non-empty witness
        assert blobs["serial"] == blobs["local"] == blobs["remote"]

    def test_serial_backend_is_a_first_class_peer(self, tmp_path):
        # Explicit --backend serial with jobs > 1 is honoured (dispatch
        # bound is meaningless in-process, but the run must work).
        result = run_graph(_graph(), {}, jobs=4, backend="serial")
        assert result.succeeded and result.report.backend == "serial"

    def test_remote_hits_skip_recompute(self, tmp_path, daemons):
        daemon = daemons("warm")
        store = ResultStore(str(tmp_path / "store"))
        first = run_graph(_graph(), {}, store=store, backend="remote",
                          workers=[daemon.address])
        assert first.succeeded
        # Same fleet, fresh scheduler-side store: the daemon's own store
        # serves every cell without recomputing.
        second = run_graph(_graph(), {},
                           store=ResultStore(str(tmp_path / "store2")),
                           backend="remote", workers=[daemon.address])
        assert second.succeeded
        assert second.report.backend_stats["remote_hits"] \
            == len([r for r in second.report.records if r.status == RAN])


class TestMakeBackend:
    def test_auto_resolution(self):
        assert make_backend(None, config={}, jobs=1).name == "serial"
        assert make_backend("auto", config={}, jobs=4).name == "local"
        assert make_backend("serial", config={}, jobs=4).name == "serial"

    def test_instance_passthrough(self):
        backend = SerialBackend({})
        assert make_backend(backend, config={}) is backend

    def test_remote_requires_workers(self):
        with pytest.raises(ValueError):
            make_backend("remote", config={}, jobs=2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_backend("fleet", config={})
        assert set(BACKEND_NAMES) == {"auto", "serial", "local", "remote"}


# ---------------------------------------------------------------------- #
# Remote fleet behaviour: failover, stealing, salt fencing
# ---------------------------------------------------------------------- #
class TestRemoteFleet:
    def test_failover_around_a_dead_host(self, tmp_path, daemons):
        live = daemons("live")
        # Reserve a port, then close it: connections are refused fast.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        store = ResultStore(str(tmp_path / "store"))
        result = run_graph(_graph(), {}, jobs=2, store=store,
                           backend="remote", workers=[dead, live.address],
                           retry=_policy())
        assert result.succeeded
        assert set(result.report.host_breakdown()) == {live.address}
        assert result.report.backend_stats["host_failures"] >= 1

    def test_killing_a_worker_mid_run_still_completes(self, tmp_path,
                                                      daemons):
        doomed, survivor = daemons("doomed", jobs=2), daemons("ok", jobs=2)
        # Tight steal/cooldown windows keep the rescue path fast: any
        # dispatch orphaned by the dying daemon is re-run on the survivor
        # by the straggler watchdog rather than waiting out a long
        # request timeout.
        backend = RemoteBackend([doomed.address, survivor.address], {},
                                steal_after=1.0, request_timeout=30.0,
                                down_cooldown=0.2)
        killer = threading.Timer(0.25, lambda: doomed.stop(drain=False))
        killer.start()
        try:
            result = run_graph(
                _wide_graph(n=6, sleep=0.5), {}, jobs=4,
                store=ResultStore(str(tmp_path / "store")),
                backend=backend,
                retry=_policy(max_attempts=4))
        finally:
            killer.cancel()
        assert result.succeeded
        assert result.result == {"value": sum(range(6))}

    def test_unreachable_fleet_fails_transiently(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        backend = RemoteBackend([dead], {}, steal_after=None,
                                down_cooldown=0.01)
        backend.start()
        try:
            future = backend.submit(Task("t", "exec:value", {"value": 1}),
                                    1, {})
            _, ok, error, _, _, error_types = future.result(timeout=10)
        finally:
            backend.shutdown(wait=False)
        assert not ok
        # An unreachable fleet is a *transient* condition: the scheduler
        # backs off and redrives, by which time a host may be back.
        assert classify_error(error_types) == TRANSIENT
        assert "no worker daemon reachable" in error

    def test_straggler_is_stolen_by_a_second_host(self, tmp_path, daemons):
        live = daemons("thief")
        # A listener that accepts but never answers: the primary dispatch
        # hangs until its socket timeout, which the steal must beat.
        stall = socket.socket()
        stall.bind(("127.0.0.1", 0))
        stall.listen(5)
        stall_addr = f"127.0.0.1:{stall.getsockname()[1]}"
        backend = RemoteBackend([stall_addr, live.address], {},
                                steal_after=0.3, request_timeout=3.0)
        backend.start()
        try:
            # Pin the ring so the primary dispatch lands on the stall.
            backend._ring = len(backend.hosts) - 1
            future = backend.submit(Task("t", "exec:value", {"value": 7}),
                                    1, {})
            _, ok, payload, _, _, _ = future.result(timeout=10)
            assert ok and payload == {"value": 7}
            assert backend.worker_of(future) == live.address
            assert backend.counters()["steals"] >= 1
        finally:
            backend.shutdown(wait=False)
            stall.close()

    def test_salt_mismatch_is_refused_permanently(self, tmp_path, daemons):
        daemon = daemons("salted", config={"knob": 1})
        backend = RemoteBackend([daemon.address], {"knob": 2},
                                steal_after=None)
        backend.start()
        try:
            future = backend.submit(Task("t", "exec:value", {"value": 1}),
                                    1, {})
            _, ok, error, _, _, error_types = future.result(timeout=10)
        finally:
            backend.shutdown(wait=False)
        assert not ok
        assert "salt mismatch" in error
        # Permanent: retrying against the same misconfigured fleet can
        # never succeed, so the scheduler must fail fast.
        assert classify_error(error_types) == PERMANENT

    def test_salt_mismatch_fails_fast_through_the_scheduler(
            self, tmp_path, daemons):
        daemon = daemons("salted2", config={"knob": 1})
        result = run_graph(_graph(), {"knob": 2}, backend="remote",
                           workers=[daemon.address], retry=_policy())
        assert not result.succeeded
        failed = [r for r in result.report.records if r.status == FAILED]
        assert failed and all(r.attempts == 1 for r in failed)

    def test_task_op_round_trip_and_store_hit(self, tmp_path, daemons):
        daemon = daemons("op")
        host, port = daemon.address.rsplit(":", 1)
        client = Client((host, int(port)))
        salt = compute_salt_hash({})
        key = "ab" * 32
        first = client.task("t", "exec:sum", {"add": 5},
                            encode_deps({"a": {"value": 2}}),
                            key=key, salt=salt)
        assert first["ok"] and not first["hit"]
        assert decode_deps(first["blob"]) == {"value": 7}
        second = client.task("t", "exec:sum", {"add": 5},
                             encode_deps({"a": {"value": 2}}),
                             key=key, salt=salt)
        assert second["hit"]
        assert decode_deps(second["blob"]) == {"value": 7}
        stats = client.stats()
        assert stats["jobs"]["tasks"] == 2
        assert stats["jobs"]["task_hits"] == 1


# ---------------------------------------------------------------------- #
# HTTP remote store
# ---------------------------------------------------------------------- #
class TestRemoteStore:
    @pytest.fixture()
    def served(self, tmp_path):
        store = ResultStore(str(tmp_path / "served"))
        with StoreServerThread(store) as url:
            yield store, RemoteStore(url)

    def test_round_trip(self, served):
        local, remote = served
        key = "11" * 32
        remote.put(key, {"x": [1, 2, 3]}, metadata={"task_id": "t"})
        assert remote.contains(key) and key in remote
        assert remote.get(key) == {"x": [1, 2, 3]}
        assert remote.metadata(key)["task_id"] == "t"
        assert remote.metadata(key)["checksum"].startswith("sha256:")
        assert list(remote.keys()) == [key]
        # Bytes on disk are the canonical form — whoever wrote them.
        assert _payload_bytes(local)[key] \
            == canonical_payload_bytes({"x": [1, 2, 3]})
        assert remote.discard(key)
        assert not remote.contains(key)

    def test_pipeline_runs_against_remote_store(self, served):
        _, remote = served
        first = run_graph(_graph(), {}, store=remote)
        assert first.succeeded
        second = run_graph(_graph(), {}, store=remote)
        assert second.succeeded
        assert all(r.status == "cached" for r in second.report.records)

    def test_verify_and_corruption_over_http(self, served):
        local, remote = served
        key = "22" * 32
        remote.put(key, "payload")
        remote.corrupt_entry(key)           # chaos hook
        audit = remote.verify()
        assert audit["quarantined"] == [key]
        assert not remote.contains(key)

    def test_get_quarantines_corrupt_entry(self, served):
        local, remote = served
        key = "33" * 32
        remote.put(key, "payload")
        remote.corrupt_entry(key)
        with pytest.raises(KeyError):
            remote.get(key)
        assert local.session_stats()["quarantined"] == 1

    def test_gc_over_http(self, served):
        _, remote = served
        for i in range(4):
            remote.put(format(i, "02x") * 32, "x" * 100)
        swept = remote.gc(max_entries=1)
        assert len(swept["evicted"]) == 3 and swept["kept"] == 1
        assert len(list(remote.keys())) == 1
        with pytest.raises(ValueError):
            remote.gc(max_bytes=-1)

    def test_concurrent_writers(self, served):
        _, remote = served
        keys = [format(i, "02x") * 32 for i in range(8)]

        def write(key):
            for _ in range(3):              # same key repeatedly: last wins
                remote.put(key, {"key": key})
            return remote.get(key)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(write, keys))
        assert results == [{"key": key} for key in keys]
        assert sorted(remote.keys()) == sorted(keys)

    def test_unreachable_store_is_transient(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        url = f"http://127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        remote = RemoteStore(url, timeout=0.5)
        with pytest.raises(StoreUnavailableError) as excinfo:
            remote.put("44" * 32, "x")
        assert classify_error(error_type_names(excinfo.value)) == TRANSIENT

    def test_open_store_dispatch(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "s")), ResultStore)
        assert isinstance(open_store("http://127.0.0.1:1"), RemoteStore)
        store = ResultStore(str(tmp_path / "s2"))
        assert open_store(store) is store
        assert isinstance(store, StoreBackend)


# ---------------------------------------------------------------------- #
# GC / eviction on the local store
# ---------------------------------------------------------------------- #
class TestStoreGC:
    def _filled(self, tmp_path, n=4):
        store = ResultStore(str(tmp_path / "store"))
        keys = [format(i, "02x") * 32 for i in range(n)]
        base = time.time() - 1000
        for i, key in enumerate(keys):
            store.put(key, "x" * 100)
            stamp = base + i            # older index == older atime
            os.utime(store.payload_path(key), (stamp, stamp))
        return store, keys

    def test_lru_eviction_by_entry_budget(self, tmp_path):
        store, keys = self._filled(tmp_path)
        swept = store.gc(max_entries=2)
        assert swept["evicted"] == keys[:2]               # oldest went first
        assert sorted(store.keys()) == sorted(keys[2:])

    def test_byte_budget(self, tmp_path):
        store, keys = self._filled(tmp_path)
        total = sum(len(b) for b in _payload_bytes(store).values())
        per_entry = total // 4
        swept = store.gc(max_bytes=per_entry * 2)
        assert swept["bytes_after"] <= per_entry * 2
        assert swept["bytes_before"] == total
        assert set(store.keys()) == set(keys[len(swept["evicted"]):])

    def test_recent_read_protects_an_entry(self, tmp_path):
        store, keys = self._filled(tmp_path)
        store.get(keys[0])                  # touches atime: now the newest
        swept = store.gc(max_entries=1)
        assert len(swept["evicted"]) == 3
        assert list(store.keys()) == [keys[0]]

    def test_negative_budget_rejected(self, tmp_path):
        store, _ = self._filled(tmp_path, n=1)
        with pytest.raises(ValueError):
            store.gc(max_bytes=-5)
        with pytest.raises(ValueError):
            store.gc(max_entries=-1)

    def test_noop_budgets(self, tmp_path):
        store, keys = self._filled(tmp_path)
        swept = store.gc(max_entries=10)
        assert swept["evicted"] == [] and swept["kept"] == 4
        assert sorted(store.keys()) == sorted(keys)

    def test_lru_survives_frozen_atime(self, tmp_path, monkeypatch):
        """Eviction order must not depend on filesystem atime updates.

        On a ``noatime`` mount (and, within a day, under ``relatime``)
        reads never move ``st_atime``, and even the store's explicit
        ``os.utime`` is the kind of side channel a read-only bind mount
        swallows.  The sidecar ``last_access`` stamp is the authoritative
        recency signal: with atime updates disabled entirely, a freshly
        read entry must still be the last to go.
        """
        store, keys = self._filled(tmp_path)
        # Simulate noatime: no code path may move any file timestamp.
        monkeypatch.setattr("repro.pipeline.store.os.utime",
                            lambda *a, **k: None)
        # Pin every sidecar's created_at into the distant past in key
        # order, so the pre-fix ordering (creation-time proxy) is
        # unambiguous and would evict keys[0] first.
        base = time.time() - 10_000
        for i, key in enumerate(keys):
            meta = store.metadata(key)
            meta["created_at"] = base + i
            atomic_write_bytes(store._meta_path(key),
                               json.dumps(meta).encode("utf-8"))
        store.get(keys[0])                  # read the oldest-written entry
        assert store.metadata(keys[0])["last_access"] > base + len(keys)
        swept = store.gc(max_entries=1)
        assert keys[0] not in swept["evicted"]
        assert list(store.keys()) == [keys[0]]


# ---------------------------------------------------------------------- #
# Bugfix regressions
# ---------------------------------------------------------------------- #
class TestBugfixRegressions:
    def test_corrupt_sidecar_is_quarantined_not_served(self, tmp_path):
        """A torn metadata sidecar must never serve the payload unverified."""
        store = ResultStore(str(tmp_path))
        key = "55" * 32
        store.put(key, "payload")
        with open(store._meta_path(key), "w", encoding="utf-8") as handle:
            handle.write('{"checksum": "sha256:')     # torn mid-write
        with pytest.raises(KeyError):
            store.get(key)
        assert store.session_stats()["quarantined"] == 1
        assert not store.contains(key, count=False)
        corrupt_dir = os.path.join(store.root, "corrupt")
        assert os.listdir(corrupt_dir)              # kept for inspection

    def test_verify_quarantines_corrupt_sidecar(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "66" * 32
        store.put(key, "payload")
        with open(store._meta_path(key), "wb") as handle:
            handle.write(b"\xff\xfenot json")
        audit = store.verify()
        assert audit["quarantined"] == [key]

    def test_absent_sidecar_still_serves_pre_checksum_entry(self, tmp_path):
        """Absent (pre-checksum era) and corrupt sidecars are distinct."""
        store = ResultStore(str(tmp_path))
        key = "77" * 32
        store.put(key, "legacy")
        os.unlink(store._meta_path(key))
        assert store.get(key) == "legacy"
        assert store.session_stats()["quarantined"] == 0

    def test_backoff_cap_holds_with_jitter(self):
        """The cap must bound the *jittered* sleep, not the raw one."""
        policy = RetryPolicy(backoff_base=10.0, backoff_factor=3.0,
                             backoff_max=10.0, jitter=0.25)
        for attempt in range(1, 6):
            for task_id in ("a", "b", "table3/pct/unbounded", "x/y/z"):
                assert policy.delay(task_id, attempt) <= 10.0

    def test_backoff_jitter_still_desynchronises_below_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_max=100.0,
                             jitter=0.25)
        delays = {policy.delay(f"task{i}", 1) for i in range(8)}
        assert len(delays) > 1
        assert all(0.75 <= d <= 1.25 for d in delays)

    def test_verify_buckets_are_disjoint_and_sum(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("88" * 32, "checksummed")
        store.put("99" * 32, "legacy")
        os.unlink(store._meta_path("99" * 32))
        store.put("aa" * 32, "doomed")
        store.corrupt_entry("aa" * 32)
        audit = store.verify()
        assert audit["checked"] == 3
        assert audit["ok"] == 1
        assert audit["unchecksummed"] == 1
        assert audit["quarantined"] == ["aa" * 32]
        assert audit["ok"] + audit["unchecksummed"] \
            + len(audit["quarantined"]) == audit["checked"]


# ---------------------------------------------------------------------- #
# CLI subcommands
# ---------------------------------------------------------------------- #
class TestStoreCLI:
    def test_verify_subcommand(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path / "s"))
        store.put("bb" * 32, "fine")
        assert pipeline_cli.main(["verify", "--store",
                                  str(tmp_path / "s")]) == 0
        store.corrupt_entry("bb" * 32)
        assert pipeline_cli.main(["verify", "--store",
                                  str(tmp_path / "s")]) == 1
        out = capsys.readouterr().out
        assert "quarantined " + "bb" * 32 in out

    def test_verify_subcommand_json(self, tmp_path, capsys):
        ResultStore(str(tmp_path / "s")).put("cc" * 32, "fine")
        assert pipeline_cli.main(["verify", "--store", str(tmp_path / "s"),
                                  "--json"]) == 0
        audit = json.loads(capsys.readouterr().out)
        assert audit == {"checked": 1, "ok": 1, "quarantined": [],
                         "unchecksummed": 0}

    def test_gc_subcommand(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path / "s"))
        for i in range(3):
            store.put(format(i, "02x") * 32, "x" * 50)
        assert pipeline_cli.main(["gc", "--store", str(tmp_path / "s"),
                                  "--max-entries", "1"]) == 0
        assert "evicted 2 of 3" in capsys.readouterr().out
        assert len(store) == 1

    def test_gc_subcommand_requires_a_budget(self, tmp_path):
        with pytest.raises(SystemExit):
            pipeline_cli.main(["gc", "--store", str(tmp_path / "s")])

    def test_byte_size_parsing(self):
        assert pipeline_cli.byte_size("500") == 500
        assert pipeline_cli.byte_size("2K") == 2048
        assert pipeline_cli.byte_size("1G") == 1 << 30
        assert pipeline_cli.byte_size("1.5M") == int(1.5 * (1 << 20))
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            pipeline_cli.byte_size("lots")

    def test_gc_and_verify_work_against_a_store_url(self, tmp_path, capsys):
        store = ResultStore(str(tmp_path / "s"))
        for i in range(2):
            store.put(format(i, "02x") * 32, "x")
        with StoreServerThread(store) as url:
            assert pipeline_cli.main(["verify", "--store-url", url]) == 0
            assert pipeline_cli.main(["gc", "--store-url", url,
                                      "--max-entries", "1"]) == 0
        assert len(store) == 1

    def test_remote_backend_requires_workers_flag(self, capsys):
        assert pipeline_cli.main(["--backend", "remote",
                                  "--experiment", "table3"]) == 2
        assert "--workers" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# Local pool backend plumbing
# ---------------------------------------------------------------------- #
class TestLocalPoolBackend:
    def test_direct_submit(self):
        backend = LocalPoolBackend({}, jobs=2)
        backend.start()
        try:
            future = backend.submit(Task("t", "exec:value", {"value": 9}),
                                    1, {})
            task_id, ok, payload, _, _, _ = future.result(timeout=60)
        finally:
            backend.shutdown(wait=True)
        assert task_id == "t" and ok and payload == {"value": 9}

    def test_recover_replaces_the_pool(self):
        backend = LocalPoolBackend({}, jobs=1)
        backend.start()
        try:
            backend.recover("test")
            future = backend.submit(Task("t", "exec:value", {"value": 3}),
                                    1, {})
            assert future.result(timeout=60)[2] == {"value": 3}
        finally:
            backend.shutdown(wait=True)

    def test_deps_survive_the_wire_encoding(self):
        deps = {"a": {"value": 1}, "b": [1, 2, {"x": (3, 4)}]}
        assert decode_deps(encode_deps(deps)) == deps
        assert decode_deps(None) == {}
        assert decode_deps("") == {}
