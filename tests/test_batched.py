"""Batched multi-scene attack execution: golden equivalence with serial runs.

The contract under test is strict: with ``batch_scenes > 1`` every scene's
:class:`AttackResult` must be **bit-for-bit identical** to the result of a
``batch_scenes = 1`` run — same adversarial arrays, same per-step history,
same iteration counts — in both compute policies.  The batched engines were
built around that invariant (per-scene RNG streams, per-scene early
stopping, accumulation-tree-preserving graph construction), so these tests
compare with ``np.array_equal``, not tolerances.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accel.threads import pin_blas_env, pin_compute_threads
from repro.core import AttackConfig, run_attack_batch, run_attack_group
from repro.core.distance import l2_distance
from repro.core.objectives import performance_degradation_loss
from repro.core.smoothness import smoothness_penalty
from repro.datasets import generate_room_scene
from repro.datasets.s3dis import CLASS_INDEX
from repro.defenses import SimpleRandomSampling, StatisticalOutlierRemoval
from repro.models import build_model
from repro.nn import Tensor


@pytest.fixture(scope="module")
def scene_pool():
    rng = np.random.default_rng(7)
    return [generate_room_scene(num_points=128, room_type="office", rng=rng,
                                name=f"batched_{i}")
            for i in range(4)]


@pytest.fixture(scope="module")
def victim():
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    model.eval()
    return model


def assert_results_identical(serial, batched):
    assert len(serial) == len(batched)
    for left, right in zip(serial, batched):
        assert left.scene_name == right.scene_name
        np.testing.assert_array_equal(left.adversarial_colors,
                                      right.adversarial_colors)
        np.testing.assert_array_equal(left.adversarial_coords,
                                      right.adversarial_coords)
        np.testing.assert_array_equal(left.adversarial_prediction,
                                      right.adversarial_prediction)
        assert left.history == right.history
        assert left.iterations == right.iterations
        assert left.converged == right.converged
        assert left.l2 == right.l2
        assert left.l0 == right.l0


class TestBatchedEquivalence:
    @pytest.mark.parametrize("method,field", [
        ("unbounded", "color"),
        ("unbounded", "coordinate"),
        ("unbounded", "both"),
        ("bounded", "color"),
        ("bounded", "coordinate"),
    ])
    def test_fast_policy_bitwise(self, victim, scene_pool, method, field):
        config = AttackConfig.fast(method=method, field=field,
                                   unbounded_steps=8, bounded_steps=6,
                                   smoothness_alpha=4, seed=0,
                                   target_accuracy=0.0)
        serial = run_attack_batch(victim, scene_pool, config)
        batched = run_attack_batch(
            victim, scene_pool, dataclasses.replace(config, batch_scenes=4))
        assert_results_identical(serial, batched)

    def test_exact_policy_bitwise(self, victim, scene_pool):
        config = AttackConfig.fast(method="unbounded", field="both",
                                   unbounded_steps=6, smoothness_alpha=4,
                                   seed=0, target_accuracy=0.0,
                                   compute_dtype="float64", neighbor_refresh=1,
                                   smoothness_neighbors="current")
        serial = run_attack_batch(victim, scene_pool, config)
        batched = run_attack_batch(
            victim, scene_pool, dataclasses.replace(config, batch_scenes=4))
        assert_results_identical(serial, batched)

    def test_other_architectures(self, scene_pool):
        for name, kwargs in (("randlanet", {}), ("resgcn", {"num_blocks": 2}),
                             ("pct", {})):
            model = build_model(name, num_classes=13, hidden=16, seed=0,
                                **kwargs)
            model.eval()
            config = AttackConfig.fast(method="unbounded", field="color",
                                       unbounded_steps=5, smoothness_alpha=4,
                                       seed=0, target_accuracy=0.0)
            serial = run_attack_batch(model, scene_pool[:3], config)
            batched = run_attack_batch(
                model, scene_pool[:3],
                dataclasses.replace(config, batch_scenes=3))
            assert_results_identical(serial, batched)

    def test_early_stopping_stays_per_scene(self, trained_pointnet2, scene_pool):
        """Scenes converging at different steps must match their serial runs.

        The 0.3 accuracy threshold is chosen so this pool genuinely
        exercises the frozen-scene path: some scenes converge early (at
        different steps) while others run the full budget — without that
        heterogeneity the per-scene freeze/merge bookkeeping would go
        untested.
        """
        config = AttackConfig.fast(method="unbounded", field="color",
                                   unbounded_steps=15, smoothness_alpha=4,
                                   seed=0, target_accuracy=0.3)
        serial = run_attack_batch(trained_pointnet2, scene_pool, config)
        batched = run_attack_batch(
            trained_pointnet2, scene_pool,
            dataclasses.replace(config, batch_scenes=4))
        assert_results_identical(serial, batched)
        assert len({result.iterations for result in serial}) > 1
        assert any(result.converged for result in serial)
        assert not all(result.converged for result in serial)

    def test_object_hiding_per_scene_masks(self, trained_pointnet2, scene_pool):
        config = AttackConfig.fast(method="unbounded", field="color",
                                   objective="hiding",
                                   source_class=CLASS_INDEX["chair"],
                                   target_class=CLASS_INDEX["floor"],
                                   unbounded_steps=6, smoothness_alpha=4,
                                   seed=0)
        serial = run_attack_batch(trained_pointnet2, scene_pool, config)
        batched = run_attack_batch(
            trained_pointnet2, scene_pool,
            dataclasses.replace(config, batch_scenes=4))
        assert_results_identical(serial, batched)

    def test_mixed_scene_sizes_group_without_reordering(self, victim):
        rng = np.random.default_rng(3)
        scenes = [
            generate_room_scene(num_points=128, room_type="office", rng=rng,
                                name="size128_a"),
            generate_room_scene(num_points=96, room_type="office", rng=rng,
                                name="size96_a"),
            generate_room_scene(num_points=128, room_type="office", rng=rng,
                                name="size128_b"),
            generate_room_scene(num_points=96, room_type="office", rng=rng,
                                name="size96_b"),
        ]
        config = AttackConfig.fast(method="unbounded", field="color",
                                   unbounded_steps=5, smoothness_alpha=4,
                                   seed=0, target_accuracy=0.0)
        serial = run_attack_batch(victim, scenes, config)
        batched = run_attack_batch(
            victim, scenes, dataclasses.replace(config, batch_scenes=4))
        assert [r.scene_name for r in batched] == [r.scene_name for r in serial]
        assert_results_identical(serial, batched)

    def test_run_attack_group_matches_serial_runs(self, victim, scene_pool):
        config = AttackConfig.fast(method="unbounded", field="color",
                                   unbounded_steps=5, smoothness_alpha=4,
                                   seed=0, target_accuracy=0.0)
        serial = run_attack_group(victim, scene_pool, config)
        batched = run_attack_group(
            victim, scene_pool, dataclasses.replace(config, batch_scenes=4))
        assert_results_identical(serial, batched)

    def test_batch_scenes_validation(self):
        with pytest.raises(ValueError):
            AttackConfig(batch_scenes=0)


class TestBatchPositionIndependence:
    """Eval-mode model forwards must not depend on a scene's batch slot."""

    @pytest.mark.parametrize("name", ["pointnet2", "randlanet", "resgcn", "pct"])
    def test_logits_independent_of_position(self, name, scene_pool):
        from repro.datasets import prepare_batch

        kwargs = {"num_blocks": 2} if name == "resgcn" else {}
        model = build_model(name, num_classes=13, hidden=16, seed=0, **kwargs)
        model.eval()
        batch = prepare_batch(scene_pool[:3], model.spec)
        stacked = model.logits_numpy(batch.coords, batch.colors)
        for position in range(3):
            single = model.logits_numpy(batch.coords[position:position + 1],
                                        batch.colors[position:position + 1])
            np.testing.assert_array_equal(stacked[position], single[0])


class TestPerSceneReductions:
    def test_objective_per_scene_matches_scalar(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.standard_normal((3, 40, 13)))
        labels = rng.integers(0, 13, size=(3, 40))
        mask = rng.random((3, 40)) < 0.7
        per_scene = performance_degradation_loss(logits, labels, mask,
                                                 per_scene=True)
        assert per_scene.shape == (3,)
        for scene in range(3):
            scalar = performance_degradation_loss(
                Tensor(logits.data[scene:scene + 1]), labels[scene:scene + 1],
                mask[scene:scene + 1])
            assert per_scene.data[scene] == scalar.item()

    def test_l2_distance_per_scene_matches_scalar(self):
        rng = np.random.default_rng(1)
        delta = Tensor(rng.standard_normal((3, 40, 3)))
        mask = rng.random((3, 40)) < 0.5
        per_scene = l2_distance(delta, mask, per_scene=True)
        assert per_scene.shape == (3,)
        for scene in range(3):
            scalar = l2_distance(Tensor(delta.data[scene]), mask[scene])
            assert per_scene.data[scene] == scalar.item()

    def test_smoothness_per_scene_matches_scalar(self):
        rng = np.random.default_rng(2)
        coords = Tensor(rng.random((2, 50, 3)))
        colors = Tensor(rng.random((2, 50, 3)))
        per_scene = smoothness_penalty(coords, colors, alpha=4, per_scene=True)
        assert per_scene.shape == (2,)
        for scene in range(2):
            scalar = smoothness_penalty(Tensor(coords.data[scene:scene + 1]),
                                        Tensor(colors.data[scene:scene + 1]),
                                        alpha=4)
            assert per_scene.data[scene] == scalar.item()


class TestDefenseBatchAPI:
    def test_apply_batch_matches_serial_apply(self, scene_pool):
        coords = np.stack([s.coords[:96] for s in scene_pool[:2]])
        colors = np.stack([s.colors[:96] / 255.0 for s in scene_pool[:2]])
        labels = np.stack([s.labels[:96] for s in scene_pool[:2]])
        for defense in (StatisticalOutlierRemoval(k=2),
                        SimpleRandomSampling(num_removed=5, seed=3)):
            batched = defense.apply_batch(coords, colors, labels)
            assert len(batched) == 2
            for scene in range(2):
                single = defense.apply(coords[scene], colors[scene],
                                       labels[scene])
                np.testing.assert_array_equal(batched[scene]["indices"],
                                              single["indices"])
                np.testing.assert_array_equal(batched[scene]["coords"],
                                              single["coords"])


class TestThreadPinning:
    def test_pin_helpers_are_idempotent(self, monkeypatch):
        import os

        from repro.geometry.knn import query_workers

        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        monkeypatch.delenv("REPRO_KNN_WORKERS", raising=False)
        pin_blas_env(2)
        assert os.environ["OMP_NUM_THREADS"] == "2"
        # an explicit operator setting wins over a later best-effort pin
        pin_blas_env(4)
        assert os.environ["OMP_NUM_THREADS"] == "2"
        before = query_workers()
        try:
            pin_compute_threads(1)
            assert query_workers() == 1
        finally:
            from repro.geometry.knn import set_query_workers
            set_query_workers(before)
