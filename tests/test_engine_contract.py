"""Cross-engine contract suite: invariants every attack engine must honour.

One parametrized suite runs against the bounded, unbounded and all three
black-box engines (NES, SPSA, decision-based boundary walk), in both the
fast (float32) and exact (float64) compute policies:

* **seeded determinism** — identical config + seed → bit-identical results;
* **serial vs batched equivalence** — ``batch_scenes > 1`` must reproduce
  the ``batch_scenes = 1`` results bit for bit, per scene;
* **mask confinement** — points outside the target mask never move;
* **Converge(·) early stopping** — a trivially satisfied criterion stops
  every engine on its first check;
* **query budgets** — black-box engines never spend more model queries than
  ``query_budget``;
* **eager vs compiled equivalence** — graph capture + plan replay
  (``graph_capture``) must reproduce the eager results bit for bit, in both
  compute policies, and must actually replay on the color-field cells;
* **numpy vs torch backend** — ``tensor_backend="torch"`` tracks the numpy
  engine within documented tolerances (allclose, never bitwise; skipped
  when torch is not installed);
* **store-salt behaviour** — execution knobs (``batch_scenes``,
  ``graph_capture``) are excluded from the result-store salt, semantic
  knobs (``attack_mode``, ``query_budget``, ``tensor_backend``) and the
  resolved compute policy are not.

Adding an engine: register it behind ``_build_engine`` (an ``attack_mode``
or ``AttackMethod``), then add one entry to ``ENGINES`` below — the whole
contract applies to it with no further test code.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accel import last_attack_plan_stats
from repro.core import AttackConfig, run_attack, run_attack_batch
from repro.core.attack import _build_engine
from repro.core.blackbox import BoundaryAttack, NESAttack, SPSAAttack
from repro.core.norm_bounded import NormBoundedAttack
from repro.core.norm_unbounded import NormUnboundedAttack
from repro.datasets import generate_room_scene
from repro.datasets.s3dis import CLASS_INDEX
from repro.experiments.context import ExperimentConfig
from repro.models import build_model
from repro.nn.backends import has_torch
from repro.pipeline.scheduler import config_salt

pytestmark = pytest.mark.contract

#: One entry per engine; every test in the suite runs against each.
ENGINES = {
    "bounded": dict(method="bounded", bounded_steps=5),
    "unbounded": dict(method="unbounded", unbounded_steps=5,
                      smoothness_alpha=4),
    "nes": dict(attack_mode="nes", query_budget=25, samples_per_step=2),
    "spsa": dict(attack_mode="spsa", query_budget=25, samples_per_step=2),
    "boundary": dict(attack_mode="boundary", query_budget=25,
                     boundary_init_tries=4),
}

POLICIES = {
    "fast": dict(compute_dtype="float32", neighbor_refresh=5,
                 smoothness_neighbors="clean"),
    "exact": dict(compute_dtype="float64", neighbor_refresh=1,
                  smoothness_neighbors="current"),
}

ENGINE_CLASSES = {
    "bounded": NormBoundedAttack,
    "unbounded": NormUnboundedAttack,
    "nes": NESAttack,
    "spsa": SPSAAttack,
    "boundary": BoundaryAttack,
}


def make_config(engine: str, policy: str, **overrides) -> AttackConfig:
    values = dict(field="color", seed=0, target_accuracy=0.0)
    values.update(ENGINES[engine])
    values.update(POLICIES[policy])
    values.update(overrides)
    return AttackConfig.fast(**values)


@pytest.fixture(scope="module")
def contract_scenes():
    rng = np.random.default_rng(13)
    return [generate_room_scene(num_points=96, room_type="office", rng=rng,
                                name=f"contract_{i}")
            for i in range(3)]


@pytest.fixture(scope="module")
def contract_model():
    model = build_model("pointnet2", num_classes=13, hidden=16, seed=0)
    model.eval()
    return model


def assert_results_identical(serial, batched):
    assert len(serial) == len(batched)
    for left, right in zip(serial, batched):
        assert left.scene_name == right.scene_name
        np.testing.assert_array_equal(left.adversarial_colors,
                                      right.adversarial_colors)
        np.testing.assert_array_equal(left.adversarial_coords,
                                      right.adversarial_coords)
        np.testing.assert_array_equal(left.adversarial_prediction,
                                      right.adversarial_prediction)
        assert left.history == right.history
        assert left.iterations == right.iterations
        assert left.converged == right.converged
        assert left.l2 == right.l2


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestEngineContract:
    def test_seeded_determinism(self, contract_model, contract_scenes,
                                engine, policy):
        config = make_config(engine, policy)
        first = run_attack(contract_model, contract_scenes[0], config)
        second = run_attack(contract_model, contract_scenes[0], config)
        np.testing.assert_array_equal(first.adversarial_colors,
                                      second.adversarial_colors)
        np.testing.assert_array_equal(first.adversarial_coords,
                                      second.adversarial_coords)
        assert first.history == second.history
        assert first.l2 == second.l2

    def test_serial_vs_batched_bitwise(self, contract_model, contract_scenes,
                                       engine, policy):
        config = make_config(engine, policy)
        serial = run_attack_batch(contract_model, contract_scenes, config)
        batched = run_attack_batch(
            contract_model, contract_scenes,
            dataclasses.replace(config, batch_scenes=len(contract_scenes)))
        assert_results_identical(serial, batched)

    def test_mask_confinement(self, contract_model, contract_scenes,
                              engine, policy):
        """Object hiding: points outside the attacked set never move."""
        config = make_config(
            engine, policy, objective="hiding",
            source_class=CLASS_INDEX["chair"],
            target_class=CLASS_INDEX["floor"], target_accuracy=None)
        result = run_attack(contract_model, contract_scenes[0], config)
        outside = ~result.target_mask
        np.testing.assert_array_equal(result.adversarial_colors[outside],
                                      result.original_colors[outside])
        np.testing.assert_array_equal(result.adversarial_coords[outside],
                                      result.original_coords[outside])

    def test_converge_early_stop(self, contract_model, contract_scenes,
                                 engine, policy):
        """A trivially satisfied criterion stops the engine immediately.

        The boundary walk is the one engine for which ``Converge(·)``
        defines the *feasible region* rather than a stop condition: it keeps
        spending its budget shrinking the perturbation, so only the
        ``converged`` flag (criterion met from the very first query) is part
        of its contract.
        """
        config = make_config(engine, policy, target_accuracy=1.0)
        result = run_attack(contract_model, contract_scenes[0], config)
        assert result.converged
        if engine != "boundary":
            assert result.iterations == 1

    def test_dispatch_selects_engine(self, contract_model, engine, policy):
        config = make_config(engine, policy)
        assert isinstance(_build_engine(contract_model, config),
                          ENGINE_CLASSES[engine])

    def test_eager_vs_compiled_bitwise(self, contract_model, contract_scenes,
                                       engine, policy):
        """Plan replay is an *identity* transformation of the step loop.

        The compiled executor runs the very same numpy kernels in the very
        same order as the eager tape, so with ``graph_capture`` on or off
        every engine must produce bit-identical results — and on these
        color-field static-defense cells the plan must actually replay
        (``replays > 0``), or the equality would be vacuous.
        """
        config = make_config(engine, policy)
        compiled = run_attack_batch(contract_model, contract_scenes, config)
        stats = last_attack_plan_stats()
        eager = run_attack_batch(
            contract_model, contract_scenes,
            dataclasses.replace(config, graph_capture=False))
        assert_results_identical(eager, compiled)
        assert stats["replays"] > 0
        assert not last_attack_plan_stats()   # capture disabled → no plans


def test_noise_baseline_is_mode_agnostic(contract_model):
    """The random-noise baseline needs no model access: it must keep
    working (and win the dispatch) under every ``attack_mode``, so tables
    run under a black-box threat model keep their baseline rows."""
    from repro.core.random_noise import RandomNoiseBaseline

    for mode in ("whitebox", "nes", "spsa", "boundary"):
        config = AttackConfig.fast(method="noise", attack_mode=mode)
        assert isinstance(_build_engine(contract_model, config),
                          RandomNoiseBaseline)


#: Criteria that keep each engine busy for its whole budget: an impossible
#: accuracy target for the estimators (so they never stop early) and an
#: immediately satisfied one for the boundary walk (so it never gives up
#: hunting a start and walks until the budget runs dry).
_EXHAUSTING = {"nes": -1.0, "spsa": -1.0, "boundary": 0.99}


@pytest.mark.parametrize("engine", ["nes", "spsa", "boundary"])
class TestQueryBudget:
    def test_budget_respected(self, contract_model, contract_scenes, engine):
        config = make_config(engine, "fast", query_budget=17)
        result = run_attack(contract_model, contract_scenes[0], config)
        assert result.history, "black-box engines must record their queries"
        queries = [entry["queries"] for entry in result.history]
        assert queries == sorted(queries)
        assert queries[-1] <= 17

    def test_budget_scales_work(self, contract_model, contract_scenes, engine):
        target = _EXHAUSTING[engine]
        small = run_attack(
            contract_model, contract_scenes[0],
            make_config(engine, "fast", query_budget=9,
                        target_accuracy=target))
        large = run_attack(
            contract_model, contract_scenes[0],
            make_config(engine, "fast", query_budget=33,
                        target_accuracy=target))
        assert small.history[-1]["queries"] <= 9
        assert large.history[-1]["queries"] <= 33
        assert large.history[-1]["queries"] > small.history[-1]["queries"]


#: Per-policy tolerances for the torch backend (see docs/COMPILE.md).
#: float32: torch reorders reductions (vectorised horizontal sums) and fuses
#: multiply-adds, so low-order bits drift immediately; after a short attack
#: loop the accumulated drift stays within ~1e-4 relative.  float64 keeps 29
#: extra mantissa bits of headroom and tracks far tighter.
TORCH_TOLERANCES = {
    "fast": dict(rtol=1e-4, atol=1e-5),
    "exact": dict(rtol=1e-8, atol=1e-9),
}


@pytest.mark.skipif(not has_torch(), reason="torch backend not installed "
                    "(pip install 'repro-pcss-attack[torch]')")
@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestTorchBackendContract:
    """``tensor_backend="torch"`` must track numpy within tolerances.

    Torch replays are *allclose*, never bitwise — which is exactly why the
    backend participates in the store salt (see ``TestStoreSalt``).  The
    engines' control flow (sign steps, argmax predictions, convergence
    checks) can amplify an allclose difference into a divergent trajectory
    on knife-edge cells; the contract scenes are smooth enough that the
    final payloads agree within ``TORCH_TOLERANCES`` per policy.
    """

    def test_numpy_vs_torch_allclose(self, contract_model, contract_scenes,
                                     engine, policy):
        config = make_config(engine, policy)
        reference = run_attack(contract_model, contract_scenes[0], config)
        torched = run_attack(
            contract_model, contract_scenes[0],
            dataclasses.replace(config, tensor_backend="torch"))
        tol = TORCH_TOLERANCES[policy]
        np.testing.assert_allclose(torched.adversarial_colors,
                                   reference.adversarial_colors, **tol)
        np.testing.assert_allclose(torched.adversarial_coords,
                                   reference.adversarial_coords, **tol)


class TestStoreSalt:
    """The result-store hashing contract every engine inherits."""

    def test_batch_scenes_excluded(self):
        assert "batch_scenes" in ExperimentConfig.salt_exclusions()
        serial = config_salt(ExperimentConfig.default(batch_scenes=1))
        batched = config_salt(ExperimentConfig.default(batch_scenes=8))
        assert serial == batched

    def test_graph_capture_excluded(self):
        """Plan replay is bitwise-neutral, so it must share cache entries."""
        assert "graph_capture" in ExperimentConfig.salt_exclusions()
        compiled = config_salt(ExperimentConfig.default(graph_capture=True))
        eager = config_salt(ExperimentConfig.default(graph_capture=False))
        assert compiled == eager

    def test_semantic_knobs_participate(self):
        base = config_salt(ExperimentConfig.default())
        assert config_salt(ExperimentConfig.default(attack_mode="nes")) != base
        assert config_salt(ExperimentConfig.default(query_budget=99)) != base
        assert config_salt(
            ExperimentConfig.default(samples_per_step=2)) != base

    def test_tensor_backend_salted(self, monkeypatch):
        """Torch payloads are allclose, not bitwise: they must not collide
        with numpy entries, whether selected by config or by env."""
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        base = config_salt(ExperimentConfig.default())
        torched = config_salt(
            ExperimentConfig.default(tensor_backend="torch"))
        assert torched != base
        assert (torched["config"]["compute_policy"]["tensor_backend"]
                == "torch")
        monkeypatch.setenv("REPRO_BACKEND", "torch")
        by_env = config_salt(ExperimentConfig.default())
        assert by_env != base
        assert (by_env["config"]["compute_policy"]["tensor_backend"]
                == "torch")

    def test_compute_policy_separates_caches(self, monkeypatch):
        monkeypatch.delenv("REPRO_ACCEL", raising=False)
        fast = config_salt(ExperimentConfig.default())
        monkeypatch.setenv("REPRO_ACCEL", "exact")
        exact = config_salt(ExperimentConfig.default())
        assert fast != exact
        assert fast["config"]["compute_policy"]["dtype"] == "float32"
        assert exact["config"]["compute_policy"]["env_override"] == "exact"

    def test_cache_dir_never_hashes(self, tmp_path):
        here = config_salt(ExperimentConfig.default())
        moved = config_salt(
            ExperimentConfig.default(cache_dir=str(tmp_path)))
        assert here == moved


@pytest.mark.slow
class TestTrainedModelContract:
    """The long tail: the full contract against a *trained* victim.

    Excluded from tier-1 (``-m "not slow"``); CI runs it in the dedicated
    contract job.
    """

    @pytest.mark.parametrize("engine", ["nes", "spsa", "boundary"])
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_serial_vs_batched_trained(self, trained_pointnet2,
                                       contract_scenes, engine, policy):
        config = make_config(engine, policy, query_budget=120,
                             samples_per_step=4, epsilon=0.4,
                             target_accuracy=0.55)
        serial = run_attack_batch(trained_pointnet2, contract_scenes, config)
        batched = run_attack_batch(
            trained_pointnet2, contract_scenes,
            dataclasses.replace(config, batch_scenes=len(contract_scenes)))
        assert_results_identical(serial, batched)
