"""Property-based tests (hypothesis) for core data structures and invariants."""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    AttackConfig,
    BoxReparam,
    l0_distance_numpy,
    l2_distance_numpy,
    linf_distance_numpy,
    remap_adversarial_example,
    run_attack,
)
from repro.core.objectives import object_hiding_loss, performance_degradation_loss
from repro.datasets import generate_room_scene
from repro.defenses import SimpleRandomSampling, StatisticalOutlierRemoval
from repro.geometry import (
    farthest_point_sampling,
    knn_indices,
    normalize_to_range,
    pairwise_squared_distances,
    remap_range,
)
from repro.geometry.transforms import MODEL_SPECS
from repro.metrics import accuracy_score, average_iou, per_class_iou, point_success_rate
from repro.models import build_model
from repro.nn import Tensor
from repro.nn.tensor import _unbroadcast

# Reusable strategies -------------------------------------------------------

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                          allow_infinity=False)


def point_clouds(min_points=3, max_points=40, dims=3):
    return hnp.arrays(np.float64,
                      st.tuples(st.integers(min_points, max_points), st.just(dims)),
                      elements=finite_floats)


def label_arrays(num_classes=5, min_size=1, max_size=60):
    return hnp.arrays(np.int64, st.integers(min_size, max_size),
                      elements=st.integers(0, num_classes - 1))


# Metrics --------------------------------------------------------------------

class TestMetricProperties:
    @given(labels=label_arrays())
    @settings(max_examples=40, deadline=None)
    def test_accuracy_of_identity_is_one(self, labels):
        assert accuracy_score(labels, labels) == 1.0

    @given(labels=label_arrays(), prediction=label_arrays())
    @settings(max_examples=40, deadline=None)
    def test_accuracy_bounded(self, labels, prediction):
        size = min(labels.size, prediction.size)
        value = accuracy_score(prediction[:size], labels[:size])
        assert 0.0 <= value <= 1.0

    @given(labels=label_arrays())
    @settings(max_examples=40, deadline=None)
    def test_aiou_of_identity_is_one(self, labels):
        assert average_iou(labels, labels, 5) == 1.0

    @given(labels=label_arrays(), prediction=label_arrays())
    @settings(max_examples=40, deadline=None)
    def test_per_class_iou_bounded(self, labels, prediction):
        size = min(labels.size, prediction.size)
        iou = per_class_iou(prediction[:size], labels[:size], 5)
        valid = iou[~np.isnan(iou)]
        assert ((valid >= 0.0) & (valid <= 1.0)).all()

    @given(labels=label_arrays())
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance_of_accuracy(self, labels):
        prediction = (labels + 1) % 5
        order = np.random.default_rng(0).permutation(labels.size)
        assert accuracy_score(prediction, labels) == pytest.approx(
            accuracy_score(prediction[order], labels[order]))

    @given(labels=label_arrays(min_size=2))
    @settings(max_examples=40, deadline=None)
    def test_psr_bounded(self, labels):
        mask = np.zeros(labels.size, dtype=bool)
        mask[0] = True
        targets = np.full(labels.size, 2)
        assert 0.0 <= point_success_rate(labels, targets, mask) <= 1.0


# Geometry ---------------------------------------------------------------------

class TestGeometryProperties:
    @given(points=point_clouds())
    @settings(max_examples=30, deadline=None)
    def test_pairwise_distances_nonnegative_symmetric(self, points):
        d = pairwise_squared_distances(points, points)
        assert (d >= 0).all()
        np.testing.assert_allclose(d, d.T, atol=1e-6)

    @given(points=point_clouds(min_points=4), k=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_knn_indices_in_range(self, points, k):
        idx = knn_indices(points, k)
        assert idx.shape[0] == points.shape[0]
        assert idx.min() >= 0 and idx.max() < points.shape[0]

    @given(points=point_clouds(min_points=5), count=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_fps_returns_unique_valid_indices(self, points, count):
        idx = farthest_point_sampling(points, count)
        assert len(np.unique(idx)) == min(count, points.shape[0])
        assert idx.max() < points.shape[0]

    @given(values=hnp.arrays(np.float64, st.tuples(st.integers(2, 30), st.just(3)),
                             elements=finite_floats),
           low=st.floats(-5, 0), high=st.floats(0.5, 5))
    @settings(max_examples=40, deadline=None)
    def test_normalize_to_range_stays_in_range(self, values, low, high):
        out = normalize_to_range(values, low, high)
        assert out.min() >= low - 1e-9
        assert out.max() <= high + 1e-9

    @given(values=hnp.arrays(np.float64, st.integers(1, 20),
                             elements=st.floats(0.0, 1.0)))
    @settings(max_examples=40, deadline=None)
    def test_remap_range_roundtrip(self, values):
        there = remap_range(values, (0.0, 1.0), (-1.0, 3.0))
        back = remap_range(there, (-1.0, 3.0), (0.0, 1.0))
        np.testing.assert_allclose(back, values, atol=1e-9)


# Attack components ------------------------------------------------------------

class TestCoreProperties:
    @given(w=hnp.arrays(np.float64, st.tuples(st.integers(1, 20), st.just(3)),
                        elements=st.floats(-20, 20, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_reparam_always_inside_box(self, w):
        reparam = BoxReparam(0.0, 1.0)
        values = reparam.to_box_numpy(w)
        assert values.min() >= 0.0 and values.max() <= 1.0

    @given(values=hnp.arrays(np.float64, st.tuples(st.integers(1, 20), st.just(3)),
                             elements=st.floats(0.01, 0.99)))
    @settings(max_examples=40, deadline=None)
    def test_reparam_roundtrip(self, values):
        reparam = BoxReparam(0.0, 1.0)
        np.testing.assert_allclose(reparam.to_box_numpy(reparam.from_box(values)),
                                   values, atol=1e-6)

    @given(perturbation=hnp.arrays(np.float64, st.tuples(st.integers(1, 30), st.just(3)),
                                   elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_distance_invariants(self, perturbation):
        l2 = l2_distance_numpy(perturbation)
        l0 = l0_distance_numpy(perturbation)
        linf = linf_distance_numpy(perturbation)
        assert l2 >= 0
        assert 0 <= l0 <= perturbation.shape[0]
        assert linf >= 0
        if linf == 0:
            assert l0 == 0

    @given(perturbation=hnp.arrays(np.float64, st.tuples(st.integers(2, 20), st.just(3)),
                                   elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_l2_mask_is_monotone(self, perturbation):
        full = l2_distance_numpy(perturbation)
        mask = np.zeros(perturbation.shape[0], dtype=bool)
        mask[: perturbation.shape[0] // 2] = True
        assert l2_distance_numpy(perturbation, mask) <= full + 1e-9

    @given(logits=hnp.arrays(np.float64, st.tuples(st.just(1), st.integers(1, 15),
                                                   st.just(6)),
                             elements=finite_floats),
           target=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_losses_nonnegative(self, logits, target):
        targets = np.full(logits.shape[:2], target)
        hiding = object_hiding_loss(Tensor(logits), targets).item()
        degradation = performance_degradation_loss(Tensor(logits), targets).item()
        assert hiding >= 0.0
        assert degradation >= 0.0

    @given(logits=hnp.arrays(np.float64, st.tuples(st.just(1), st.integers(1, 10),
                                                   st.just(4)),
                             elements=st.floats(-10, 10)),
           target=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_hiding_loss_zero_iff_all_points_predicted_as_target(self, logits, target):
        targets = np.full(logits.shape[:2], target)
        loss = object_hiding_loss(Tensor(logits), targets).item()
        prediction = np.argmax(logits, axis=-1)
        margins = (np.delete(logits, target, axis=-1).max(axis=-1)
                   - logits[..., target])
        if loss < 1e-12:
            assert (margins <= 1e-9).all()
        if (prediction != target).any():
            assert loss >= 0.0


# Perturbation / geometry invariants -------------------------------------------

_victim = None


def _tiny_victim():
    """A tiny untrained victim model, built once (forwards only)."""
    global _victim
    if _victim is None:
        _victim = build_model("pointnet2", num_classes=13, hidden=8, seed=0)
        _victim.eval()
    return _victim


class TestAttackInvariants:
    @given(seed=st.integers(0, 2 ** 16), epsilon=st.floats(0.02, 0.3),
           engine=st.sampled_from(["bounded", "nes", "spsa"]),
           dtype=st.sampled_from(["float32", "float64"]))
    @settings(max_examples=10, deadline=None)
    def test_epsilon_budget_respected(self, seed, epsilon, engine, dtype):
        """ε-bounded engines never leave the L∞ ball, under either policy."""
        scene = generate_room_scene(num_points=96, room_type="office",
                                    rng=np.random.default_rng(seed),
                                    name="prop")
        overrides = dict(method="bounded", bounded_steps=3,
                         epsilon=epsilon, seed=seed, target_accuracy=0.0,
                         compute_dtype=dtype)
        if engine != "bounded":
            overrides.update(attack_mode=engine, query_budget=8,
                             samples_per_step=1)
        config = AttackConfig.fast(field="color", **overrides)
        result = run_attack(_tiny_victim(), scene, config)
        assert result.linf <= epsilon + 1e-12
        np.testing.assert_array_equal(result.adversarial_coords,
                                      result.original_coords)

    @given(values=hnp.arrays(np.float64, st.tuples(st.integers(1, 30), st.just(3)),
                             elements=st.floats(0.0, 1.0)),
           source=st.sampled_from(sorted(MODEL_SPECS)),
           target=st.sampled_from(sorted(MODEL_SPECS)))
    @settings(max_examples=40, deadline=None)
    def test_remap_adversarial_example_roundtrip(self, values, source, target):
        """Source → target → source recovers the adversarial cloud."""
        source_spec, target_spec = MODEL_SPECS[source], MODEL_SPECS[target]
        coords = remap_range(values, (0.0, 1.0), source_spec.coord_range)
        colors = remap_range(values, (0.0, 1.0), source_spec.color_range)
        result = SimpleNamespace(adversarial_coords=coords,
                                 adversarial_colors=colors)
        there = remap_adversarial_example(result,
                                          SimpleNamespace(spec=source_spec),
                                          SimpleNamespace(spec=target_spec))
        back = remap_adversarial_example(
            SimpleNamespace(adversarial_coords=there["coords"],
                            adversarial_colors=there["colors"]),
            SimpleNamespace(spec=target_spec),
            SimpleNamespace(spec=source_spec))
        np.testing.assert_allclose(back["coords"], coords, atol=1e-9)
        np.testing.assert_allclose(back["colors"], colors, atol=1e-9)


class TestDefenseProperties:
    @given(points=point_clouds(min_points=2, max_points=50),
           removed=st.integers(0, 60), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_srs_output_is_subset(self, points, removed, seed):
        n = points.shape[0]
        colors = np.zeros_like(points)
        labels = np.arange(n)
        defense = SimpleRandomSampling(num_removed=removed, seed=seed)
        filtered = defense.apply(points, colors, labels)
        kept = filtered["indices"]
        assert len(np.unique(kept)) == kept.size
        # Removals clamp to the cloud size: over-asking empties the scene.
        assert kept.size == n - min(removed, n)
        if kept.size:
            assert kept.min() >= 0 and kept.max() < n
        np.testing.assert_array_equal(filtered["coords"], points[kept])
        np.testing.assert_array_equal(filtered["labels"], labels[kept])

    @given(points=point_clouds(min_points=2, max_points=50),
           k=st.integers(1, 4), multiplier=st.floats(0.5, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_sor_output_is_subset(self, points, k, multiplier):
        n = points.shape[0]
        colors = np.zeros_like(points)
        labels = np.arange(n)
        defense = StatisticalOutlierRemoval(k=k, std_multiplier=multiplier)
        filtered = defense.apply(points, colors, labels)
        kept = filtered["indices"]
        assert len(np.unique(kept)) == kept.size
        assert kept.size >= 1 and kept.size <= n
        assert kept.min() >= 0 and kept.max() < n
        np.testing.assert_array_equal(filtered["coords"], points[kept])
        np.testing.assert_array_equal(filtered["labels"], labels[kept])


# Autograd ---------------------------------------------------------------------

class TestAutogradProperties:
    @given(data=hnp.arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 6)),
                           elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_ones(self, data):
        t = Tensor(data, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(data))

    @given(data=hnp.arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 6)),
                           elements=st.floats(-50, 50)))
    @settings(max_examples=40, deadline=None)
    def test_tanh_gradient_bounded(self, data):
        t = Tensor(data, requires_grad=True)
        t.tanh().sum().backward()
        assert (t.grad <= 1.0 + 1e-9).all() and (t.grad >= 0.0 - 1e-9).all()

    @given(shape=st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)))
    @settings(max_examples=40, deadline=None)
    def test_unbroadcast_preserves_total(self, shape):
        grad = np.ones(shape)
        reduced = _unbroadcast(grad, (shape[-1],))
        assert reduced.shape == (shape[-1],)
        assert reduced.sum() == pytest.approx(grad.sum())

    @given(data=hnp.arrays(np.float64, st.integers(1, 30), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_relu_output_nonnegative_and_matches_numpy(self, data):
        out = Tensor(data).relu().data
        assert (out >= 0).all()
        np.testing.assert_allclose(out, np.maximum(data, 0.0))
