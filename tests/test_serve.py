"""Tests for the serving layer (``repro.serve``).

Covers the ISSUE-8 checklist: protocol round-trips, duplicate-request
dedup (an identical second submission — concurrent or later — never
recomputes), progress-stream ordering (engine events arrive in emission
order), graceful shutdown with jobs in flight, plus job-spec validation,
transient-failure retries, cancellation and warm-worker reuse.

All job executors are registered at import time so the fork-started
worker pool inherits them; none of them needs a trained model, keeping
every test fast.
"""

import json
import os
import threading
import time

import pytest

from repro.experiments import ExperimentConfig
from repro.pipeline import register_executor
from repro.pipeline.resilience import RetryPolicy, TransientTaskError
from repro.pipeline.store import ResultStore
from repro.serve import (AttackServer, Client, JobError, JobSpec, ServeError,
                         ServerThread, job_key)
from repro.serve import protocol
from repro.serve.jobs import DONE, EVENT_HISTORY_LIMIT, Job

# ---------------------------------------------------------------------- #
# Stub executors (inherited by fork workers)
# ---------------------------------------------------------------------- #


@register_executor("serve:echo")
def _serve_echo(config, params, deps):
    return {"echo": params.get("x"), "pid": os.getpid()}


@register_executor("serve:count")
def _serve_count(config, params, deps):
    """Append one line per invocation — the zero-recompute witness."""
    with open(params["ledger"], "a", encoding="utf-8") as handle:
        handle.write(f"{os.getpid()}\n")
    time.sleep(params.get("sleep", 0.0))
    return {"x": params.get("x")}


@register_executor("serve:steps")
def _serve_steps(config, params, deps):
    from repro.telemetry import get_tracer
    tracer = get_tracer()
    for step in range(params["steps"]):
        tracer.emit("attack_step", step=step, loss=1.0 / (step + 1))
    return {"steps": params["steps"]}


@register_executor("serve:slow")
def _serve_slow(config, params, deps):
    time.sleep(params.get("sleep", 0.5))
    return {"slept": params.get("sleep", 0.5)}


@register_executor("serve:flaky")
def _serve_flaky(config, params, deps):
    """Fails transiently until its marker file exists."""
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("tried\n")
        raise TransientTaskError("first attempt always fails")
    return {"recovered": True}


@register_executor("serve:boom")
def _serve_boom(config, params, deps):
    raise ValueError("deterministic failure")


# ---------------------------------------------------------------------- #
# Fixtures
# ---------------------------------------------------------------------- #
@pytest.fixture()
def config(tmp_path):
    return ExperimentConfig.tiny(cache_dir=str(tmp_path / "cache"))


@pytest.fixture()
def store_dir(tmp_path):
    return str(tmp_path / "results")


def _fast_retry(**overrides):
    defaults = dict(max_attempts=3, backoff_base=0.01, backoff_max=0.05)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _server(config, store_dir, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("retry", _fast_retry())
    return AttackServer(config, store=store_dir, **kwargs)


# ---------------------------------------------------------------------- #
# Protocol round-trips
# ---------------------------------------------------------------------- #
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "job": {"kind": "attack_cell",
                                           "params": {"row": "PointNet++"}}}
        line = protocol.encode(message)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert protocol.decode(line) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"{not json}\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'["not", "an", "object"]\n')

    def test_decode_rejects_oversized_frames(self):
        line = b"x" * (protocol.MAX_LINE_BYTES + 1)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(line)

    def test_parse_address(self):
        assert protocol.parse_address("127.0.0.1:7431") == \
            ("127.0.0.1", 7431, None)
        assert protocol.parse_address(":0") == ("127.0.0.1", 0, None)
        assert protocol.parse_address("/tmp/serve.sock") == \
            (None, None, "/tmp/serve.sock")
        with pytest.raises(ValueError):
            protocol.parse_address("no-port-here")

    def test_wire_payload_formats_and_degrades(self):
        class Fancy:
            def formatted(self):
                return "TABLE"

        out = protocol.wire_payload(Fancy())
        assert out["formatted"] == "TABLE"
        assert isinstance(out["value"], str)      # repr fallback
        plain = protocol.wire_payload({"a": 1})
        assert plain["value"] == {"a": 1}

    def test_live_roundtrip_over_socket(self, config, store_dir):
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            pong = client.ping()
            assert pong["server"] == "repro.serve"
            assert pong["version"] == protocol.PROTOCOL_VERSION
            with pytest.raises(ServeError, match="unknown op"):
                client.request({"op": "nonsense"})
            with pytest.raises(ServeError, match="unknown job"):
                client.status("not-a-job")


# ---------------------------------------------------------------------- #
# Job specs and keys
# ---------------------------------------------------------------------- #
class TestJobSpec:
    def test_from_wire_shapes(self):
        spec = JobSpec.from_wire({"experiment": "table3"})
        assert spec.kind == "experiment"
        assert spec.params == {"name": "table3"}
        assert spec.label == "experiment:table3"
        spec = JobSpec.from_wire({"kind": "serve:echo", "params": {"x": 1}})
        assert spec.kind == "serve:echo"

    def test_from_wire_rejects_malformed(self):
        with pytest.raises(JobError):
            JobSpec.from_wire({})
        with pytest.raises(JobError):
            JobSpec.from_wire({"experiment": ""})
        with pytest.raises(JobError):
            JobSpec(kind="")

    def test_dependency_coupled_params_rejected(self):
        with pytest.raises(JobError, match="dependency"):
            JobSpec(kind="attack_cell", params={"match_l2_from": "other"})
        with pytest.raises(JobError, match="dependency"):
            JobSpec(kind="attack_cell",
                    params={"attack": {"match_l2_from": "other"}})

    def test_validate_kind(self):
        JobSpec(kind="serve:echo").validate_kind()
        with pytest.raises(JobError, match="unknown job kind"):
            JobSpec(kind="no-such-kind").validate_kind()
        with pytest.raises(JobError, match="unknown experiment"):
            JobSpec(kind="experiment",
                    params={"name": "table99"}).validate_kind()

    def test_job_key_tracks_the_store_salt(self, tmp_path):
        """Salted knobs split keys; unsalted ones (batch_scenes) do not."""
        spec = JobSpec(kind="serve:echo", params={"x": 1})
        base = ExperimentConfig.tiny(cache_dir=str(tmp_path))
        assert job_key(spec, base) == job_key(spec, base)
        assert job_key(spec, base) != job_key(
            JobSpec(kind="serve:echo", params={"x": 2}), base)
        nes = ExperimentConfig.tiny(cache_dir=str(tmp_path),
                                    attack_mode="nes")
        assert job_key(spec, base) != job_key(spec, nes)
        batched = ExperimentConfig.tiny(cache_dir=str(tmp_path),
                                        batch_scenes=4)
        assert job_key(spec, base) == job_key(spec, batched)

    def test_never_cache_experiments_are_uncacheable(self):
        assert not JobSpec(kind="experiment",
                           params={"name": "overhead"}).cacheable
        assert JobSpec(kind="experiment",
                       params={"name": "table3"}).cacheable
        assert JobSpec(kind="serve:echo").cacheable


# ---------------------------------------------------------------------- #
# Dedup: one key, one computation
# ---------------------------------------------------------------------- #
class TestDedup:
    def test_concurrent_duplicate_never_recomputes(self, config, store_dir,
                                                   tmp_path):
        """The acceptance criterion: N identical submissions, 1 execution."""
        ledger = str(tmp_path / "ledger.txt")
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            params = {"ledger": ledger, "sleep": 0.4, "x": 7}
            first = client.submit("serve:count", params)
            acks = [client.submit("serve:count", params) for _ in range(4)]
            assert all(a["job_id"] == first["job_id"] for a in acks)
            assert all(a["deduped"] for a in acks)
            result = client.result(first["job_id"])
            assert result["result"]["value"] == {"x": 7}
            stats = client.stats()
        assert stats["jobs"]["submitted"] == 5
        assert stats["jobs"]["computed"] == 1
        assert stats["jobs"]["dedup_inflight"] == 4
        with open(ledger, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1

    def test_completed_dedup_across_server_restart(self, config, store_dir,
                                                   tmp_path):
        """A fresh server serves a previous server's work from the store."""
        ledger = str(tmp_path / "ledger.txt")
        params = {"ledger": ledger, "x": 9}
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            ack = client.submit("serve:count", params)
            client.result(ack["job_id"])
            assert not ack["cached"]
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            ack = client.submit("serve:count", params)
            assert ack["cached"] and ack["state"] == "done"
            result = client.result(ack["job_id"])
            assert result["result"]["value"] == {"x": 9}
            assert client.stats()["jobs"]["dedup_store"] == 1
        with open(ledger, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1

    def test_store_is_shared_with_the_pipeline_salt(self, config, store_dir):
        """The job key is literally a store key: the entry lands there."""
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            ack = client.submit("serve:echo", {"x": 3})
            client.result(ack["job_id"])
        store = ResultStore(store_dir)
        key = job_key(JobSpec(kind="serve:echo", params={"x": 3}), config)
        assert ack["job_id"] == key
        assert store.contains(key, count=False)
        assert store.get(key)["echo"] == 3

    def test_failed_jobs_can_be_resubmitted(self, config, store_dir,
                                            tmp_path):
        with ServerThread(_server(config, store_dir,
                                  retry=_fast_retry(max_attempts=1))) \
                as address:
            client = Client(address)
            ack = client.submit("serve:boom", {})
            with pytest.raises(ServeError, match="deterministic failure"):
                client.result(ack["job_id"])
            again = client.submit("serve:boom", {})
            assert again["job_id"] == ack["job_id"]
            assert not again["deduped"]          # failure is not memoised
            with pytest.raises(ServeError):
                client.result(again["job_id"])


# ---------------------------------------------------------------------- #
# Progress streaming
# ---------------------------------------------------------------------- #
class TestProgress:
    def test_stream_preserves_emission_order(self, config, store_dir):
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            ack = client.submit("serve:steps", {"steps": 25})
            events = list(client.watch(ack["job_id"]))
        types = [e["type"] for e in events]
        assert types[0] == "job_queued"
        assert types[-1] == "job_done"
        steps = [e["step"] for e in events if e["type"] == "attack_step"]
        assert steps == list(range(25))

    def test_late_watcher_gets_full_replay(self, config, store_dir):
        """Watching after completion replays the identical history."""
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            ack = client.submit("serve:steps", {"steps": 5})
            client.result(ack["job_id"])          # job is finished now
            first = list(client.watch(ack["job_id"]))
            second = list(client.watch(ack["job_id"]))
        assert [e["type"] for e in first] == [e["type"] for e in second]
        assert [e["step"] for e in first if e["type"] == "attack_step"] == \
            list(range(5))

    def test_history_is_bounded(self):
        job = Job(JobSpec(kind="serve:echo"), key="k")
        for index in range(EVENT_HISTORY_LIMIT + 10):
            job.publish({"type": "attack_step", "step": index})
        assert job.history_truncated
        assert len(job.history) <= EVENT_HISTORY_LIMIT + 1
        assert job.events_seen == EVENT_HISTORY_LIMIT + 10
        # The surviving suffix is contiguous and ends with the last event.
        steps = [e["step"] for e in job.history]
        assert steps == list(range(steps[0], EVENT_HISTORY_LIMIT + 10))


# ---------------------------------------------------------------------- #
# Lifecycle: retries, cancellation, shutdown
# ---------------------------------------------------------------------- #
class TestLifecycle:
    def test_transient_failure_retries_transparently(self, config, store_dir,
                                                     tmp_path):
        marker = str(tmp_path / "marker")
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            ack = client.submit("serve:flaky", {"marker": marker})
            result = client.result(ack["job_id"])
            assert result["result"]["value"] == {"recovered": True}
            status = client.status(ack["job_id"])
            assert status["state"] == DONE
            assert status["attempts"] == 2 and status["retries"] == 1
            assert client.stats()["jobs"]["retries"] == 1

    def test_permanent_failure_fails_fast(self, config, store_dir):
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            ack = client.submit("serve:boom", {})
            with pytest.raises(ServeError, match="deterministic failure"):
                client.result(ack["job_id"])
            status = client.status(ack["job_id"])
            assert status["state"] == "failed"
            assert status["attempts"] == 1       # ValueError: no retry

    def test_cancel_queued_job(self, config, store_dir, tmp_path):
        with ServerThread(_server(config, store_dir, jobs=1)) as address:
            client = Client(address)
            running = client.submit("serve:slow", {"sleep": 0.6})
            deadline = time.time() + 5.0
            while (client.status(running["job_id"])["state"] != "running"
                   and time.time() < deadline):
                time.sleep(0.02)
            queued = client.submit("serve:echo", {"x": "doomed"})
            assert queued["job_id"] != running["job_id"]
            cancel = client.cancel(queued["job_id"])
            assert cancel["cancelling"]
            with pytest.raises(ServeError, match="never preempted"):
                client.cancel(running["job_id"])
            with pytest.raises(ServeError, match="cancelled"):
                client.result(queued["job_id"])
            client.result(running["job_id"])     # the runner still finishes

    def test_graceful_shutdown_drains_jobs_in_flight(self, config,
                                                     store_dir, tmp_path):
        ledger = str(tmp_path / "ledger.txt")
        runner = ServerThread(_server(config, store_dir))
        address = runner.start()
        client = Client(address)
        params = {"ledger": ledger, "sleep": 0.5, "x": 1}
        ack = client.submit("serve:count", params)
        assert not runner.server.counters["done"]
        runner.stop(drain=True)                  # blocks until drained
        assert runner.server.counters["done"] == 1
        # The drained job's payload made it into the store, durably.
        assert ResultStore(store_dir).contains(ack["job_id"], count=False)
        with open(ledger, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 1
        # A stopping server rejects new submissions outright.
        refused = runner.server._submit({"kind": "serve:echo", "params": {}})
        assert not refused["ok"] and "shutting down" in refused["error"]

    def test_warm_workers_are_reused_across_jobs(self, config, store_dir):
        with ServerThread(_server(config, store_dir, jobs=1)) as address:
            client = Client(address)
            pids = set()
            for x in ("a", "b", "c"):
                ack = client.submit("serve:echo", {"x": x})
                result = client.result(ack["job_id"])
                pids.add(result["result"]["value"]["pid"])
        assert len(pids) == 1                    # one warm process, three jobs

    def test_stats_shape(self, config, store_dir):
        with ServerThread(_server(config, store_dir)) as address:
            client = Client(address)
            stats = client.stats()
        assert stats["pool"]["workers"] == 2
        assert stats["store"]["root"] == store_dir
        assert set(stats["jobs"]) >= {"submitted", "computed", "done",
                                      "dedup_inflight", "dedup_store"}

    def test_shutdown_op_stops_the_server(self, config, store_dir):
        runner = ServerThread(_server(config, store_dir))
        address = runner.start()
        client = Client(address)
        assert client.shutdown(drain=True)["stopping"]
        deadline = time.time() + 10.0
        while runner._thread.is_alive() and time.time() < deadline:
            time.sleep(0.05)
        assert not runner._thread.is_alive()
