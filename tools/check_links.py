"""Markdown link checker for the documentation tree (stdlib only).

Validates every inline markdown link in the given files (default: the
repo's documentation surface — ``README.md``, ``docs/*.md``,
``benchmarks/TRACING.md``):

* **relative links** must point at an existing file or directory inside
  the repository;
* **fragment links** (``page.md#section`` or ``#section``) must match a
  heading in the target file, using GitHub's anchor slug rules;
* **external links** (``http(s)://``, ``mailto:``) and relative targets
  that escape the repository root (e.g. the CI badge's
  ``../../actions/...`` web URL) are skipped — CI must not depend on
  the network or the forge's URL layout.

Exit status is non-zero when any link is broken.  Run as::

    python tools/check_links.py [FILES...]
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import sys
from typing import Iterable, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline markdown links/images: ``[text](target)`` — shortest match, so
#: adjacent links on one line are caught individually.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings, the anchors GitHub generates slugs for.
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")

#: Fenced code blocks must not contribute headings or links.
FENCE_PATTERN = re.compile(r"^\s*(```|~~~)")

DEFAULT_FILES = ("README.md", "docs/*.md", "benchmarks/TRACING.md")


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor slug transformation (close enough).

    Lowercase, markup stripped, punctuation removed, spaces to hyphens.
    """
    text = re.sub(r"[`*_]|\[|\]|\([^)]*\)", "", heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _markdown_lines(path: str) -> Iterable[str]:
    """The file's lines with fenced code blocks blanked out."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if FENCE_PATTERN.match(line):
                in_fence = not in_fence
                yield ""
                continue
            yield "" if in_fence else line


def heading_slugs(path: str) -> List[str]:
    slugs: List[str] = []
    counts: dict = {}
    for line in _markdown_lines(path):
        match = HEADING_PATTERN.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        if slug in counts:       # GitHub de-duplicates repeats with -1, -2…
            counts[slug] += 1
            slug = f"{slug}-{counts[slug]}"
        else:
            counts[slug] = 0
        slugs.append(slug)
    return slugs


def extract_links(path: str) -> List[Tuple[int, str]]:
    links: List[Tuple[int, str]] = []
    for lineno, line in enumerate(_markdown_lines(path), start=1):
        for match in LINK_PATTERN.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def check_file(path: str) -> List[str]:
    """Broken-link descriptions for one markdown file."""
    errors: List[str] = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in extract_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        rel, _, fragment = target.partition("#")
        if rel:
            resolved = os.path.normpath(os.path.join(base, rel))
            if not resolved.startswith(REPO_ROOT + os.sep) \
                    and resolved != REPO_ROOT:
                continue          # escapes the repo (forge URLs, badges)
            if not os.path.exists(resolved):
                errors.append(f"{path}:{lineno}: broken link {target!r} "
                              f"(no such file {resolved!r})")
                continue
            anchor_file = resolved
        else:
            anchor_file = os.path.abspath(path)
        if fragment and anchor_file.endswith(".md"):
            if fragment not in heading_slugs(anchor_file):
                errors.append(f"{path}:{lineno}: broken anchor {target!r} "
                              f"(no heading #{fragment} in "
                              f"{os.path.relpath(anchor_file, REPO_ROOT)})")
    return errors


def documentation_files() -> List[str]:
    files: List[str] = []
    for pattern in DEFAULT_FILES:
        files.extend(sorted(glob.glob(os.path.join(REPO_ROOT, pattern))))
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="markdown files to check (default: README.md, "
                             "docs/*.md, benchmarks/TRACING.md)")
    args = parser.parse_args(argv)
    files = args.files or documentation_files()
    all_errors: List[str] = []
    checked_links = 0
    for path in files:
        checked_links += len(extract_links(path))
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error, file=sys.stderr)
    print(f"checked {checked_links} links in {len(files)} files: "
          f"{len(all_errors)} broken")
    return 1 if all_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
