"""Perturbation specification: which field is attacked, on which points.

The paper's framework supports three attacked fields — point **coordinates**,
point **colour features**, or **both** — and, for the object-hiding attack, a
subset ``T`` of target points.  :class:`PerturbationSpec` captures those
choices together with the valid value box of each field (which depends on the
victim model's normalisation convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np

from ..geometry.transforms import NormalizationSpec


class AttackField(str, Enum):
    """Which point attribute the adversary perturbs."""

    COLOR = "color"
    COORDINATE = "coordinate"
    BOTH = "both"

    @property
    def perturbs_color(self) -> bool:
        return self in (AttackField.COLOR, AttackField.BOTH)

    @property
    def perturbs_coordinate(self) -> bool:
        return self in (AttackField.COORDINATE, AttackField.BOTH)


@dataclass
class PerturbationSpec:
    """Describes what the attacker is allowed to change.

    Attributes
    ----------
    field:
        Attacked field (colour, coordinate or both).
    target_mask:
        Boolean array ``(N,)`` marking the attacked points ``T``.  For the
        performance-degradation attack this is all points.
    color_box:
        Valid value range ``[a, b]`` of the colour field in model space.
    coord_box:
        Valid value range ``[a, b]`` of the coordinate field in model space.
    """

    field: AttackField
    target_mask: np.ndarray
    color_box: Tuple[float, float] = (0.0, 1.0)
    coord_box: Tuple[float, float] = (-1.0, 1.0)

    def __post_init__(self) -> None:
        self.field = AttackField(self.field)
        self.target_mask = np.asarray(self.target_mask, dtype=bool)
        if self.target_mask.ndim != 1:
            raise ValueError("target_mask must be a 1-D boolean array")
        if not self.target_mask.any():
            raise ValueError("target_mask must select at least one point")

    @property
    def num_targets(self) -> int:
        return int(self.target_mask.sum())

    @classmethod
    def for_model(cls, field: AttackField | str, target_mask: np.ndarray,
                  spec: NormalizationSpec) -> "PerturbationSpec":
        """Build a spec whose value boxes match a model's normalisation."""
        return cls(
            field=AttackField(field),
            target_mask=target_mask,
            color_box=spec.color_range,
            coord_box=spec.coord_range,
        )

    def box_for(self, field_name: str) -> Tuple[float, float]:
        """Value box of ``"color"`` or ``"coordinate"``."""
        if field_name == "color":
            return self.color_box
        if field_name == "coordinate":
            return self.coord_box
        raise ValueError(f"unknown field {field_name!r}")


def full_mask(num_points: int) -> np.ndarray:
    """Target mask selecting every point (performance-degradation attack)."""
    return np.ones(num_points, dtype=bool)


def class_mask(labels: np.ndarray, class_index: int) -> np.ndarray:
    """Target mask selecting all points of a semantic class (object hiding)."""
    return np.asarray(labels) == class_index


__all__ = ["AttackField", "PerturbationSpec", "full_mask", "class_mask"]
