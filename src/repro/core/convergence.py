"""Convergence criteria — the ``Converge(·)`` check of Algorithm 1.

The attacker stops early when its own success metric is satisfied:

* performance degradation — the post-attack accuracy on the attacked points
  falls below a threshold (the paper uses random-guess level, ``1/13`` for
  S3DIS and ``1/8`` for Semantic3D);
* object hiding — the point success rate (PSR) reaches a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.attack_metrics import point_success_rate
from ..metrics.segmentation import accuracy_score
from .config import AttackConfig, AttackObjective


@dataclass
class ConvergenceCheck:
    """Stateless evaluator of the attacker's stopping criterion."""

    config: AttackConfig
    num_classes: int

    @property
    def accuracy_threshold(self) -> float:
        if self.config.target_accuracy is not None:
            return self.config.target_accuracy
        return 1.0 / self.num_classes

    def converged(self, prediction: np.ndarray, labels: np.ndarray,
                  target_labels: np.ndarray | None,
                  target_mask: np.ndarray) -> bool:
        """Whether the attack already satisfies the attacker's goal."""
        prediction = np.asarray(prediction)
        labels = np.asarray(labels)
        target_mask = np.asarray(target_mask, dtype=bool)
        if self.config.objective is AttackObjective.PERFORMANCE_DEGRADATION:
            attacked_accuracy = accuracy_score(prediction[target_mask],
                                               labels[target_mask])
            return attacked_accuracy <= self.accuracy_threshold
        if target_labels is None:
            raise ValueError("object hiding convergence requires target labels")
        psr = point_success_rate(prediction, target_labels, target_mask)
        return psr >= self.config.target_psr

    def gain(self, prediction: np.ndarray, labels: np.ndarray,
             target_labels: np.ndarray | None, target_mask: np.ndarray) -> float:
        """A scalar "attack progress" measure (higher = better for attacker).

        Used by the norm-unbounded attack to detect plateaus: degradation uses
        ``1 - accuracy`` over the attacked points, hiding uses the PSR.
        """
        prediction = np.asarray(prediction)
        target_mask = np.asarray(target_mask, dtype=bool)
        if self.config.objective is AttackObjective.PERFORMANCE_DEGRADATION:
            return 1.0 - accuracy_score(prediction[target_mask],
                                        np.asarray(labels)[target_mask])
        return point_success_rate(prediction, target_labels, target_mask)


__all__ = ["ConvergenceCheck"]
