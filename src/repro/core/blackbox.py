"""Black-box attack engines: query-budgeted, gradient-free PCSS attacks.

The white-box engines of the paper assume full gradient access.  This module
adds the score-based and decision-based threat models behind the very same
``_build_engine`` dispatch:

* :class:`NESAttack` — natural-evolution-strategies gradient estimation
  (Ilyas et al. style): antithetic Gaussian probes around the current cloud,
  loss differences weighted back onto the directions, then the same
  ε-projected sign step as the norm-bounded white-box attack.
* :class:`SPSAAttack` — simultaneous-perturbation stochastic approximation:
  Rademacher (±1) probe directions and the classic two-query SPSA estimator,
  averaged over ``samples_per_step`` draws.
* :class:`BoundaryAttack` — decision-based boundary walk: only the predicted
  labels are observed.  The attack hunts for an adversarial random start
  inside the valid value box, then repeatedly contracts toward the original
  cloud with orthogonal exploration noise, accepting only proposals that stay
  adversarial (the attacker's own ``Converge(·)`` criterion).

All three engines are built as *per-scene state machines driven by stacked
forward passes*: a serial ``run`` drives one state, ``run_batched`` drives B
states, and every model evaluation stacks the active scenes' clouds into one
``(rows, N, 3)`` forward.  Because evaluation-mode forwards are
batch-position independent (the PR-3 invariant) and every per-scene decision
consumes only that scene's RNG stream and loss values, serial and batched
runs are bit-for-bit identical by construction — the engine-contract suite
asserts exactly that.

Query accounting: every cloud the victim model evaluates for the attacker
costs one query from ``config.query_budget``.  A NES/SPSA step spends one
query on the convergence check plus ``2 * samples_per_step`` on antithetic
probes; a boundary step spends one query per proposal.  The clean prediction
and the final report evaluation are bookkeeping, not attacker queries.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accel import attack_compute
from ..models.base import SegmentationModel
from ..nn import Tensor, plan_cache
from ..telemetry import get_tracer
from .config import AttackConfig, AttackMode, AttackObjective, AttackResult
from .convergence import ConvergenceCheck
from .eot import build_eot
from .evaluation import build_result
from .norm_bounded import NormBoundedAttack
from .perturbation import PerturbationSpec


def _margin_loss(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray,
                 objective: AttackObjective) -> float:
    """Eq. 10/11 hinge-margin loss of one cloud, computed in float64.

    ``labels`` is the ground truth for performance degradation and the
    attacker's target labels for object hiding.  The estimators only need
    loss *values*, so this NumPy mirror of :mod:`repro.core.objectives`
    keeps the probe arithmetic out of the autograd graph (and independent of
    how probes were packed into the forward batch).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    label_logit = np.take_along_axis(logits, labels[:, None], axis=-1)[:, 0]
    others = logits.copy()
    np.put_along_axis(others, labels[:, None], -np.inf, axis=-1)
    other_max = others.max(axis=-1)
    if objective is AttackObjective.OBJECT_HIDING:
        margin = other_max - label_logit
    else:
        margin = label_logit - other_max
    return float(np.sum(np.maximum(margin, 0.0) * mask))


class _SceneState:
    """Everything one scene carries through a black-box optimisation loop."""

    def __init__(self, config: AttackConfig, check: ConvergenceCheck,
                 coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
                 spec: PerturbationSpec, target_labels: Optional[np.ndarray],
                 rng: Optional[np.random.Generator], scene_name: str) -> None:
        self.config = config
        self.check = check
        self.coords = np.asarray(coords, dtype=np.float64)
        self.colors = np.asarray(colors, dtype=np.float64)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.spec = spec
        self.mask = np.asarray(spec.target_mask, dtype=bool)
        self.mask3 = self.mask[:, None]
        self.target_labels = (None if target_labels is None
                              else np.asarray(target_labels, dtype=np.int64))
        if (config.objective is AttackObjective.OBJECT_HIDING
                and self.target_labels is None):
            raise ValueError("object hiding requires target labels")
        self.rng = rng or np.random.default_rng(config.seed)
        self.scene_name = scene_name
        # Adaptive mode: the attacker's own sampler of the deployed defense
        # (None when static).  Every defended forward costs one query.
        self.eot = build_eot(config)

        self.fields = []
        if spec.field.perturbs_color:
            self.fields.append("color")
        if spec.field.perturbs_coordinate:
            self.fields.append("coordinate")
        self.original = {"color": self.colors, "coordinate": self.coords}
        self.boxes = {"color": spec.color_box, "coordinate": spec.coord_box}
        self.adv = {name: self.original[name].copy() for name in self.fields}

        self.queries = 0
        self.iterations = 0
        self.converged = False
        self.active = True
        self.history: List[Dict[str, float]] = []

    # -------------------------------------------------------------- #
    @property
    def loss_labels(self) -> np.ndarray:
        """Labels the adversarial loss is computed against."""
        if self.config.objective is AttackObjective.OBJECT_HIDING:
            return self.target_labels
        return self.labels

    def cloud(self, overrides: Optional[Dict[str, np.ndarray]] = None
              ) -> Tuple[np.ndarray, np.ndarray]:
        """The (coords, colors) pair for the current or a probe cloud."""
        values = {"coordinate": self.coords, "color": self.colors}
        values.update(self.adv)
        if overrides:
            values.update(overrides)
        return values["coordinate"], values["color"]

    def perturbation_l2(self, candidate: Dict[str, np.ndarray]) -> float:
        """Masked squared-L2 size of a candidate's attacked-field move."""
        total = 0.0
        for name in self.fields:
            delta = (candidate[name] - self.original[name])[self.mask]
            total += float(np.sum(delta ** 2))
        return total

    def is_adversarial(self, prediction: np.ndarray,
                       mask: Optional[np.ndarray] = None) -> bool:
        return self.check.converged(prediction, self.labels,
                                    self.target_labels,
                                    self.mask if mask is None else mask)

    def gain(self, prediction: np.ndarray,
             mask: Optional[np.ndarray] = None) -> float:
        return self.check.gain(prediction, self.labels, self.target_labels,
                               self.mask if mask is None else mask)

    def draw_eot(self, overrides: Optional[Dict[str, np.ndarray]] = None
                 ) -> List:
        """This round's defense samples (``[None]`` when static).

        Samples are drawn at the current adversarial cloud (or at the
        candidate passed via ``overrides``) from the scene's own stream —
        the standard sample-at-anchor EOT estimator, matching the white-box
        engines' treatment.
        """
        if self.eot is None:
            return [None]
        coords, colors = self.cloud(overrides)
        return self.eot.draw_all(coords, colors, self.rng)

    def defended(self, coords: np.ndarray, colors: np.ndarray, sample
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """A cloud as one defense sample sees it (identity when static)."""
        if sample is None:
            return coords, colors
        return sample.apply_arrays(coords, colors)

    def sample_mask(self, sample) -> np.ndarray:
        """The loss mask restricted to the sample's surviving points."""
        if sample is None:
            return self.mask
        return sample.restrict(self.mask)


class _BlackBoxAttack:
    """Shared driver: stacked forward evaluation over per-scene states."""

    def __init__(self, model: SegmentationModel, config: AttackConfig) -> None:
        self.model = model
        self.config = config
        self.check = ConvergenceCheck(config, model.num_classes)
        self._plans = None

    #: Rows per stacked inference forward.  Adaptive mode multiplies the
    #: probe population by ``eot_samples``, so one unbounded forward could
    #: exhaust memory at paper scale; evaluation-mode forwards are
    #: batch-position independent (the PR-3 invariant the serial/batched
    #: contract already relies on), so chunking never changes a result.
    max_eval_rows = 256

    # -------------------------------------------------------------- #
    def _evaluate(self, clouds: Sequence[Tuple[np.ndarray, np.ndarray]],
                  plan_key: Optional[tuple] = None) -> np.ndarray:
        """Policy-dtype logits ``(rows, N, C)`` for a stack of clouds.

        No tensor requires a gradient: black-box engines are pure inference,
        so the compiled plan (when ``plan_key`` names one) is forward-only —
        capture on the first stack with this key, replay thereafter.
        Engines pass a key only when the stacked composition is stable and
        the forward's neighbourhood indices cannot drift (color-only field,
        static defense); chunked oversize stacks always run eager because
        the chunk boundaries depend on the transient row count.
        """
        if len(clouds) > self.max_eval_rows:
            return np.concatenate(
                [self._evaluate(clouds[offset:offset + self.max_eval_rows])
                 for offset in range(0, len(clouds), self.max_eval_rows)])
        coords = np.stack([c for c, _ in clouds])
        colors = np.stack([c for _, c in clouds])
        program = None
        if plan_key is not None and self._plans is not None:
            program = self._plans.program(
                plan_key + (coords.shape,),
                lambda: {"coords": Tensor(coords), "colors": Tensor(colors)})
            program.feed(coords=coords, colors=colors)
            replayed = program.replay()
            if replayed is not None:
                return replayed["logits"]
        with (program.capture() if program is not None else nullcontext(False)):
            if program is not None:
                logits = self.model(program.tensor("coords"),
                                    program.tensor("colors"))
            else:
                logits = self.model(Tensor(coords), Tensor(colors))
        if program is not None:
            program.finalize({"logits": logits}, root=None)
        return np.asarray(logits.data)

    def _replayable(self, states: Sequence[_SceneState]) -> bool:
        """Whether stacked forwards may be compiled for these scenes.

        Replay bakes the capture step's neighbourhood gather indices into
        the plan, so it is only sound when coordinates never move
        (color-only perturbation field) and every forward sees the raw
        cloud (static defense — adaptive EOT samples drop points and
        reshuffle the stacked rows).
        """
        state = states[0]
        return (state.eot is None
                and not state.spec.field.perturbs_coordinate)

    def _make_state(self, scene) -> _SceneState:
        return _SceneState(self.config, self.check, scene.coords, scene.colors,
                           scene.labels, scene.spec, scene.target_labels,
                           scene.rng, scene.scene_name)

    def _finish(self, state: _SceneState) -> AttackResult:
        coords, colors = state.cloud()
        return build_result(
            model=self.model, config=self.config,
            original_coords=state.coords, original_colors=state.colors,
            adversarial_coords=coords, adversarial_colors=colors,
            labels=state.labels, target_labels=state.target_labels,
            target_mask=state.mask, iterations=state.iterations,
            converged=state.converged, history=state.history,
            scene_name=state.scene_name,
        )

    # -------------------------------------------------------------- #
    def run(self, coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
            spec: PerturbationSpec, target_labels: Optional[np.ndarray] = None,
            rng: Optional[np.random.Generator] = None,
            scene_name: str = "") -> AttackResult:
        """Attack a single prepared cloud (all arrays in model space)."""
        state = _SceneState(self.config, self.check, coords, colors, labels,
                            spec, target_labels, rng, scene_name)
        self.model.eval()
        with attack_compute(self.model, self.config, neighbor_refresh=1) as cache:
            self._plans = plan_cache()
            self._drive([state], cache)
            self._plans = None
        return self._finish(state)

    def run_batched(self, scenes: Sequence) -> List[AttackResult]:
        """Attack several same-size prepared clouds through shared forwards."""
        states = [self._make_state(scene) for scene in scenes]
        self.model.eval()
        with attack_compute(self.model, self.config, neighbor_refresh=1) as cache:
            self._plans = plan_cache()
            self._drive(states, cache)
            self._plans = None
        return [self._finish(state) for state in states]

    def _drive(self, states: List[_SceneState], cache) -> None:
        raise NotImplementedError


class _FiniteDifferenceAttack(_BlackBoxAttack):
    """ε-bounded sign-step loop on a finite-difference gradient estimate.

    Subclasses only choose the probe directions and the estimator weights;
    the update is exactly the norm-bounded attack's masked sign step with
    L∞ projection onto the ε-ball and the valid value box.
    """

    def _directions(self, state: _SceneState, shape: Tuple[int, ...]) -> np.ndarray:
        raise NotImplementedError

    # -------------------------------------------------------------- #
    def _drive(self, states: List[_SceneState], cache) -> None:
        config = self.config
        tracer = get_tracer()
        # Every scene shares the configuration, so the (possibly collapsed —
        # deterministic defenses yield one sample) EOT view count is uniform.
        eot_k = states[0].eot.samples if states[0].eot is not None else 1
        pair_cost = 2 * config.samples_per_step * eot_k
        replayable = self._replayable(states)
        while True:
            # Phase 1 — convergence check on every scene's current cloud
            # (one query each).  Scenes that cannot afford the check stop.
            for state in states:
                if state.active and state.queries + 1 > config.query_budget:
                    state.active = False
            checking = [state for state in states if state.active]
            if not checking:
                break
            cache.advance()
            logits = self._evaluate(
                [state.cloud() for state in checking],
                plan_key=(("check",) + tuple(s.scene_name for s in checking)
                          if replayable else None))
            predictions = np.argmax(logits, axis=-1)
            for row, state in enumerate(checking):
                state.queries += 1
                state.iterations += 1
                loss = _margin_loss(logits[row], state.loss_labels, state.mask,
                                    config.objective)
                state.history.append({
                    "step": float(state.iterations), "loss": loss,
                    "gain": state.gain(predictions[row]),
                    "queries": float(state.queries),
                })
                if tracer.enabled:
                    tracer.emit("attack_step", engine=config.engine_name,
                                scene=state.scene_name,
                                step=state.iterations, loss=loss,
                                gain=state.history[-1]["gain"],
                                queries=state.queries,
                                pnorm=state.perturbation_l2(state.adv))
                if state.is_adversarial(predictions[row]):
                    state.converged = True
                    state.active = False
                    if tracer.enabled:
                        tracer.emit("attack_converged",
                                    engine=config.engine_name,
                                    scene=state.scene_name,
                                    step=state.iterations)
                elif state.queries + pair_cost > config.query_budget:
                    state.active = False       # cannot afford a probe round

            probing = [state for state in states if state.active]
            if not probing:
                continue

            # Phase 2 — antithetic probes, one stacked forward for all
            # scenes.  Directions (and, in adaptive mode, this step's
            # defense samples — drawn first, shared by every direction of
            # the step) come from each scene's own stream in a fixed order,
            # so the draw sequence matches a serial run.  Each probe is
            # evaluated through every defense sample; the ± losses are the
            # per-sample means, and every defended forward costs one query.
            probes: List[Tuple[np.ndarray, np.ndarray]] = []
            directions: List[List[Dict[str, np.ndarray]]] = []
            eot_by_scene: List[List] = []
            for state in probing:
                scene_samples = state.draw_eot()
                eot_by_scene.append(scene_samples)
                scene_directions = []
                for _ in range(config.samples_per_step):
                    direction = {
                        name: self._directions(state, state.adv[name].shape)
                        * state.mask3
                        for name in state.fields
                    }
                    scene_directions.append(direction)
                    for sign in (1.0, -1.0):
                        probe = {
                            name: state.adv[name]
                            + sign * config.fd_sigma * direction[name]
                            for name in state.fields
                        }
                        probe_coords, probe_colors = state.cloud(probe)
                        for sample in scene_samples:
                            probes.append(state.defended(probe_coords,
                                                         probe_colors, sample))
                directions.append(scene_directions)
            logits = self._evaluate(
                probes,
                plan_key=(("probes",) + tuple(s.scene_name for s in probing)
                          if replayable else None))

            row = 0
            for state, scene_directions, scene_samples in zip(
                    probing, directions, eot_by_scene):
                estimate = {name: np.zeros_like(state.adv[name])
                            for name in state.fields}
                samples_k = float(len(scene_samples))
                for direction in scene_directions:
                    loss_pair = []
                    for _sign in (1.0, -1.0):
                        total = 0.0
                        for sample in scene_samples:
                            total += _margin_loss(logits[row],
                                                  state.loss_labels,
                                                  state.sample_mask(sample),
                                                  config.objective)
                            row += 1
                        loss_pair.append(total / samples_k)
                    weight = (loss_pair[0] - loss_pair[1]) / (2.0 * config.fd_sigma)
                    for name in state.fields:
                        estimate[name] += weight * direction[name]
                state.queries += pair_cost
                for name in state.fields:
                    updated = (state.adv[name]
                               - config.step_size * np.sign(estimate[name])
                               * state.mask3)
                    state.adv[name] = NormBoundedAttack._project(
                        updated, state.original[name], config.epsilon,
                        state.boxes[name])


class NESAttack(_FiniteDifferenceAttack):
    """NES gradient estimation: antithetic Gaussian probe directions."""

    def _directions(self, state: _SceneState, shape: Tuple[int, ...]) -> np.ndarray:
        return state.rng.standard_normal(shape)


class SPSAAttack(_FiniteDifferenceAttack):
    """SPSA: Rademacher (±1) simultaneous-perturbation directions."""

    def _directions(self, state: _SceneState, shape: Tuple[int, ...]) -> np.ndarray:
        return state.rng.integers(0, 2, size=shape).astype(np.float64) * 2.0 - 1.0


class _BoundaryScene:
    """Boundary-walk bookkeeping layered on top of a :class:`_SceneState`."""

    __slots__ = ("state", "phase", "tries", "best", "best_l2", "best_gain",
                 "best_effort", "source_step", "candidate")

    def __init__(self, state: _SceneState, source_step: float) -> None:
        self.state = state
        self.phase = "init"
        self.tries = 0
        self.best: Optional[Dict[str, np.ndarray]] = None
        self.best_l2 = np.inf
        self.best_gain = -np.inf
        self.best_effort: Optional[Dict[str, np.ndarray]] = None
        self.source_step = source_step
        self.candidate: Optional[Dict[str, np.ndarray]] = None


class BoundaryAttack(_BlackBoxAttack):
    """Decision-based boundary walk (label access only).

    The attack first hunts for an adversarial starting point — the attacked
    field redrawn uniformly inside its valid box — then walks toward the
    original cloud: every proposal contracts the perturbation by
    ``boundary_source_step`` after adding orthogonal exploration noise
    scaled by ``boundary_noise_step`` times the current perturbation norm.
    Proposals that keep the cloud adversarial (the ``Converge(·)`` criterion
    itself) are accepted and the contraction step grows; rejections shrink
    it.  The reported cloud is the smallest-L2 adversarial candidate seen;
    if no adversarial start was found within ``boundary_init_tries``, the
    highest-gain candidate is reported with ``converged = False``.
    """

    def _propose(self, walk: _BoundaryScene) -> Dict[str, np.ndarray]:
        state = walk.state
        candidate: Dict[str, np.ndarray] = {}
        if walk.phase == "init":
            for name in state.fields:
                low, high = state.boxes[name]
                drawn = state.rng.uniform(low, high,
                                          size=state.original[name].shape)
                candidate[name] = np.where(state.mask3, drawn,
                                           state.original[name])
            return candidate
        for name in state.fields:
            delta = walk.state.adv[name] - state.original[name]
            noise = state.rng.standard_normal(delta.shape) * state.mask3
            delta_norm = float(np.sqrt(np.sum(delta ** 2)))
            noise_norm = float(np.sqrt(np.sum(noise ** 2)))
            if noise_norm > 0.0:
                noise *= (self.config.boundary_noise_step * delta_norm
                          / noise_norm)
            contracted = (delta + noise) * (1.0 - walk.source_step)
            candidate[name] = np.clip(state.original[name] + contracted,
                                      *state.boxes[name])
        return candidate

    def _decide(self, walk: _BoundaryScene, predictions: np.ndarray,
                samples: List) -> None:
        """Judge one proposal from its defended view(s).

        Static mode sees one raw view.  Adaptive mode sees ``eot_samples``
        defended views (each a paid query): the proposal counts as
        adversarial when a strict majority of views satisfies the
        criterion, and the recorded gain is the mean over views.
        """
        config = self.config
        state = walk.state
        candidate = walk.candidate
        views = len(samples)
        state.queries += views
        state.iterations += 1
        votes = 0
        informative = 0
        gain_total = 0.0
        for prediction, sample in zip(predictions, samples):
            mask = state.sample_mask(sample)
            if not mask.any():
                # The defense sample dropped every attacked point: the view
                # carries no information about them.  It must NOT vote
                # "adversarial" (the empty-slice accuracy of 0.0 would
                # trivially satisfy Converge(·) and score gain 1.0 — the
                # same empty-equals-success degeneracy the defended
                # evaluation semantics rule out).
                continue
            informative += 1
            if state.is_adversarial(prediction, mask=mask):
                votes += 1
            gain_total += state.gain(prediction, mask=mask)
        # Acceptance demands a strict majority of ALL views (uninformative
        # views never endorse), but the gain averages over the informative
        # ones only — dividing by the full view count would rank proposals
        # by how many surviving views they drew, not by attack progress.
        adversarial = 2 * votes > views
        gain = gain_total / float(informative) if informative else 0.0
        candidate_l2 = state.perturbation_l2(candidate)
        state.history.append({
            "step": float(state.iterations), "loss": candidate_l2,
            "gain": gain, "queries": float(state.queries),
        })
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("attack_step", engine=config.engine_name,
                        scene=state.scene_name, step=state.iterations,
                        loss=candidate_l2, gain=gain, queries=state.queries,
                        pnorm=candidate_l2)
        if gain > walk.best_gain:
            walk.best_gain = gain
            walk.best_effort = candidate
        if walk.phase == "init":
            walk.tries += 1
            if adversarial:
                state.adv = {name: value.copy()
                             for name, value in candidate.items()}
                walk.best, walk.best_l2 = candidate, candidate_l2
                state.converged = True
                walk.phase = "walk"
                if tracer.enabled:
                    tracer.emit("attack_converged",
                                engine=config.engine_name,
                                scene=state.scene_name,
                                step=state.iterations)
            elif walk.tries >= config.boundary_init_tries:
                state.active = False           # give up: report best effort
        else:
            if adversarial:
                state.adv = {name: value.copy()
                             for name, value in candidate.items()}
                if candidate_l2 < walk.best_l2:
                    walk.best, walk.best_l2 = candidate, candidate_l2
                walk.source_step = min(walk.source_step * 1.5, 0.9)
            else:
                walk.source_step = max(walk.source_step * 0.7, 1e-3)
        # Budget enforcement lives in _drive's affordability gate, which
        # re-checks every walk before the next proposal.
        walk.candidate = None

    def _drive(self, states: List[_SceneState], cache) -> None:
        walks = [_BoundaryScene(state, self.config.boundary_source_step)
                 for state in states]
        views = states[0].eot.samples if states[0].eot is not None else 1
        replayable = self._replayable(states)
        while True:
            # Affordability gate: a proposal costs one query per defended
            # view, and a walk that cannot pay for a full proposal stops
            # *before* proposing — recorded queries never exceed the budget
            # even when the budget is smaller than the view count.
            for walk in walks:
                if (walk.state.active
                        and walk.state.queries + views > self.config.query_budget):
                    walk.state.active = False
            pending = [walk for walk in walks if walk.state.active]
            if not pending:
                break
            cache.advance()
            # Proposals first, then (adaptive mode) the defense samples of
            # each proposal — drawn at the candidate itself, since the
            # decision is about the candidate's defended prediction.  The
            # per-scene stream order (proposal draws, then sample draws)
            # matches serial runs.
            clouds: List[Tuple[np.ndarray, np.ndarray]] = []
            samples_by_walk: List[List] = []
            for walk in pending:
                walk.candidate = self._propose(walk)
                scene_samples = walk.state.draw_eot(walk.candidate)
                samples_by_walk.append(scene_samples)
                coords, colors = walk.state.cloud(walk.candidate)
                for sample in scene_samples:
                    clouds.append(walk.state.defended(coords, colors, sample))
            logits = self._evaluate(
                clouds,
                plan_key=(("walk",) + tuple(w.state.scene_name for w in pending)
                          if replayable else None))
            predictions = np.argmax(logits, axis=-1)
            row = 0
            for walk, scene_samples in zip(pending, samples_by_walk):
                slice_width = len(scene_samples)
                self._decide(walk, predictions[row:row + slice_width],
                             scene_samples)
                row += slice_width
        for walk in walks:
            chosen = walk.best if walk.best is not None else walk.best_effort
            if chosen is not None:
                walk.state.adv = chosen


_ENGINES = {
    AttackMode.NES: NESAttack,
    AttackMode.SPSA: SPSAAttack,
    AttackMode.BOUNDARY: BoundaryAttack,
}


def build_blackbox_engine(model: SegmentationModel,
                          config: AttackConfig) -> _BlackBoxAttack:
    """The black-box engine selected by ``config.attack_mode``."""
    try:
        engine = _ENGINES[config.attack_mode]
    except KeyError:
        raise ValueError(f"{config.attack_mode!r} is not a black-box mode")
    return engine(model, config)


__all__ = [
    "BoundaryAttack",
    "NESAttack",
    "SPSAAttack",
    "build_blackbox_engine",
]
