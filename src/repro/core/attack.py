"""Attack orchestration: run any of the 8 configurations on raw scenes.

:func:`run_attack` is the main public entry point of the framework.  It
normalises a scene for the victim model, derives the target point set and
target labels from the configuration, dispatches to the configured attack
engine, and returns a fully evaluated :class:`AttackResult`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.base import PointCloudScene
from ..datasets.splits import prepare_scene
from ..models.base import SegmentationModel
from .blackbox import build_blackbox_engine
from .config import (AttackConfig, AttackMethod, AttackMode, AttackObjective,
                     AttackResult)
from .norm_bounded import NormBoundedAttack
from .norm_unbounded import NormUnboundedAttack
from .perturbation import PerturbationSpec, class_mask, full_mask
from .random_noise import RandomNoiseBaseline


def build_perturbation_spec(config: AttackConfig, labels: np.ndarray,
                            model: SegmentationModel) -> PerturbationSpec:
    """Derive the attacked point set and value boxes from the configuration."""
    labels = np.asarray(labels)
    if config.objective is AttackObjective.OBJECT_HIDING:
        if config.source_class is None:
            raise ValueError("object hiding requires source_class")
        mask = class_mask(labels, config.source_class)
        if not mask.any():
            raise ValueError(
                f"scene contains no points of source class {config.source_class}"
            )
    else:
        mask = full_mask(labels.shape[0])
    return PerturbationSpec.for_model(config.field, mask, model.spec)


def build_target_labels(config: AttackConfig, labels: np.ndarray) -> Optional[np.ndarray]:
    """Per-point target labels ``Y_T`` for the object-hiding attack."""
    if config.objective is not AttackObjective.OBJECT_HIDING:
        return None
    return np.full_like(np.asarray(labels), config.target_class)


def _build_engine(model: SegmentationModel, config: AttackConfig):
    # The random-noise baseline needs no model access, so it is the same
    # under every threat model and wins the dispatch regardless of
    # ``attack_mode`` (tables keep their baseline rows in black-box runs).
    if config.method is AttackMethod.RANDOM_NOISE:
        return RandomNoiseBaseline(model, config)
    if config.attack_mode is not AttackMode.WHITEBOX:
        return build_blackbox_engine(model, config)
    if config.method is AttackMethod.NORM_BOUNDED:
        return NormBoundedAttack(model, config)
    return NormUnboundedAttack(model, config)


def run_attack_on_arrays(model: SegmentationModel, config: AttackConfig,
                         coords: np.ndarray, colors: np.ndarray,
                         labels: np.ndarray,
                         rng: Optional[np.random.Generator] = None,
                         scene_name: str = "",
                         target_l2: Optional[float] = None) -> AttackResult:
    """Attack a cloud already normalised to the victim model's input space."""
    spec = build_perturbation_spec(config, labels, model)
    target_labels = build_target_labels(config, labels)
    engine = _build_engine(model, config)
    kwargs = {}
    if config.method is AttackMethod.RANDOM_NOISE and target_l2 is not None:
        kwargs["target_l2"] = target_l2
    return engine.run(coords, colors, labels, spec, target_labels=target_labels,
                      rng=rng, scene_name=scene_name, **kwargs)


def run_attack(model: SegmentationModel, scene: PointCloudScene,
               config: AttackConfig,
               rng: Optional[np.random.Generator] = None,
               num_points: Optional[int] = None,
               target_l2: Optional[float] = None) -> AttackResult:
    """Attack a raw scene with the victim model's own pre-processing.

    Parameters
    ----------
    model:
        The victim segmentation model (white-box access).
    scene:
        Raw scene (metric coordinates, 0–255 colours).
    config:
        One of the framework's attack configurations.
    num_points:
        Optional resize of the cloud (RandLA-Net style duplication/selection).
    target_l2:
        For the random-noise baseline: the L2 budget to match.
    """
    rng = rng or np.random.default_rng(config.seed)
    prepared = prepare_scene(scene, model.spec, num_points=num_points, rng=rng)
    return run_attack_on_arrays(
        model, config, prepared.coords, prepared.colors, prepared.labels,
        rng=rng, scene_name=scene.name, target_l2=target_l2,
    )


@dataclass
class PreparedScene:
    """One scene, normalised and ready for a (batched) attack engine."""

    coords: np.ndarray
    colors: np.ndarray
    labels: np.ndarray
    spec: PerturbationSpec
    target_labels: Optional[np.ndarray]
    rng: Optional[np.random.Generator]
    scene_name: str = ""

    @property
    def num_points(self) -> int:
        return int(np.asarray(self.coords).shape[0])


def _prepare_for_batch(model: SegmentationModel, scene: PointCloudScene,
                       config: AttackConfig, scene_rng: np.random.Generator,
                       num_points: Optional[int]) -> PreparedScene:
    """Mirror ``run_attack``'s pre-engine work for one scene.

    The RNG consumption order matches the serial path exactly:
    ``prepare_scene`` draws first, and the same generator object is then
    handed to the engine for its random starts / plateau restarts.
    """
    prepared = prepare_scene(scene, model.spec, num_points=num_points,
                             rng=scene_rng)
    spec = build_perturbation_spec(config, prepared.labels, model)
    target_labels = build_target_labels(config, prepared.labels)
    return PreparedScene(prepared.coords, prepared.colors, prepared.labels,
                         spec, target_labels, scene_rng, scene.name)


def run_attack_batch(model: SegmentationModel, scenes: Sequence[PointCloudScene],
                     config: AttackConfig,
                     rng: Optional[np.random.Generator] = None,
                     num_points: Optional[int] = None,
                     skip_missing_source: bool = True,
                     start_index: int = 0) -> List[AttackResult]:
    """Attack several scenes and collect the results.

    Scenes that do not contain the object-hiding source class are skipped
    when ``skip_missing_source`` is true (mirroring the paper's selection of
    clouds that contain enough points of the source class).

    Each scene gets an independent generator seeded by ``(config.seed,
    start_index + position)`` rather than a single stream threaded through
    the loop, so a scene's result depends only on its index — not on how
    many earlier scenes were skipped.  To shard one logical batch across
    workers without changing any numbers, pass each shard's global offset
    as ``start_index`` (e.g. shard ``scenes[k:]`` with ``start_index=k``).
    The ``rng`` parameter is kept for backwards compatibility but no longer
    participates in seeding.

    With ``config.batch_scenes > 1``, same-size scenes are coalesced into
    groups of up to ``batch_scenes`` and each group runs through the
    engine's batched loop — one forward/backward per step for the whole
    group.  Per-scene seeds, masks and early stopping are preserved, so the
    returned results are identical to a ``batch_scenes=1`` run, in the same
    order.  The random-noise baseline is a single model query per scene and
    always runs serially.
    """
    if rng is not None:
        warnings.warn("run_attack_batch ignores the shared `rng` argument; "
                      "per-scene seeds derive from (config.seed, scene_index)",
                      DeprecationWarning, stacklevel=2)
    batch_scenes = max(int(getattr(config, "batch_scenes", 1)), 1)
    if batch_scenes == 1 or config.method is AttackMethod.RANDOM_NOISE:
        results: List[AttackResult] = []
        for scene_index, scene in enumerate(scenes, start=start_index):
            scene_rng = np.random.default_rng([config.seed, scene_index])
            try:
                results.append(run_attack(model, scene, config, rng=scene_rng,
                                          num_points=num_points))
            except ValueError:
                if not skip_missing_source:
                    raise
        return results

    prepared: List[Tuple[int, PreparedScene]] = []
    for scene_index, scene in enumerate(scenes, start=start_index):
        scene_rng = np.random.default_rng([config.seed, scene_index])
        try:
            prepared.append((scene_index,
                             _prepare_for_batch(model, scene, config,
                                                scene_rng, num_points)))
        except ValueError:
            if not skip_missing_source:
                raise
    return _dispatch_batched(model, config, prepared, batch_scenes)


def run_attack_group(model: SegmentationModel,
                     scenes: Sequence[PointCloudScene],
                     config: AttackConfig,
                     num_points: Optional[int] = None) -> List[AttackResult]:
    """Attack each scene exactly as a bare ``run_attack`` call would.

    Unlike :func:`run_attack_batch`, every scene draws from a fresh
    generator seeded ``config.seed`` (the ``run_attack`` default), so this
    is a drop-in replacement for ``[run_attack(model, s, config) for s in
    scenes]`` — used by the defense and transferability cells — that
    coalesces same-size scenes into batched engine loops when
    ``config.batch_scenes > 1``, without changing a single number.
    """
    batch_scenes = max(int(getattr(config, "batch_scenes", 1)), 1)
    if batch_scenes == 1 or config.method is AttackMethod.RANDOM_NOISE:
        return [run_attack(model, scene, config, num_points=num_points)
                for scene in scenes]
    prepared = [
        (position,
         _prepare_for_batch(model, scene, config,
                            np.random.default_rng(config.seed), num_points))
        for position, scene in enumerate(scenes)
    ]
    return _dispatch_batched(model, config, prepared, batch_scenes)


def _dispatch_batched(model: SegmentationModel, config: AttackConfig,
                      prepared: List[Tuple[int, PreparedScene]],
                      batch_scenes: int) -> List[AttackResult]:
    """Group prepared scenes by size and run each chunk batched, in order.

    Same-size scenes share one batched loop; odd sizes fall into their own
    (possibly singleton) groups.  Results are re-emitted in scene order.
    """
    groups: Dict[int, List[Tuple[int, PreparedScene]]] = {}
    for position, item in prepared:
        groups.setdefault(item.num_points, []).append((position, item))

    engine = _build_engine(model, config)
    by_position: Dict[int, AttackResult] = {}
    for members in groups.values():
        for offset in range(0, len(members), batch_scenes):
            chunk = members[offset:offset + batch_scenes]
            outcomes = engine.run_batched([item for _, item in chunk])
            for (position, _), outcome in zip(chunk, outcomes):
                by_position[position] = outcome
    return [by_position[position] for position in sorted(by_position)]


__all__ = [
    "PreparedScene",
    "run_attack",
    "run_attack_batch",
    "run_attack_group",
    "run_attack_on_arrays",
    "build_perturbation_spec",
    "build_target_labels",
]
