"""tanh box-constraint reparameterisation (Equation 7 of the paper).

The norm-unbounded (C&W-style) attack optimises an unconstrained variable
``w`` and maps it into the valid value box ``[a, b]`` via

    value = a + (b - a) / 2 * (tanh(w) + 1)

so the optimiser never produces out-of-range colours/coordinates and the
gradient stays smooth.  The inverse map is applied once, before optimisation,
to initialise ``w`` from the original (clean) field values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..nn import Tensor


@dataclass(frozen=True)
class BoxReparam:
    """Bidirectional map between box-constrained values and free variables."""

    low: float
    high: float
    margin: float = 1e-6

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError("high must be strictly greater than low")

    # -------------------------------------------------------------- #
    def to_box(self, w: Tensor) -> Tensor:
        """Map a free tensor ``w`` into the box ``[low, high]`` (Eq. 7)."""
        half_span = (self.high - self.low) / 2.0
        return (w.tanh() + 1.0) * half_span + self.low

    def to_box_numpy(self, w: np.ndarray) -> np.ndarray:
        half_span = (self.high - self.low) / 2.0
        return (np.tanh(w) + 1.0) * half_span + self.low

    def from_box(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_box` — used to initialise ``w`` from clean data.

        Values are nudged inside the open interval by ``margin`` so that
        ``arctanh`` stays finite.
        """
        values = np.asarray(values, dtype=np.float64)
        unit = (values - self.low) / (self.high - self.low)          # [0, 1]
        unit = np.clip(unit, self.margin, 1.0 - self.margin)
        return np.arctanh(2.0 * unit - 1.0)

    # -------------------------------------------------------------- #
    @property
    def bounds(self) -> Tuple[float, float]:
        return (self.low, self.high)

    def contains(self, values: np.ndarray, atol: float = 1e-9) -> bool:
        """Whether all ``values`` lie inside the box (used for validity checks)."""
        values = np.asarray(values)
        return bool(np.all(values >= self.low - atol) and np.all(values <= self.high + atol))


__all__ = ["BoxReparam"]
