"""Norm-bounded attack (Algorithm 1) — the PGD adaptation to PCSS.

The attack iteratively adds sign-of-gradient noise to the attacked field of
the attacked points, keeps the total perturbation inside an ``ε`` box
(L∞-projected, as in PGD), and clips values to the model's valid range.
Unlike image PGD it does not use the cross-entropy loss: it optimises the
logit-margin losses of Equations 10 / 11 restricted to the attacked points,
and checks the attacker's ``Converge(·)`` criterion each step.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accel import attack_compute
from ..models.base import SegmentationModel
from ..nn import Tensor, plan_cache
from ..telemetry import get_tracer
from .config import AttackConfig, AttackObjective, AttackResult
from .convergence import ConvergenceCheck
from .eot import averaged_eot_loss, build_eot, eot_refresh, stack_samples
from .evaluation import build_result
from .minimp import MinImpactSelector
from .objectives import adversarial_loss
from .perturbation import PerturbationSpec


class NormBoundedAttack:
    """PGD-style attack with an explicit perturbation budget ``ε``."""

    def __init__(self, model: SegmentationModel, config: AttackConfig) -> None:
        self.model = model
        self.config = config
        self.check = ConvergenceCheck(config, model.num_classes)

    # ------------------------------------------------------------------ #
    def _adversarial_loss(self, logits, labels, target_labels, mask,
                          per_scene: bool = False):
        return adversarial_loss(self.config.objective, logits, labels,
                                target_labels, mask, per_scene=per_scene)

    # ------------------------------------------------------------------ #
    def run(self, coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
            spec: PerturbationSpec, target_labels: Optional[np.ndarray] = None,
            rng: Optional[np.random.Generator] = None,
            scene_name: str = "") -> AttackResult:
        """Attack a single prepared cloud (all arrays in model space)."""
        config = self.config
        rng = rng or np.random.default_rng(config.seed)
        coords = np.asarray(coords, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        mask = spec.target_mask
        mask3 = mask[:, None]

        if config.objective is AttackObjective.OBJECT_HIDING and target_labels is None:
            raise ValueError("object hiding requires target labels")

        self.model.eval()
        clean_prediction = self.model.predict_single(coords, colors)

        adv_coords = coords.copy()
        adv_colors = colors.copy()
        epsilon = config.epsilon

        # Random initialisation inside the ε-box (PGD random start).
        if spec.field.perturbs_color:
            adv_colors = adv_colors + mask3 * rng.uniform(-epsilon, epsilon,
                                                          size=colors.shape) * 0.5
            adv_colors = np.clip(adv_colors, *spec.color_box)
        if spec.field.perturbs_coordinate:
            adv_coords = adv_coords + mask3 * rng.uniform(-epsilon, epsilon,
                                                          size=coords.shape) * 0.5
            adv_coords = np.clip(adv_coords, *spec.coord_box)

        coord_selector = (MinImpactSelector(mask, config.min_impact_points,
                                            config.min_impact_floor)
                          if spec.field.perturbs_coordinate else None)

        history: List[Dict[str, float]] = []
        converged = False
        iterations = 0
        # Adaptive mode pins the neighbourhood cache to content-exact keying
        # (as the black-box engines do): the defended forwards change the
        # coordinates every step and slot staleness would depend on how
        # samples are packed into forwards.
        eot = build_eot(config)
        refresh = eot_refresh(eot)
        tracer = get_tracer()

        with attack_compute(self.model, config, neighbor_refresh=refresh) as cache:
            plans = plan_cache()
            program = None
            if (plans is not None and eot is None
                    and not spec.field.perturbs_coordinate):
                # Colour-only non-adaptive steps repeat one static graph
                # (fixed coordinates, labels and mask): capture it on the
                # first step and replay the compiled plan afterwards —
                # bit-for-bit identical to the eager path (docs/COMPILE.md).
                program = plans.program(
                    ("bounded", scene_name, adv_colors.shape),
                    lambda: {"colors": Tensor(adv_colors[None].copy(),
                                              requires_grad=True)})
            for step in range(1, config.bounded_steps + 1):
                iterations = step
                cache.advance()
                coords_t = None
                replayed = None
                if program is not None:
                    program.feed(colors=adv_colors[None])
                    replayed = program.replay()
                if replayed is not None:
                    colors_t = program.tensor("colors")
                    prediction = np.argmax(replayed["logits"][0], axis=-1)
                    loss_value = float(replayed["loss"])
                elif program is not None:
                    colors_t = program.tensor("colors")
                    colors_t.grad = None
                    with program.capture():
                        logits = self.model(Tensor(adv_coords[None]), colors_t)
                        loss = self._adversarial_loss(
                            logits, labels[None],
                            None if target_labels is None else target_labels[None],
                            mask[None])
                    program.finalize({"logits": logits, "loss": loss},
                                     root=loss)
                    loss.backward()
                    prediction = np.argmax(logits.data[0], axis=-1)
                    loss_value = loss.item()
                else:
                    coords_t = Tensor(adv_coords[None],
                                      requires_grad=spec.field.perturbs_coordinate)
                    colors_t = Tensor(adv_colors[None],
                                      requires_grad=spec.field.perturbs_color)
                    if eot is None:
                        logits = self.model(coords_t, colors_t)
                        loss = self._adversarial_loss(
                            logits, labels[None],
                            None if target_labels is None else target_labels[None],
                            mask[None])
                        prediction = np.argmax(logits.data[0], axis=-1)
                    else:
                        # Expectation over transformation: average the loss over
                        # this step's defense samples (drawn from the scene's
                        # own stream); convergence keeps judging the raw cloud.
                        loss, raw_logits = averaged_eot_loss(
                            self.model, config.objective, coords_t, colors_t,
                            eot.draw_all(adv_coords, adv_colors, rng),
                            labels[None],
                            None if target_labels is None else target_labels[None],
                            restrict=lambda sample: sample.restrict(mask)[None])
                        report = (raw_logits if raw_logits is not None
                                  else self.model(Tensor(adv_coords[None]),
                                                  Tensor(adv_colors[None])))
                        prediction = np.argmax(report.data[0], axis=-1)
                    loss.backward()
                    loss_value = loss.item()
                gain = self.check.gain(prediction, labels, target_labels, mask)
                history.append({"step": float(step), "loss": loss_value, "gain": gain})
                if tracer.enabled:
                    pnorm = float(
                        np.sum(((adv_colors - colors) * mask3) ** 2)
                        + np.sum(((adv_coords - coords) * mask3) ** 2))
                    tracer.emit("attack_step", engine=config.engine_name,
                                scene=scene_name, step=step,
                                loss=history[-1]["loss"], gain=gain,
                                pnorm=pnorm)
                if self.check.converged(prediction, labels, target_labels, mask):
                    converged = True
                    if tracer.enabled:
                        tracer.emit("attack_converged",
                                    engine=config.engine_name,
                                    scene=scene_name, step=step)
                    break

                # Sign-of-gradient step on the attacked field(s), masked to T.
                if spec.field.perturbs_color and colors_t.grad is not None:
                    gradient = colors_t.grad[0]
                    adv_colors = adv_colors - config.step_size * np.sign(gradient) * mask3
                    adv_colors = self._project(adv_colors, colors, epsilon, spec.color_box)
                if spec.field.perturbs_coordinate and coords_t.grad is not None:
                    gradient = coords_t.grad[0]
                    allowed = (coord_selector.allowed_mask() if coord_selector is not None
                               else mask)
                    adv_coords = adv_coords - config.step_size * np.sign(gradient) * allowed[:, None]
                    adv_coords = self._project(adv_coords, coords, epsilon, spec.coord_box)
                    if coord_selector is not None and coord_selector.active:
                        pruned = coord_selector.prune(gradient, adv_coords - coords)
                        if pruned.size:
                            adv_coords[pruned] = coords[pruned]   # restore pruned points

        return build_result(
            model=self.model, config=config,
            original_coords=coords, original_colors=colors,
            adversarial_coords=adv_coords, adversarial_colors=adv_colors,
            labels=labels, target_labels=target_labels, target_mask=mask,
            iterations=iterations, converged=converged, history=history,
            scene_name=scene_name, clean_prediction=clean_prediction,
        )

    # ------------------------------------------------------------------ #
    def run_batched(self, scenes: Sequence) -> List[AttackResult]:
        """Attack several same-size prepared clouds in one PGD loop.

        ``scenes`` is a sequence of prepared-scene records (see
        :class:`repro.core.attack.PreparedScene`).  One forward/backward
        serves every scene per step while the random starts, target masks,
        min-impact selectors and the ``Converge(·)`` early stop all stay
        per-scene, so each result is bit-for-bit identical to a serial
        ``run`` of that scene.  Converged scenes are frozen (their sign-step
        mask drops to zero) and the loop exits once all scenes are done.
        """
        config = self.config
        batch = len(scenes)
        coords = np.stack([np.asarray(s.coords, dtype=np.float64) for s in scenes])
        colors = np.stack([np.asarray(s.colors, dtype=np.float64) for s in scenes])
        labels = np.stack([np.asarray(s.labels, dtype=np.int64) for s in scenes])
        mask = np.stack([s.spec.target_mask for s in scenes])              # (B, N)
        mask3 = mask[:, :, None]
        rngs = [s.rng or np.random.default_rng(config.seed) for s in scenes]
        spec = scenes[0].spec
        if config.objective is AttackObjective.OBJECT_HIDING:
            if any(s.target_labels is None for s in scenes):
                raise ValueError("object hiding requires target labels")
            target_labels = np.stack([np.asarray(s.target_labels, dtype=np.int64)
                                      for s in scenes])
        else:
            target_labels = None

        self.model.eval()
        clean_predictions = [self.model.predict_single(coords[b], colors[b])
                             for b in range(batch)]

        adv_coords = coords.copy()
        adv_colors = colors.copy()
        epsilon = config.epsilon

        # Per-scene PGD random starts, drawn from each scene's own stream in
        # the same field order as the serial path.
        for b in range(batch):
            if spec.field.perturbs_color:
                adv_colors[b] = adv_colors[b] + mask3[b] * rngs[b].uniform(
                    -epsilon, epsilon, size=colors[b].shape) * 0.5
                adv_colors[b] = np.clip(adv_colors[b], *spec.color_box)
            if spec.field.perturbs_coordinate:
                adv_coords[b] = adv_coords[b] + mask3[b] * rngs[b].uniform(
                    -epsilon, epsilon, size=coords[b].shape) * 0.5
                adv_coords[b] = np.clip(adv_coords[b], *spec.coord_box)

        selectors = ([MinImpactSelector(mask[b], config.min_impact_points,
                                        config.min_impact_floor)
                      for b in range(batch)]
                     if spec.field.perturbs_coordinate else None)

        histories: List[List[Dict[str, float]]] = [[] for _ in range(batch)]
        converged = np.zeros(batch, dtype=bool)
        active = np.ones(batch, dtype=bool)
        iterations = np.zeros(batch, dtype=np.int64)
        eot = build_eot(config)
        refresh = eot_refresh(eot)
        tracer = get_tracer()

        with attack_compute(self.model, config, neighbor_refresh=refresh) as cache:
            plans = plan_cache()
            program = None
            if (plans is not None and eot is None
                    and not spec.field.perturbs_coordinate):
                # Same replay regime as the serial path; the whole batch
                # shares one plan (the batch shape is static — frozen scenes
                # keep riding along until every scene converges).
                names = tuple(s.scene_name for s in scenes)
                program = plans.program(
                    ("bounded_batch", names, adv_colors.shape),
                    lambda: {"colors": Tensor(adv_colors.copy(),
                                              requires_grad=True)})
            for step in range(1, config.bounded_steps + 1):
                if not active.any():
                    break
                iterations[active] = step
                cache.advance()
                coords_t = None
                replayed = None
                if program is not None:
                    program.feed(colors=adv_colors)
                    replayed = program.replay()
                if replayed is not None:
                    colors_t = program.tensor("colors")
                    predictions = np.argmax(replayed["logits"], axis=-1)  # (B, N)
                    loss_data = replayed["loss"]
                elif program is not None:
                    colors_t = program.tensor("colors")
                    colors_t.grad = None
                    with program.capture():
                        logits = self.model(Tensor(adv_coords), colors_t)
                        loss = self._adversarial_loss(logits, labels,
                                                      target_labels, mask,
                                                      per_scene=True)
                        total = loss.sum()
                    program.finalize({"logits": logits, "loss": loss},
                                     root=total)
                    total.backward()
                    predictions = np.argmax(logits.data, axis=-1)        # (B, N)
                    loss_data = loss.data
                elif eot is None:
                    coords_t = Tensor(adv_coords,
                                      requires_grad=spec.field.perturbs_coordinate)
                    colors_t = Tensor(adv_colors,
                                      requires_grad=spec.field.perturbs_color)
                    logits = self.model(coords_t, colors_t)
                    loss = self._adversarial_loss(logits, labels, target_labels,
                                                  mask, per_scene=True)
                    predictions = np.argmax(logits.data, axis=-1)        # (B, N)
                    loss.sum().backward()
                    loss_data = loss.data
                else:
                    coords_t = Tensor(adv_coords,
                                      requires_grad=spec.field.perturbs_coordinate)
                    colors_t = Tensor(adv_colors,
                                      requires_grad=spec.field.perturbs_color)
                    # Per-scene defense samples drawn from each scene's own
                    # stream in serial order, stacked into one defended
                    # forward per EOT sample.
                    step_samples = [eot.draw_all(adv_coords[b], adv_colors[b],
                                                 rngs[b])
                                    for b in range(batch)]
                    loss, raw_logits = averaged_eot_loss(
                        self.model, config.objective, coords_t, colors_t,
                        [stack_samples([step_samples[b][k]
                                        for b in range(batch)])
                         for k in range(eot.samples)],
                        labels, target_labels,
                        restrict=lambda stacked: stacked.restrict(mask),
                        per_scene=True)
                    report = (raw_logits if raw_logits is not None
                              else self.model(Tensor(adv_coords),
                                              Tensor(adv_colors)))
                    predictions = np.argmax(report.data, axis=-1)        # (B, N)
                    loss.sum().backward()
                    loss_data = loss.data

                loss_vals = np.asarray(loss_data, dtype=np.float64)
                for b in range(batch):
                    if not active[b]:
                        continue
                    scene_targets = (None if target_labels is None
                                     else target_labels[b])
                    gain = self.check.gain(predictions[b], labels[b],
                                           scene_targets, mask[b])
                    histories[b].append({"step": float(step),
                                         "loss": float(loss_vals[b]),
                                         "gain": gain})
                    if tracer.enabled:
                        pnorm = float(
                            np.sum(((adv_colors[b] - colors[b]) * mask3[b]) ** 2)
                            + np.sum(((adv_coords[b] - coords[b]) * mask3[b]) ** 2))
                        tracer.emit("attack_step", engine=config.engine_name,
                                    scene=scenes[b].scene_name, step=step,
                                    loss=float(loss_vals[b]), gain=gain,
                                    pnorm=pnorm)
                    if self.check.converged(predictions[b], labels[b],
                                            scene_targets, mask[b]):
                        converged[b] = True
                        active[b] = False
                        if tracer.enabled:
                            tracer.emit("attack_converged",
                                        engine=config.engine_name,
                                        scene=scenes[b].scene_name, step=step)
                if not active.any():
                    break

                # Sign-of-gradient step, masked to each scene's attacked
                # set.  Frozen scenes keep their previous arrays untouched:
                # re-projecting an already projected cloud is not bitwise
                # idempotent (``orig + clip(adv - orig)`` re-rounds), so the
                # update is computed for the whole batch and merged back only
                # into the active rows.
                keep3 = active[:, None, None]
                if spec.field.perturbs_color and colors_t.grad is not None:
                    gradient = colors_t.grad
                    updated = adv_colors - config.step_size * np.sign(gradient) * mask3
                    updated = self._project(updated, colors, epsilon,
                                            spec.color_box)
                    adv_colors = np.where(keep3, updated, adv_colors)
                if spec.field.perturbs_coordinate and coords_t.grad is not None:
                    gradient = coords_t.grad
                    allowed = (np.stack([sel.allowed_mask() for sel in selectors])
                               if selectors is not None else mask)
                    updated = (adv_coords
                               - config.step_size * np.sign(gradient) * allowed[:, :, None])
                    updated = self._project(updated, coords, epsilon,
                                            spec.coord_box)
                    adv_coords = np.where(keep3, updated, adv_coords)
                    if selectors is not None:
                        for b, selector in enumerate(selectors):
                            if not active[b] or not selector.active:
                                continue
                            pruned = selector.prune(gradient[b],
                                                    adv_coords[b] - coords[b])
                            if pruned.size:
                                adv_coords[b][pruned] = coords[b][pruned]

        return [
            build_result(
                model=self.model, config=config,
                original_coords=coords[b], original_colors=colors[b],
                adversarial_coords=adv_coords[b], adversarial_colors=adv_colors[b],
                labels=labels[b],
                target_labels=None if target_labels is None else target_labels[b],
                target_mask=mask[b],
                iterations=int(iterations[b]), converged=bool(converged[b]),
                history=histories[b], scene_name=scenes[b].scene_name,
                clean_prediction=clean_predictions[b],
            )
            for b in range(batch)
        ]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _project(adversarial: np.ndarray, original: np.ndarray,
                 epsilon: float, box: tuple) -> np.ndarray:
        """Project onto the ε-ball around the original and the valid box."""
        delta = np.clip(adversarial - original, -epsilon, epsilon)
        return np.clip(original + delta, box[0], box[1])


__all__ = ["NormBoundedAttack"]
