"""Norm-bounded attack (Algorithm 1) — the PGD adaptation to PCSS.

The attack iteratively adds sign-of-gradient noise to the attacked field of
the attacked points, keeps the total perturbation inside an ``ε`` box
(L∞-projected, as in PGD), and clips values to the model's valid range.
Unlike image PGD it does not use the cross-entropy loss: it optimises the
logit-margin losses of Equations 10 / 11 restricted to the attacked points,
and checks the attacker's ``Converge(·)`` criterion each step.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..accel import attack_compute
from ..models.base import SegmentationModel
from ..nn import Tensor
from .config import AttackConfig, AttackObjective, AttackResult
from .convergence import ConvergenceCheck
from .evaluation import build_result
from .minimp import MinImpactSelector
from .objectives import object_hiding_loss, performance_degradation_loss
from .perturbation import PerturbationSpec


class NormBoundedAttack:
    """PGD-style attack with an explicit perturbation budget ``ε``."""

    def __init__(self, model: SegmentationModel, config: AttackConfig) -> None:
        self.model = model
        self.config = config
        self.check = ConvergenceCheck(config, model.num_classes)

    # ------------------------------------------------------------------ #
    def run(self, coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
            spec: PerturbationSpec, target_labels: Optional[np.ndarray] = None,
            rng: Optional[np.random.Generator] = None,
            scene_name: str = "") -> AttackResult:
        """Attack a single prepared cloud (all arrays in model space)."""
        config = self.config
        rng = rng or np.random.default_rng(config.seed)
        coords = np.asarray(coords, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        mask = spec.target_mask
        mask3 = mask[:, None]

        if config.objective is AttackObjective.OBJECT_HIDING and target_labels is None:
            raise ValueError("object hiding requires target labels")

        self.model.eval()
        clean_prediction = self.model.predict_single(coords, colors)

        adv_coords = coords.copy()
        adv_colors = colors.copy()
        epsilon = config.epsilon

        # Random initialisation inside the ε-box (PGD random start).
        if spec.field.perturbs_color:
            adv_colors = adv_colors + mask3 * rng.uniform(-epsilon, epsilon,
                                                          size=colors.shape) * 0.5
            adv_colors = np.clip(adv_colors, *spec.color_box)
        if spec.field.perturbs_coordinate:
            adv_coords = adv_coords + mask3 * rng.uniform(-epsilon, epsilon,
                                                          size=coords.shape) * 0.5
            adv_coords = np.clip(adv_coords, *spec.coord_box)

        coord_selector = (MinImpactSelector(mask, config.min_impact_points,
                                            config.min_impact_floor)
                          if spec.field.perturbs_coordinate else None)

        history: List[Dict[str, float]] = []
        converged = False
        iterations = 0

        with attack_compute(self.model, config) as cache:
            for step in range(1, config.bounded_steps + 1):
                iterations = step
                cache.advance()
                coords_t = Tensor(adv_coords[None],
                                  requires_grad=spec.field.perturbs_coordinate)
                colors_t = Tensor(adv_colors[None],
                                  requires_grad=spec.field.perturbs_color)
                logits = self.model(coords_t, colors_t)

                if config.objective is AttackObjective.OBJECT_HIDING:
                    loss = object_hiding_loss(logits, target_labels[None], mask[None])
                else:
                    loss = performance_degradation_loss(logits, labels[None], mask[None])
                loss.backward()

                prediction = np.argmax(logits.data[0], axis=-1)
                gain = self.check.gain(prediction, labels, target_labels, mask)
                history.append({"step": float(step), "loss": loss.item(), "gain": gain})
                if self.check.converged(prediction, labels, target_labels, mask):
                    converged = True
                    break

                # Sign-of-gradient step on the attacked field(s), masked to T.
                if spec.field.perturbs_color and colors_t.grad is not None:
                    gradient = colors_t.grad[0]
                    adv_colors = adv_colors - config.step_size * np.sign(gradient) * mask3
                    adv_colors = self._project(adv_colors, colors, epsilon, spec.color_box)
                if spec.field.perturbs_coordinate and coords_t.grad is not None:
                    gradient = coords_t.grad[0]
                    allowed = (coord_selector.allowed_mask() if coord_selector is not None
                               else mask)
                    adv_coords = adv_coords - config.step_size * np.sign(gradient) * allowed[:, None]
                    adv_coords = self._project(adv_coords, coords, epsilon, spec.coord_box)
                    if coord_selector is not None and coord_selector.active:
                        pruned = coord_selector.prune(gradient, adv_coords - coords)
                        if pruned.size:
                            adv_coords[pruned] = coords[pruned]   # restore pruned points

        return build_result(
            model=self.model, config=config,
            original_coords=coords, original_colors=colors,
            adversarial_coords=adv_coords, adversarial_colors=adv_colors,
            labels=labels, target_labels=target_labels, target_mask=mask,
            iterations=iterations, converged=converged, history=history,
            scene_name=scene_name, clean_prediction=clean_prediction,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _project(adversarial: np.ndarray, original: np.ndarray,
                 epsilon: float, box: tuple) -> np.ndarray:
        """Project onto the ε-ball around the original and the valid box."""
        delta = np.clip(adversarial - original, -epsilon, epsilon)
        return np.clip(original + delta, box[0], box[1])


__all__ = ["NormBoundedAttack"]
