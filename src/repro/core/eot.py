"""Expectation-over-transformation (EOT) support for defense-aware attacks.

An adaptive attacker (``AttackConfig.adaptive``) knows the deployed defense
and optimises *through* it: every optimisation step draws ``eot_samples``
stochastic samples of the defense and averages the adversarial loss over
them.  This module turns a defense registry name into a
:class:`DefenseSampler` and applies its canonical
:class:`~repro.defenses.base.EOTSample` draws inside the autograd graph:

* affine coordinate maps (random rotation) become a ``matmul`` the gradient
  flows through exactly;
* additive offsets (Gaussian jitter, and voxel quantization's
  straight-through snap, whose offset is recomputed from the current cloud
  so the values quantize while the gradient passes unchanged) become adds;
* removal defenses (SRS, SOR) contribute a keep mask restricting the
  adversarial loss to the points that would survive — the point count stays
  fixed, which is what keeps serial and ``batch_scenes`` runs structurally
  identical.

Batched engines stack per-scene samples (drawn from each scene's own RNG
stream, in the same order as a serial run) into one batched sample, so the
defended forward stays a single stacked call and every scene's gradients are
bit-for-bit equal to its serial counterpart.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..defenses.base import EOTSample
from ..defenses.registry import build_defense
from ..nn import Tensor
from .config import AttackConfig
from .objectives import adversarial_loss


class DefenseSampler:
    """The adaptive attacker's handle on the configured defense."""

    def __init__(self, config: AttackConfig) -> None:
        if config.defense is None:
            raise ValueError("adaptive attacks require a defense name")
        self.defense = build_defense(config.defense, **dict(config.defense_kwargs))
        # A deterministic defense yields bit-identical samples, so averaging
        # K of them buys nothing: one sample gives the same gradient for a
        # K-th of the forwards — and, in black-box mode, of the *paid*
        # queries.  Only stochastic defenses use the full sample count.
        self.samples = (int(config.eot_samples) if self.defense.stochastic
                        else 1)

    def draw(self, coords: np.ndarray, colors: np.ndarray,
             rng: np.random.Generator) -> EOTSample:
        """One defense sample for the current adversarial cloud."""
        return self.defense.sample_eot(coords, colors, rng)

    def draw_all(self, coords: np.ndarray, colors: np.ndarray,
                 rng: np.random.Generator) -> List[EOTSample]:
        """This step's ``eot_samples`` draws, in stream order."""
        return [self.draw(coords, colors, rng) for _ in range(self.samples)]


def build_eot(config: AttackConfig) -> Optional[DefenseSampler]:
    """The sampler of an adaptive configuration, or ``None`` when static."""
    if not config.adaptive:
        return None
    return DefenseSampler(config)


def eot_refresh(eot: Optional[DefenseSampler]) -> Optional[int]:
    """The ``attack_compute`` neighbourhood-refresh override for ``eot``.

    Adaptive mode pins the cache to content-exact keying (as the black-box
    engines do): defended forwards move the coordinates every step and slot
    staleness would depend on how samples are packed into forwards.
    """
    return 1 if eot is not None else None


def stack_samples(samples: Sequence[EOTSample]) -> EOTSample:
    """Stack per-scene samples into one batched sample.

    All scenes of a cell run the same defense configuration, so each part
    is present for every scene or for none — mixing would force identity
    padding, whose extra float ops would break serial/batched bit-equality.
    """
    def _stack(parts):
        present = [part is not None for part in parts]
        if not any(present):
            return None
        if not all(present):
            raise ValueError("EOT samples of one batch must be homogeneous")
        return np.stack(parts)

    return EOTSample(
        coord_matrix=_stack([s.coord_matrix for s in samples]),
        coord_offset=_stack([s.coord_offset for s in samples]),
        color_offset=_stack([s.color_offset for s in samples]),
        keep_mask=_stack([s.keep_mask for s in samples]),
    )


def averaged_eot_loss(model, objective, coords_t: Tensor, colors_t: Tensor,
                      samples: Sequence[EOTSample], labels, target_labels,
                      restrict, wrap=None, per_scene: bool = False):
    """Mean adversarial loss over one step's defense samples, in-graph.

    The single implementation behind every white-box engine's EOT step
    (bounded and unbounded, serial and batched):

    * ``restrict(sample)`` shapes the loss mask of one sample (the call
      site adds its batch axis);
    * ``wrap`` is the call site's pass-through view added between the
      defended tensors and the model (``expand_dims`` serially, an identity
      ``reshape`` in batched unbounded mode) — applied *after* the sample
      transform, so serial and batched graphs stay isomorphic;
    * tensor-neutral samples (keep-mask-only, e.g. SRS draws) share one
      forward: the loss is linear in the mask, so K identical forwards
      would waste (K-1)/K of the step's compute for the same gradients.

    Returns ``(loss, raw_logits)``: ``raw_logits`` is the shared raw-cloud
    forward when one was run (keep-mask-only samples) so the engine can
    reuse it for its convergence prediction instead of paying a second,
    value-identical forward; ``None`` otherwise.
    """
    wrap = wrap if wrap is not None else (lambda tensor: tensor)
    loss = None
    shared_logits = None
    for sample in samples:
        def_coords, def_colors = apply_sample_tensors(sample, coords_t,
                                                      colors_t)
        if def_coords is coords_t and def_colors is colors_t:
            if shared_logits is None:
                shared_logits = model(wrap(coords_t), wrap(colors_t))
            logits = shared_logits
        else:
            logits = model(wrap(def_coords), wrap(def_colors))
        term = adversarial_loss(objective, logits, labels, target_labels,
                                restrict(sample), per_scene=per_scene)
        loss = term if loss is None else loss + term
    return loss * (1.0 / len(samples)), shared_logits


def apply_sample_tensors(sample: EOTSample, coords_t: Tensor, colors_t: Tensor
                         ) -> Tuple[Tensor, Tensor]:
    """Apply one (possibly batched) sample inside the autograd graph.

    Constants are cast to the tensors' dtype so a float32 compute policy is
    not silently promoted to float64 by float64 sample parameters.
    """
    if sample.coord_matrix is not None:
        matrix = np.asarray(sample.coord_matrix, dtype=coords_t.data.dtype)
        coords_t = coords_t @ Tensor(matrix)
    if sample.coord_offset is not None:
        offset = np.asarray(sample.coord_offset, dtype=coords_t.data.dtype)
        coords_t = coords_t + Tensor(offset)
    if sample.color_offset is not None:
        offset = np.asarray(sample.color_offset, dtype=colors_t.data.dtype)
        colors_t = colors_t + Tensor(offset)
    return coords_t, colors_t


__all__ = ["DefenseSampler", "apply_sample_tensors", "averaged_eot_loss",
           "build_eot", "eot_refresh", "stack_samples"]
