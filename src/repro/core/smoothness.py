"""Smoothness penalty S(X') (Equation 9 of the paper).

The penalty encourages the perturbed cloud to stay locally smooth: for every
point (not only attacked points), the distances to its ``alpha`` nearest
neighbours are minimised.  Neighbour indices are computed on the *current*
perturbed cloud outside the autograd graph; the distances themselves are
differentiable so the optimiser receives a gradient pulling neighbouring
points (in the attacked field) together.
"""

from __future__ import annotations

import numpy as np

from ..accel import neighborhoods
from ..geometry.knn import knn_indices
from ..nn import Tensor, as_tensor, concatenate, gather_points


def smoothness_penalty(coords: Tensor, colors: Tensor, alpha: int = 10,
                       neighbor_source: np.ndarray | None = None,
                       per_scene: bool = False) -> Tensor:
    """Differentiable smoothness penalty over a batch of clouds.

    Parameters
    ----------
    coords:
        ``(B, N, 3)`` perturbed coordinates (model space).
    colors:
        ``(B, N, 3)`` perturbed colours (model space).
    alpha:
        Number of nearest neighbours per point (``α`` in Eq. 9, default 10).
    neighbor_source:
        Optional ``(B, N, 3)`` array used to *find* the neighbours (defaults
        to the current coordinates).  Passing the clean coordinates keeps the
        neighbourhood structure fixed across attack iterations.
    per_scene:
        When true, return one penalty per batch item (shape ``(B,)``)
        instead of a batch-wide scalar — the batched attack engines need
        per-scene values for their plateau/history bookkeeping.
    """
    coords = as_tensor(coords)
    colors = as_tensor(colors)
    if coords.ndim != 3 or colors.ndim != 3:
        raise ValueError("coords and colors must have shape (B, N, 3)")
    batch, num_points, _ = coords.shape
    alpha = min(alpha, num_points - 1)
    if alpha < 1:
        return Tensor(np.zeros(batch if per_scene else ()))

    source = coords.data if neighbor_source is None else np.asarray(neighbor_source)
    # Fixed neighbour sources (e.g. the clean cloud) hit the cache exactly on
    # every attack step; moving sources fall under the staleness policy.
    neighbor_idx = neighborhoods().knn_batch(source, alpha, include_self=False,
                                             slot=("smoothness", alpha))

    features = concatenate([coords, colors], axis=-1)          # (B, N, 6)
    neighbours = gather_points(features, neighbor_idx)         # (B, N, alpha, 6)
    center = features.expand_dims(2)
    diff = neighbours - center
    distances = ((diff * diff).sum(axis=-1) + 1e-12).sqrt()
    if per_scene:
        return distances.sum(axis=(1, 2))
    return distances.sum()


def smoothness_penalty_numpy(coords: np.ndarray, colors: np.ndarray,
                             alpha: int = 10) -> float:
    """NumPy evaluation of Eq. 9 (used for reporting and tests)."""
    coords = np.asarray(coords, dtype=np.float64)
    colors = np.asarray(colors, dtype=np.float64)
    if coords.ndim == 2:
        coords = coords[None]
        colors = colors[None]
    batch, num_points, _ = coords.shape
    alpha = min(alpha, num_points - 1)
    if alpha < 1:
        return 0.0
    total = 0.0
    features = np.concatenate([coords, colors], axis=-1)
    for b in range(batch):
        idx = knn_indices(coords[b], alpha, include_self=False)
        diff = features[b][idx] - features[b][:, None, :]
        total += float(np.sqrt((diff ** 2).sum(axis=-1) + 1e-12).sum())
    return total


__all__ = ["smoothness_penalty", "smoothness_penalty_numpy"]
