"""Random-noise baseline (Section V-C).

The paper compares its attacks against a baseline that simply adds random
noise to the colour channels with the *same L2 budget* as the real attack.
The baseline is also used on Semantic3D (Table VI).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..models.base import SegmentationModel
from .config import AttackConfig, AttackResult
from .evaluation import build_result
from .perturbation import PerturbationSpec


class RandomNoiseBaseline:
    """Adds norm-matched random noise to the attacked field."""

    def __init__(self, model: SegmentationModel, config: AttackConfig) -> None:
        self.model = model
        self.config = config

    def run(self, coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
            spec: PerturbationSpec, target_labels: Optional[np.ndarray] = None,
            rng: Optional[np.random.Generator] = None,
            scene_name: str = "",
            target_l2: Optional[float] = None) -> AttackResult:
        """Perturb one cloud with random noise.

        Parameters
        ----------
        target_l2:
            Desired squared-L2 budget (Eq. 6) over the attacked points.  When
            omitted, a budget derived from ``config.epsilon`` is used.
        """
        config = self.config
        rng = rng or np.random.default_rng(config.seed)
        coords = np.asarray(coords, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        mask = spec.target_mask
        num_targets = int(mask.sum())

        if target_l2 is None:
            # ε-sized noise on every channel of every attacked point.
            target_l2 = float(num_targets * 3 * config.epsilon ** 2)

        adv_coords = coords.copy()
        adv_colors = colors.copy()

        def _noised(values: np.ndarray, box: tuple) -> np.ndarray:
            noise = rng.normal(size=values.shape)
            noise[~mask] = 0.0
            norm = np.sqrt(np.sum(noise ** 2))
            if norm > 0:
                noise = noise * np.sqrt(target_l2) / norm
            return np.clip(values + noise, box[0], box[1])

        if spec.field.perturbs_color:
            adv_colors = _noised(adv_colors, spec.color_box)
        if spec.field.perturbs_coordinate:
            adv_coords = _noised(adv_coords, spec.coord_box)

        return build_result(
            model=self.model, config=config,
            original_coords=coords, original_colors=colors,
            adversarial_coords=adv_coords, adversarial_colors=adv_colors,
            labels=labels, target_labels=target_labels, target_mask=mask,
            iterations=1, converged=False, history=[],
            scene_name=scene_name,
        )


__all__ = ["RandomNoiseBaseline"]
