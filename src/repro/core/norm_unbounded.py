"""Norm-unbounded attack — the C&W adaptation to PCSS.

Instead of enforcing a perturbation budget, the attack minimises a weighted
sum of (a) the perturbation distance (Eq. 6 / 8), (b) the adversarial loss
(Eq. 10 / 11) and (c) the smoothness penalty (Eq. 9):

    minimise  D(R) + λ1 · L(X', ·) + λ2 · S(X')

The attacked field is re-parameterised through the tanh box map (Eq. 7) so
the optimiser — Adam with the paper's learning rate 0.01 — can move freely
without leaving the valid value range.  If the attack makes no progress for
``plateau_patience`` steps, uniform random noise is added to the optimisation
variable (the paper's restart heuristic).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accel import attack_compute, current_policy
from ..models.base import SegmentationModel
from ..nn import Adam, Tensor, plan_cache, where
from ..telemetry import get_tracer
from .config import AttackConfig, AttackObjective, AttackResult
from .convergence import ConvergenceCheck
from .distance import l2_distance
from .eot import averaged_eot_loss, build_eot, eot_refresh, stack_samples
from .evaluation import build_result
from .minimp import MinImpactSelector
from .objectives import adversarial_loss
from .perturbation import PerturbationSpec
from .reparam import BoxReparam
from .smoothness import smoothness_penalty


class NormUnboundedAttack:
    """C&W-style attack optimising perturbation size and attack success jointly."""

    def __init__(self, model: SegmentationModel, config: AttackConfig) -> None:
        self.model = model
        self.config = config
        self.check = ConvergenceCheck(config, model.num_classes)

    # ------------------------------------------------------------------ #
    def _adversarial_loss(self, logits, labels, target_labels, mask,
                          per_scene: bool = False):
        return adversarial_loss(self.config.objective, logits, labels,
                                target_labels, mask, per_scene=per_scene)

    # ------------------------------------------------------------------ #
    def run(self, coords: np.ndarray, colors: np.ndarray, labels: np.ndarray,
            spec: PerturbationSpec, target_labels: Optional[np.ndarray] = None,
            rng: Optional[np.random.Generator] = None,
            scene_name: str = "") -> AttackResult:
        """Attack a single prepared cloud (all arrays in model space)."""
        config = self.config
        rng = rng or np.random.default_rng(config.seed)
        coords = np.asarray(coords, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        mask = spec.target_mask
        mask3 = np.broadcast_to(mask[:, None], colors.shape)

        if config.objective is AttackObjective.OBJECT_HIDING and target_labels is None:
            raise ValueError("object hiding requires target labels")

        self.model.eval()
        clean_prediction = self.model.predict_single(coords, colors)

        color_reparam = BoxReparam(*spec.color_box)
        coord_reparam = BoxReparam(*spec.coord_box)

        coord_selector = (MinImpactSelector(mask, config.min_impact_points,
                                            config.min_impact_floor)
                          if spec.field.perturbs_coordinate else None)

        best_gain = -np.inf
        best_adversarial_loss = np.inf
        best_colors = colors.copy()
        best_coords = coords.copy()
        best_total_loss = np.inf
        plateau = 0
        history: List[Dict[str, float]] = []
        converged = False
        iterations = 0
        # Adaptive mode pins the neighbourhood cache to content-exact keying
        # (see the black-box engines): the defended forwards move the
        # coordinates every step and slot staleness would depend on how the
        # samples are packed into forwards.
        eot = build_eot(config)
        refresh = eot_refresh(eot)
        tracer = get_tracer()

        with attack_compute(self.model, config, neighbor_refresh=refresh) as cache:
            # Eq. 9 neighbourhoods: fixed to the clean cloud by default (the
            # structure the attacker wants to preserve — and a guaranteed
            # cache hit on every step), or recomputed from the perturbed
            # cloud with ``smoothness_neighbors="current"`` (the seed
            # behaviour).  Read from the active policy, not the config, so
            # the ``REPRO_ACCEL`` override restores full seed behaviour.
            smooth_source = (coords[None]
                             if current_policy().smoothness_neighbors == "clean"
                             else None)

            # Free optimisation variables, initialised from the clean values
            # through the inverse of Eq. 7 (created inside the compute
            # context so they carry the policy dtype, as does the Adam state).
            variables = []
            w_color = w_coord = None
            if spec.field.perturbs_color:
                w_color = Tensor(color_reparam.from_box(colors), requires_grad=True)
                variables.append(w_color)
            if spec.field.perturbs_coordinate:
                w_coord = Tensor(coord_reparam.from_box(coords), requires_grad=True)
                variables.append(w_coord)
            optimizer = Adam(variables, lr=config.learning_rate)

            # Constant tensors reused by every step's graph.
            colors_const = Tensor(colors)
            coords_const = Tensor(coords)

            plans = plan_cache()
            program = None
            if (plans is not None and eot is None and w_coord is None
                    and w_color is not None):
                # A colour-only non-adaptive objective is one static graph
                # from the free variable to the total loss (coordinates,
                # masks and Eq. 9 neighbourhoods all constant): capture it
                # once and replay the compiled plan on ``w_color``'s current
                # data — Adam and the plateau restarts mutate it in place.
                program = plans.program(
                    ("unbounded", scene_name, colors.shape),
                    lambda: {"w_color": w_color})

            for step in range(1, config.unbounded_steps + 1):
                iterations = step
                cache.advance()

                optimizer.zero_grad()
                replayed = program.replay() if program is not None else None
                if replayed is not None:
                    logits_data = replayed["logits"]
                    adv_colors_data = replayed["adv_colors"]
                    adv_coords_data = None            # w_coord is None here
                    step_distance = float(replayed["distance"])
                    adversarial_value = float(replayed["adversarial"])
                    total_value = float(replayed["total"])
                else:
                    with (program.capture() if program is not None
                          else nullcontext(False)):
                        # Current adversarial values of each field (graph
                        # tensors).
                        if w_color is not None:
                            color_values = color_reparam.to_box(w_color)
                            adv_colors_t = where(mask3, color_values, colors_const)
                        else:
                            adv_colors_t = colors_const
                        if w_coord is not None:
                            coord_values = coord_reparam.to_box(w_coord)
                            allowed = (coord_selector.allowed_mask()
                                       if coord_selector is not None else mask)
                            coord_mask3 = np.broadcast_to(allowed[:, None],
                                                          coords.shape)
                            adv_coords_t = where(coord_mask3, coord_values,
                                                 coords_const)
                        else:
                            adv_coords_t = coords_const

                        if eot is None:
                            logits = self.model(adv_coords_t.expand_dims(0),
                                                adv_colors_t.expand_dims(0))
                            adversarial = None
                        else:
                            # Expectation over transformation: the adversarial
                            # term averages over this step's defense samples
                            # (drawn from the scene's own stream on the
                            # *current* adversarial values); the distance and
                            # smoothness terms keep judging the raw cloud, and
                            # so does convergence — the reporting forward below
                            # carries no gradient.
                            adv_np = np.asarray(adv_coords_t.data)
                            col_np = np.asarray(adv_colors_t.data)
                            adversarial, raw_logits = averaged_eot_loss(
                                self.model, config.objective, adv_coords_t,
                                adv_colors_t, eot.draw_all(adv_np, col_np, rng),
                                labels[None],
                                None if target_labels is None else target_labels[None],
                                restrict=lambda sample: sample.restrict(mask)[None],
                                wrap=lambda tensor: tensor.expand_dims(0))
                            logits = (raw_logits if raw_logits is not None
                                      else self.model(Tensor(adv_np[None]),
                                                      Tensor(col_np[None])))

                        # Objective: distance + λ1 · adversarial + λ2 · smoothness.
                        distance_terms = []
                        if w_color is not None:
                            distance_terms.append(
                                l2_distance(adv_colors_t - colors_const, mask))
                        if w_coord is not None:
                            distance_terms.append(
                                l2_distance(adv_coords_t - coords_const, mask))
                        distance = distance_terms[0]
                        for term in distance_terms[1:]:
                            distance = distance + term

                        if adversarial is None:
                            adversarial = self._adversarial_loss(
                                logits, labels[None],
                                None if target_labels is None else target_labels[None],
                                mask[None])

                        smooth = smoothness_penalty(
                            adv_coords_t.expand_dims(0),
                            adv_colors_t.expand_dims(0),
                            alpha=config.smoothness_alpha,
                            neighbor_source=smooth_source)
                        total = (distance + config.lambda1 * adversarial
                                 + config.lambda2 * smooth)
                    if program is not None:
                        program.finalize(
                            {"logits": logits, "adv_colors": adv_colors_t,
                             "distance": distance, "adversarial": adversarial,
                             "total": total}, root=total)
                    total.backward()
                    logits_data = logits.data
                    adv_colors_data = (adv_colors_t.data
                                       if w_color is not None else None)
                    adv_coords_data = (adv_coords_t.data
                                       if w_coord is not None else None)
                    step_distance = float(distance.item())
                    adversarial_value = float(adversarial.item())
                    total_value = float(total.item())

                # Alternating update schedule for the "both fields" ablation: only
                # one field's variable receives a gradient in each iteration.
                if (config.alternating_fields and w_color is not None
                        and w_coord is not None):
                    if step % 2 == 1 and w_coord.grad is not None:
                        w_coord.grad = np.zeros_like(w_coord.grad)
                    elif step % 2 == 0 and w_color.grad is not None:
                        w_color.grad = np.zeros_like(w_color.grad)

                # Progress tracking on the values used for this forward pass.  The
                # "best" snapshot prefers higher attack gain first and, at equal
                # gain, a lower adversarial loss (closer to flipping more points).
                prediction = np.argmax(logits_data[0], axis=-1)
                gain = self.check.gain(prediction, labels, target_labels, mask)
                adversarial_loss = adversarial_value
                total_loss = total_value
                history.append({
                    "step": float(step), "loss": total_loss,
                    "distance": step_distance, "gain": gain,
                })
                if tracer.enabled:
                    tracer.emit("attack_step", engine=config.engine_name,
                                scene=scene_name, step=step, loss=total_loss,
                                gain=gain, pnorm=step_distance)
                improved = (gain > best_gain
                            or (gain == best_gain
                                and adversarial_loss < best_adversarial_loss))
                if improved:
                    best_gain = gain
                    best_adversarial_loss = adversarial_loss
                    # Recompose from the original float64 arrays so every
                    # point not carrying a perturbation stays a bit-exact
                    # original even under a float32 compute policy.  The
                    # coordinate snapshot uses this step's *allowed* mask:
                    # points restored by Eq. 12 pruning must not retain
                    # float32-rounding residue, which would inflate the
                    # reported L0 (Eq. 8).
                    best_colors = (np.where(mask3, adv_colors_data, colors)
                                   if w_color is not None else colors)
                    best_coords = (np.where(coord_mask3, adv_coords_data, coords)
                                   if w_coord is not None else coords)
                # The plateau counter resets whenever the optimiser still makes
                # progress on the overall objective, even if no new point flipped.
                if improved or total_loss < best_total_loss - 1e-9:
                    plateau = 0
                else:
                    plateau += 1
                best_total_loss = min(best_total_loss, total_loss)

                if self.check.converged(prediction, labels, target_labels, mask):
                    converged = True
                    if tracer.enabled:
                        tracer.emit("attack_converged",
                                    engine=config.engine_name,
                                    scene=scene_name, step=step)
                    break

                # Plateau restart: add uniform noise to the free variable (paper §IV-B).
                if plateau >= config.plateau_patience:
                    for w in variables:
                        noise = rng.uniform(0.0, 1.0, size=w.shape) * mask3
                        w.data += noise   # in place, preserving the policy dtype
                    plateau = 0

                optimizer.step()

                # Coordinate attacks: restore the least impactful points (Eq. 12).
                if (w_coord is not None and coord_selector is not None
                        and coord_selector.active and w_coord.grad is not None):
                    perturbation = coord_reparam.to_box_numpy(w_coord.data) - coords
                    pruned = coord_selector.prune(w_coord.grad, perturbation)
                    if pruned.size:
                        w_coord.data[pruned] = coord_reparam.from_box(coords[pruned])

        return build_result(
            model=self.model, config=config,
            original_coords=coords, original_colors=colors,
            adversarial_coords=best_coords, adversarial_colors=best_colors,
            labels=labels, target_labels=target_labels, target_mask=mask,
            iterations=iterations, converged=converged, history=history,
            scene_name=scene_name, clean_prediction=clean_prediction,
        )

    # ------------------------------------------------------------------ #
    def run_batched(self, scenes: Sequence) -> List[AttackResult]:
        """Attack several same-size prepared clouds in one optimisation loop.

        ``scenes`` is a sequence of prepared-scene records (see
        :class:`repro.core.attack.PreparedScene`): per-scene ``coords`` /
        ``colors`` / ``labels`` / ``spec`` / ``target_labels`` / ``rng`` /
        ``scene_name``, all clouds sharing one point count.  A single
        forward/backward serves the whole batch, but every scene keeps its
        own target mask, RNG stream, plateau counter, min-impact selector
        and early-stopping decision, so each returned :class:`AttackResult`
        is bit-for-bit identical to the one a serial ``run`` produces for
        that scene.  Scenes that converge early are frozen in place (their
        best snapshot is already taken) while the rest of the batch keeps
        optimising; the loop exits once every scene has converged.
        """
        config = self.config
        batch = len(scenes)
        coords = np.stack([np.asarray(s.coords, dtype=np.float64) for s in scenes])
        colors = np.stack([np.asarray(s.colors, dtype=np.float64) for s in scenes])
        labels = np.stack([np.asarray(s.labels, dtype=np.int64) for s in scenes])
        mask = np.stack([s.spec.target_mask for s in scenes])              # (B, N)
        mask3 = np.broadcast_to(mask[:, :, None], colors.shape)
        rngs = [s.rng or np.random.default_rng(config.seed) for s in scenes]
        spec = scenes[0].spec
        if config.objective is AttackObjective.OBJECT_HIDING:
            if any(s.target_labels is None for s in scenes):
                raise ValueError("object hiding requires target labels")
            target_labels = np.stack([np.asarray(s.target_labels, dtype=np.int64)
                                      for s in scenes])
        else:
            target_labels = None

        self.model.eval()
        # Clean predictions stay per-scene: they run under the float64
        # reporting policy and are content-memoised, exactly as in `run`.
        clean_predictions = [self.model.predict_single(coords[b], colors[b])
                             for b in range(batch)]

        color_reparam = BoxReparam(*spec.color_box)
        coord_reparam = BoxReparam(*spec.coord_box)
        selectors = ([MinImpactSelector(mask[b], config.min_impact_points,
                                        config.min_impact_floor)
                      for b in range(batch)]
                     if spec.field.perturbs_coordinate else None)

        best_gain = np.full(batch, -np.inf)
        best_adversarial_loss = np.full(batch, np.inf)
        best_total_loss = np.full(batch, np.inf)
        best_colors = colors.copy()
        best_coords = coords.copy()
        plateau = np.zeros(batch, dtype=np.int64)
        histories: List[List[Dict[str, float]]] = [[] for _ in range(batch)]
        converged = np.zeros(batch, dtype=bool)
        active = np.ones(batch, dtype=bool)
        iterations = np.zeros(batch, dtype=np.int64)
        eot = build_eot(config)
        refresh = eot_refresh(eot)
        tracer = get_tracer()

        with attack_compute(self.model, config, neighbor_refresh=refresh) as cache:
            smooth_source = (coords
                             if current_policy().smoothness_neighbors == "clean"
                             else None)

            variables = []
            w_color = w_coord = None
            if spec.field.perturbs_color:
                w_color = Tensor(color_reparam.from_box(colors), requires_grad=True)
                variables.append(w_color)
            if spec.field.perturbs_coordinate:
                w_coord = Tensor(coord_reparam.from_box(coords), requires_grad=True)
                variables.append(w_coord)
            optimizer = Adam(variables, lr=config.learning_rate)

            colors_const = Tensor(colors)
            coords_const = Tensor(coords)

            plans = plan_cache()
            program = None
            if (plans is not None and eot is None and w_coord is None
                    and w_color is not None):
                # Same replay regime as the serial path; one plan serves the
                # whole batch (frozen scenes ride along, so the shape and
                # the recorded op sequence never change).
                names = tuple(s.scene_name for s in scenes)
                program = plans.program(
                    ("unbounded_batch", names, colors.shape),
                    lambda: {"w_color": w_color})

            for step in range(1, config.unbounded_steps + 1):
                if not active.any():
                    break
                iterations[active] = step
                cache.advance()

                optimizer.zero_grad()
                replayed = program.replay() if program is not None else None
                if replayed is not None:
                    logits_data = replayed["logits"]
                    adv_colors_data = replayed["adv_colors"]
                    adv_coords_data = None            # w_coord is None here
                    distance_data = replayed["distance"]
                    adversarial_data = replayed["adversarial"]
                    total_data = replayed["total"]
                else:
                    with (program.capture() if program is not None
                          else nullcontext(False)):
                        if w_color is not None:
                            color_values = color_reparam.to_box(w_color)
                            adv_colors_t = where(mask3, color_values, colors_const)
                        else:
                            adv_colors_t = colors_const
                        if w_coord is not None:
                            coord_values = coord_reparam.to_box(w_coord)
                            allowed = (np.stack([sel.allowed_mask()
                                                 for sel in selectors])
                                       if selectors is not None else mask)
                            coord_mask3 = np.broadcast_to(allowed[:, :, None],
                                                          coords.shape)
                            adv_coords_t = where(coord_mask3, coord_values,
                                                 coords_const)
                        else:
                            adv_coords_t = coords_const

                        # The serial path hands the model and the smoothness
                        # penalty *separate* ``expand_dims`` views of the
                        # adversarial cloud, so each consumer's many gradient
                        # contributions are summed inside its own pass-through
                        # node before reaching the optimisation variable.  The
                        # identity reshapes below reproduce that exact
                        # summation tree — feeding the shared tensor directly
                        # would interleave the additions and shift the result
                        # by an ulp, breaking bit-equality with serial runs.
                        if eot is None:
                            logits = self.model(
                                adv_coords_t.reshape(adv_coords_t.shape),
                                adv_colors_t.reshape(adv_colors_t.shape))
                            adversarial = None
                        else:
                            # Per-scene defense samples, drawn in serial order
                            # from each scene's stream.  The identity reshapes
                            # stand in for the serial path's per-sample
                            # ``expand_dims`` pass-through, keeping the
                            # gradient summation tree of every scene identical
                            # to its serial run.
                            adv_np = np.asarray(adv_coords_t.data)
                            col_np = np.asarray(adv_colors_t.data)
                            step_samples = [eot.draw_all(adv_np[b], col_np[b],
                                                         rngs[b])
                                            for b in range(batch)]
                            adversarial, raw_logits = averaged_eot_loss(
                                self.model, config.objective, adv_coords_t,
                                adv_colors_t,
                                [stack_samples([step_samples[b][k]
                                                for b in range(batch)])
                                 for k in range(eot.samples)],
                                labels, target_labels,
                                restrict=lambda stacked: stacked.restrict(mask),
                                wrap=lambda tensor: tensor.reshape(tensor.shape),
                                per_scene=True)
                            logits = (raw_logits if raw_logits is not None
                                      else self.model(Tensor(adv_np),
                                                      Tensor(col_np)))

                        distance_terms = []
                        if w_color is not None:
                            distance_terms.append(
                                l2_distance(adv_colors_t - colors_const,
                                            mask, per_scene=True))
                        if w_coord is not None:
                            distance_terms.append(
                                l2_distance(adv_coords_t - coords_const,
                                            mask, per_scene=True))
                        distance = distance_terms[0]
                        for term in distance_terms[1:]:
                            distance = distance + term

                        if adversarial is None:
                            adversarial = self._adversarial_loss(
                                logits, labels, target_labels, mask,
                                per_scene=True)

                        smooth = smoothness_penalty(
                            adv_coords_t.reshape(adv_coords_t.shape),
                            adv_colors_t.reshape(adv_colors_t.shape),
                            alpha=config.smoothness_alpha,
                            neighbor_source=smooth_source,
                            per_scene=True)
                        total = (distance + config.lambda1 * adversarial
                                 + config.lambda2 * smooth)
                        # Summing the per-scene objectives routes a gradient
                        # of 1.0 into every scene's term — the same seed a
                        # serial backward starts from — while scenes stay
                        # independent end to end.
                        grand_total = total.sum()
                    if program is not None:
                        program.finalize(
                            {"logits": logits, "adv_colors": adv_colors_t,
                             "distance": distance, "adversarial": adversarial,
                             "total": total}, root=grand_total)
                    grand_total.backward()
                    logits_data = logits.data
                    adv_colors_data = (adv_colors_t.data
                                       if w_color is not None else None)
                    adv_coords_data = (adv_coords_t.data
                                       if w_coord is not None else None)
                    distance_data = distance.data
                    adversarial_data = adversarial.data
                    total_data = total.data

                if (config.alternating_fields and w_color is not None
                        and w_coord is not None):
                    if step % 2 == 1 and w_coord.grad is not None:
                        w_coord.grad = np.zeros_like(w_coord.grad)
                    elif step % 2 == 0 and w_color.grad is not None:
                        w_color.grad = np.zeros_like(w_color.grad)

                predictions = np.argmax(logits_data, axis=-1)            # (B, N)
                distance_vals = np.asarray(distance_data, dtype=np.float64)
                adversarial_vals = np.asarray(adversarial_data, dtype=np.float64)
                total_vals = np.asarray(total_data, dtype=np.float64)

                for b in range(batch):
                    if not active[b]:
                        continue
                    scene_targets = None if target_labels is None else target_labels[b]
                    gain = self.check.gain(predictions[b], labels[b],
                                           scene_targets, mask[b])
                    adversarial_loss = float(adversarial_vals[b])
                    total_loss = float(total_vals[b])
                    histories[b].append({
                        "step": float(step), "loss": total_loss,
                        "distance": float(distance_vals[b]), "gain": gain,
                    })
                    if tracer.enabled:
                        tracer.emit("attack_step", engine=config.engine_name,
                                    scene=scenes[b].scene_name, step=step,
                                    loss=total_loss, gain=gain,
                                    pnorm=float(distance_vals[b]))
                    improved = (gain > best_gain[b]
                                or (gain == best_gain[b]
                                    and adversarial_loss < best_adversarial_loss[b]))
                    if improved:
                        best_gain[b] = gain
                        best_adversarial_loss[b] = adversarial_loss
                        best_colors[b] = (np.where(mask3[b], adv_colors_data[b],
                                                   colors[b])
                                          if w_color is not None else colors[b])
                        best_coords[b] = (np.where(coord_mask3[b], adv_coords_data[b],
                                                   coords[b])
                                          if w_coord is not None else coords[b])
                    if improved or total_loss < best_total_loss[b] - 1e-9:
                        plateau[b] = 0
                    else:
                        plateau[b] += 1
                    best_total_loss[b] = min(best_total_loss[b], total_loss)

                    if self.check.converged(predictions[b], labels[b],
                                            scene_targets, mask[b]):
                        converged[b] = True
                        active[b] = False
                        if tracer.enabled:
                            tracer.emit("attack_converged",
                                        engine=config.engine_name,
                                        scene=scenes[b].scene_name, step=step)
                        continue

                    if plateau[b] >= config.plateau_patience:
                        for w in variables:
                            noise = rngs[b].uniform(0.0, 1.0,
                                                    size=w.data[b].shape) * mask3[b]
                            w.data[b] += noise
                        plateau[b] = 0

                if not active.any():
                    break

                optimizer.step()

                if (w_coord is not None and selectors is not None
                        and w_coord.grad is not None):
                    for b, selector in enumerate(selectors):
                        if not active[b] or not selector.active:
                            continue
                        perturbation = (coord_reparam.to_box_numpy(w_coord.data[b])
                                        - coords[b])
                        pruned = selector.prune(w_coord.grad[b], perturbation)
                        if pruned.size:
                            w_coord.data[b][pruned] = coord_reparam.from_box(
                                coords[b][pruned])

        return [
            build_result(
                model=self.model, config=config,
                original_coords=coords[b], original_colors=colors[b],
                adversarial_coords=best_coords[b], adversarial_colors=best_colors[b],
                labels=labels[b],
                target_labels=None if target_labels is None else target_labels[b],
                target_mask=mask[b],
                iterations=int(iterations[b]), converged=bool(converged[b]),
                history=histories[b], scene_name=scenes[b].scene_name,
                clean_prediction=clean_predictions[b],
            )
            for b in range(batch)
        ]


__all__ = ["NormUnboundedAttack"]
