"""Perturbation distance functions (Equations 6 and 8 of the paper).

* **L2** (Eq. 6) — the sum of squared per-point perturbation norms, used for
  the colour-based attacks because colour channels share a fixed value range.
* **L0** (Eq. 8) — the number of perturbed points, used for the
  coordinate-based attacks because the coordinate range differs across point
  clouds, making L2/L∞ incomparable.

Differentiable (Tensor) versions are provided for use inside the
norm-unbounded objective, plus NumPy versions for reporting.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor


def l2_distance(perturbation: Tensor, mask: np.ndarray | None = None,
                per_scene: bool = False) -> Tensor:
    """Differentiable ``sum_i ||r_i||_2^2`` over the attacked points (Eq. 6).

    With ``per_scene=True`` the sum leaves the leading batch axis intact,
    returning one distance per scene (each entry bit-identical to the scalar
    a serial run computes for that scene).
    """
    perturbation = as_tensor(perturbation)
    squared = perturbation * perturbation
    if mask is not None:
        # The policy dtype, not float64: a float64 mask would promote the
        # masked-square chain (and its backward) under float32 fast-math.
        mask = np.asarray(mask, dtype=squared.dtype)
        if mask.ndim == 1 and squared.ndim >= 2:
            # Per-point mask: align with the point axis (second to last).
            shape = (1,) * (squared.ndim - 2) + (mask.shape[0], 1)
            mask = mask.reshape(shape)
        elif mask.ndim == squared.ndim - 1:
            # Per-scene point masks (B, N): align with the channel axis.
            mask = mask[..., None]
        squared = squared * Tensor(np.broadcast_to(mask, squared.shape).copy())
    if per_scene:
        return squared.sum(axis=tuple(range(1, squared.ndim)))
    return squared.sum()


def l2_distance_numpy(perturbation: np.ndarray, mask: np.ndarray | None = None) -> float:
    """NumPy version of :func:`l2_distance` for reporting."""
    perturbation = np.asarray(perturbation, dtype=np.float64)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        perturbation = perturbation[..., mask, :] if perturbation.ndim == 3 else perturbation[mask]
    return float(np.sum(perturbation ** 2))


def l0_distance_numpy(perturbation: np.ndarray, tolerance: float = 1e-9) -> float:
    """Number of points whose perturbation is non-zero (Eq. 8).

    A point counts as perturbed when any of its channels moved by more than
    ``tolerance``.
    """
    perturbation = np.asarray(perturbation)
    changed = np.abs(perturbation) > tolerance
    if perturbation.ndim >= 2:
        changed = changed.any(axis=-1)
    return float(np.count_nonzero(changed))


def linf_distance_numpy(perturbation: np.ndarray) -> float:
    """Maximum absolute per-channel change (used by the ε-ball check)."""
    perturbation = np.asarray(perturbation)
    if perturbation.size == 0:
        return 0.0
    return float(np.max(np.abs(perturbation)))


def rms_distance_numpy(perturbation: np.ndarray) -> float:
    """Root-mean-square per-channel change (a human-readable magnitude)."""
    perturbation = np.asarray(perturbation)
    if perturbation.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(perturbation ** 2)))


__all__ = [
    "l2_distance",
    "l2_distance_numpy",
    "l0_distance_numpy",
    "linf_distance_numpy",
    "rms_distance_numpy",
]
