"""Least-impactful-point selection for coordinate attacks (Equation 12).

Coordinate-based attacks use the L0 distance (number of perturbed points).
To keep that count small, the paper iteratively *restores* the ``n`` points
whose perturbation contributes least to the attack — measured by the product
of gradient and perturbation value, ``g_n · r_n`` — and keeps only the most
impactful points perturbed.  Once fewer than a floor fraction of the points
remain eligible, pruning stops and the cloud is perturbed without
restoration.
"""

from __future__ import annotations

import numpy as np


class MinImpactSelector:
    """Tracks which points are still allowed to carry a coordinate perturbation."""

    def __init__(self, target_mask: np.ndarray, points_per_round: int,
                 floor_fraction: float = 0.10) -> None:
        self.allowed = np.asarray(target_mask, dtype=bool).copy()
        self._initial_count = int(self.allowed.sum())
        if self._initial_count == 0:
            raise ValueError("target mask selects no points")
        self.points_per_round = max(int(points_per_round), 1)
        self.floor_count = max(int(np.ceil(self._initial_count * floor_fraction)), 1)

    @property
    def active(self) -> bool:
        """Whether pruning is still running (above the floor fraction)."""
        return int(self.allowed.sum()) > self.floor_count

    def importance(self, gradient: np.ndarray, perturbation: np.ndarray) -> np.ndarray:
        """Per-point impact ``|sum_channels g · r|`` (Eq. 12)."""
        gradient = np.asarray(gradient, dtype=np.float64)
        perturbation = np.asarray(perturbation, dtype=np.float64)
        product = gradient * perturbation
        if product.ndim > 1:
            product = product.sum(axis=-1)
        return np.abs(product)

    def prune(self, gradient: np.ndarray, perturbation: np.ndarray) -> np.ndarray:
        """Remove the least impactful points from the allowed set.

        Returns the indices of the points that were pruned this round (their
        perturbation should be restored to the original value by the caller).
        """
        if not self.active:
            return np.empty(0, dtype=np.int64)
        impact = self.importance(gradient, perturbation)
        candidates = np.flatnonzero(self.allowed)
        removable = min(self.points_per_round,
                        int(self.allowed.sum()) - self.floor_count)
        if removable <= 0:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(impact[candidates])
        pruned = candidates[order[:removable]]
        self.allowed[pruned] = False
        return pruned

    def allowed_mask(self) -> np.ndarray:
        """Boolean mask of points currently allowed to be perturbed."""
        return self.allowed.copy()


__all__ = ["MinImpactSelector"]
