"""``repro.core`` — the paper's contribution: the PCSS adversarial attack framework.

The framework supports 8 attack configurations:

* objective — :class:`AttackObjective.OBJECT_HIDING` or
  :class:`AttackObjective.PERFORMANCE_DEGRADATION`;
* method — :class:`AttackMethod.NORM_BOUNDED` (PGD-adapted, Algorithm 1),
  :class:`AttackMethod.NORM_UNBOUNDED` (C&W-adapted) or the
  :class:`AttackMethod.RANDOM_NOISE` baseline;
* attacked field — :class:`AttackField.COLOR`, :class:`AttackField.COORDINATE`
  or :class:`AttackField.BOTH`.

:func:`run_attack` is the main entry point.
"""

from .attack import (
    PreparedScene,
    build_perturbation_spec,
    build_target_labels,
    run_attack,
    run_attack_batch,
    run_attack_group,
    run_attack_on_arrays,
)
from .blackbox import (
    BoundaryAttack,
    NESAttack,
    SPSAAttack,
    build_blackbox_engine,
)
from .config import (
    AttackConfig,
    AttackMethod,
    AttackMode,
    AttackObjective,
    AttackResult,
)
from .convergence import ConvergenceCheck
from .distance import (
    l0_distance_numpy,
    l2_distance,
    l2_distance_numpy,
    linf_distance_numpy,
    rms_distance_numpy,
)
from .evaluation import build_result
from .minimp import MinImpactSelector
from .norm_bounded import NormBoundedAttack
from .norm_unbounded import NormUnboundedAttack
from .objectives import object_hiding_loss, performance_degradation_loss
from .perturbation import AttackField, PerturbationSpec, class_mask, full_mask
from .random_noise import RandomNoiseBaseline
from .reparam import BoxReparam
from .smoothness import smoothness_penalty, smoothness_penalty_numpy
from .transfer import TransferOutcome, evaluate_transfer, remap_adversarial_example

__all__ = [
    "AttackConfig",
    "AttackMethod",
    "AttackObjective",
    "AttackResult",
    "AttackField",
    "PerturbationSpec",
    "PreparedScene",
    "class_mask",
    "full_mask",
    "run_attack",
    "run_attack_batch",
    "run_attack_group",
    "run_attack_on_arrays",
    "build_perturbation_spec",
    "build_target_labels",
    "AttackMode",
    "NormBoundedAttack",
    "NormUnboundedAttack",
    "RandomNoiseBaseline",
    "NESAttack",
    "SPSAAttack",
    "BoundaryAttack",
    "build_blackbox_engine",
    "ConvergenceCheck",
    "MinImpactSelector",
    "BoxReparam",
    "object_hiding_loss",
    "performance_degradation_loss",
    "smoothness_penalty",
    "smoothness_penalty_numpy",
    "l2_distance",
    "l2_distance_numpy",
    "l0_distance_numpy",
    "linf_distance_numpy",
    "rms_distance_numpy",
    "build_result",
    "evaluate_transfer",
    "remap_adversarial_example",
    "TransferOutcome",
]
