"""Shared post-attack evaluation: builds :class:`AttackResult` from raw arrays."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..metrics.attack_metrics import (
    AttackOutcome,
    out_of_band_accuracy,
    out_of_band_iou,
    point_success_rate,
)
from ..metrics.segmentation import accuracy_score, average_iou
from ..models.base import SegmentationModel
from .config import AttackConfig, AttackObjective, AttackResult
from .distance import l0_distance_numpy, l2_distance_numpy, linf_distance_numpy
from .perturbation import AttackField


def attacked_perturbation(config: AttackConfig,
                          coord_delta: np.ndarray,
                          color_delta: np.ndarray) -> np.ndarray:
    """The perturbation array of the attacked field(s), ``(N, channels)``."""
    if config.field is AttackField.COLOR:
        return color_delta
    if config.field is AttackField.COORDINATE:
        return coord_delta
    return np.concatenate([coord_delta, color_delta], axis=-1)


def build_result(model: SegmentationModel,
                 config: AttackConfig,
                 original_coords: np.ndarray,
                 original_colors: np.ndarray,
                 adversarial_coords: np.ndarray,
                 adversarial_colors: np.ndarray,
                 labels: np.ndarray,
                 target_labels: Optional[np.ndarray],
                 target_mask: np.ndarray,
                 iterations: int,
                 converged: bool,
                 history: Optional[List[Dict[str, float]]] = None,
                 scene_name: str = "",
                 clean_prediction: Optional[np.ndarray] = None) -> AttackResult:
    """Evaluate an adversarial cloud and wrap everything into an AttackResult."""
    original_coords = np.asarray(original_coords, dtype=np.float64)
    original_colors = np.asarray(original_colors, dtype=np.float64)
    adversarial_coords = np.asarray(adversarial_coords, dtype=np.float64)
    adversarial_colors = np.asarray(adversarial_colors, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    target_mask = np.asarray(target_mask, dtype=bool)

    if clean_prediction is None:
        clean_prediction = model.predict_single(original_coords, original_colors)
    adversarial_prediction = model.predict_single(adversarial_coords, adversarial_colors)

    coord_delta = adversarial_coords - original_coords
    color_delta = adversarial_colors - original_colors
    perturbation = attacked_perturbation(config, coord_delta, color_delta)

    clean_accuracy = accuracy_score(clean_prediction, labels)
    clean_aiou = average_iou(clean_prediction, labels, model.num_classes)
    accuracy = accuracy_score(adversarial_prediction, labels)
    aiou = average_iou(adversarial_prediction, labels, model.num_classes)

    psr = None
    oob_accuracy = None
    oob_aiou = None
    if config.objective is AttackObjective.OBJECT_HIDING and target_labels is not None:
        psr = point_success_rate(adversarial_prediction, target_labels, target_mask)
        oob_accuracy = out_of_band_accuracy(adversarial_prediction, labels, target_mask)
        oob_aiou = out_of_band_iou(adversarial_prediction, labels, target_mask,
                                   model.num_classes)

    outcome = AttackOutcome(
        distance=l2_distance_numpy(perturbation, target_mask),
        accuracy=accuracy,
        aiou=aiou,
        clean_accuracy=clean_accuracy,
        clean_aiou=clean_aiou,
        psr=psr,
        oob_accuracy=oob_accuracy,
        oob_aiou=oob_aiou,
        iterations=iterations,
        converged=converged,
    )

    return AttackResult(
        config=config,
        original_coords=original_coords,
        original_colors=original_colors,
        adversarial_coords=adversarial_coords,
        adversarial_colors=adversarial_colors,
        labels=labels,
        target_labels=None if target_labels is None else np.asarray(target_labels),
        target_mask=target_mask,
        clean_prediction=np.asarray(clean_prediction),
        adversarial_prediction=np.asarray(adversarial_prediction),
        l2=l2_distance_numpy(perturbation, target_mask),
        l0=l0_distance_numpy(perturbation),
        linf=linf_distance_numpy(perturbation),
        iterations=iterations,
        converged=converged,
        outcome=outcome,
        history=history or [],
        scene_name=scene_name,
    )


__all__ = ["build_result", "attacked_perturbation"]
