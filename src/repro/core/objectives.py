"""Adversarial loss functions (Equations 10 and 11 of the paper).

Both losses operate on the logits ``Z`` of the segmentation model:

* **object hiding** (targeted, Eq. 10) — for every attacked point, push the
  logit of the attacker's target label above every other logit:

  ``L_T = Σ max( max_{j≠y} Z_j − Z_y , 0 )``  (minimised)

* **performance degradation** (untargeted, Eq. 11) — for every attacked
  point, push the ground-truth logit below some other logit:

  ``L_NT = Σ max( Z_y − max_{j≠y} Z_j , 0 )``  (minimised; equivalently the
  norm-bounded attack *maximises* its negative effect by gradient ascent).
"""

from __future__ import annotations

import numpy as np

from ..accel.policy import compute_dtype
from ..nn import Tensor, as_tensor, hinge


_NEG_INF = 1e9


def _max_other_logit(logits: Tensor, labels: np.ndarray) -> Tensor:
    """``max_{j != y_i} Z(x_i)_j`` for every point."""
    logits = as_tensor(logits)
    num_classes = logits.shape[-1]
    labels = np.asarray(labels, dtype=np.int64)
    # Constants carry the active compute dtype: a float64 suppress array
    # would promote the whole (B, N, C) margin chain to float64 under the
    # float32 fast-math policy, doubling the loss head's memory traffic.
    suppress = np.zeros(labels.shape + (num_classes,), dtype=compute_dtype())
    np.put_along_axis(suppress, labels[..., None], -_NEG_INF, axis=-1)
    return (logits + Tensor(suppress)).max(axis=-1)


def _label_logit(logits: Tensor, labels: np.ndarray) -> Tensor:
    """``Z(x_i)_{y_i}`` for every point."""
    logits = as_tensor(logits)
    num_classes = logits.shape[-1]
    labels = np.asarray(labels, dtype=np.int64)
    selector = np.zeros(labels.shape + (num_classes,), dtype=compute_dtype())
    np.put_along_axis(selector, labels[..., None], 1.0, axis=-1)
    return (logits * Tensor(selector)).sum(axis=-1)


def _apply_mask(per_point: Tensor, mask: np.ndarray | None,
                per_scene: bool = False) -> Tensor:
    if mask is not None:
        mask = np.asarray(mask, dtype=compute_dtype())
        per_point = per_point * Tensor(np.broadcast_to(mask, per_point.shape).copy())
    if per_scene:
        # One loss per batch item: the per-row sum reduces the same
        # contiguous elements in the same order as the scalar sum does for a
        # single scene, so each entry is bit-identical to a serial run.
        return per_point.sum(axis=tuple(range(1, per_point.ndim)))
    return per_point.sum()


def object_hiding_loss(logits: Tensor, target_labels: np.ndarray,
                       mask: np.ndarray | None = None,
                       per_scene: bool = False) -> Tensor:
    """Targeted adversarial loss ``L_T`` (Eq. 10).

    Parameters
    ----------
    logits:
        ``(B, N, C)`` model logits of the (perturbed) cloud.
    target_labels:
        ``(B, N)`` (or ``(N,)``) labels the attacker wants predicted.
    mask:
        Boolean array matching the label shape; only masked points contribute
        (the attacked set ``T``).
    per_scene:
        When true, return one loss per batch item (shape ``(B,)``) instead
        of a scalar — used by the batched attack engines to track per-scene
        progress while the summed loss drives a single backward pass.
    """
    margin = _max_other_logit(logits, target_labels) - _label_logit(logits, target_labels)
    return _apply_mask(hinge(margin), mask, per_scene=per_scene)


def performance_degradation_loss(logits: Tensor, ground_truth: np.ndarray,
                                 mask: np.ndarray | None = None,
                                 per_scene: bool = False) -> Tensor:
    """Untargeted adversarial loss ``L_NT`` (Eq. 11).

    Minimising this loss pushes every point's ground-truth logit below its
    best competing logit, i.e. forces a misclassification.
    """
    margin = _label_logit(logits, ground_truth) - _max_other_logit(logits, ground_truth)
    return _apply_mask(hinge(margin), mask, per_scene=per_scene)


def adversarial_loss(objective, logits: Tensor, labels: np.ndarray,
                     target_labels: np.ndarray | None,
                     mask: np.ndarray | None = None,
                     per_scene: bool = False) -> Tensor:
    """Eq. 10/11 loss selected by an :class:`AttackObjective`.

    The single dispatch every white-box engine (and EOT sample) shares:
    object hiding scores against the attacker's targets, performance
    degradation against the ground truth.
    """
    from .config import AttackObjective

    if objective is AttackObjective.OBJECT_HIDING:
        return object_hiding_loss(logits, target_labels, mask,
                                  per_scene=per_scene)
    return performance_degradation_loss(logits, labels, mask,
                                        per_scene=per_scene)


__all__ = ["adversarial_loss", "object_hiding_loss",
           "performance_degradation_loss"]
