"""Attack transferability (Section V-G, Table IX).

Adversarial examples generated against one model are replayed against
another.  Because the models normalise their inputs differently (ResGCN
coordinates live in ``[-1, 1]``, PointNet++ in ``[0, 3]``), the attacked
fields are remapped between the two ranges before replay — the paper's
"extra step to map the attacked fields to the same range".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..geometry.transforms import remap_range
from ..metrics.segmentation import accuracy_score, average_iou
from ..models.base import SegmentationModel
from .config import AttackResult


def remap_adversarial_example(result: AttackResult,
                              source_model: SegmentationModel,
                              target_model: SegmentationModel) -> Dict[str, np.ndarray]:
    """Map an adversarial cloud from the source model's space to the target's.

    Returns normalised ``coords`` and ``colors`` arrays ready to feed the
    target model.
    """
    source_spec = source_model.spec
    target_spec = target_model.spec
    coords = remap_range(result.adversarial_coords,
                         source_spec.coord_range, target_spec.coord_range)
    colors = remap_range(result.adversarial_colors,
                         source_spec.color_range, target_spec.color_range)
    colors = np.clip(colors, *target_spec.color_range)
    return {"coords": coords, "colors": colors}


@dataclass
class TransferOutcome:
    """Accuracy / aIoU of transferred adversarial samples on the target model."""

    accuracy: float
    aiou: float
    source_accuracy: float
    source_aiou: float
    num_samples: int


def evaluate_transfer(results: Sequence[AttackResult],
                      source_model: SegmentationModel,
                      target_model: SegmentationModel) -> TransferOutcome:
    """Replay adversarial examples generated on ``source_model`` against ``target_model``."""
    if not results:
        raise ValueError("evaluate_transfer requires at least one attack result")
    accuracies: List[float] = []
    ious: List[float] = []
    for result in results:
        remapped = remap_adversarial_example(result, source_model, target_model)
        prediction = target_model.predict_single(remapped["coords"], remapped["colors"])
        accuracies.append(accuracy_score(prediction, result.labels))
        ious.append(average_iou(prediction, result.labels, target_model.num_classes))
    return TransferOutcome(
        accuracy=float(np.mean(accuracies)),
        aiou=float(np.mean(ious)),
        source_accuracy=float(np.mean([r.outcome.accuracy for r in results])),
        source_aiou=float(np.mean([r.outcome.aiou for r in results])),
        num_samples=len(results),
    )


__all__ = ["remap_adversarial_example", "evaluate_transfer", "TransferOutcome"]
