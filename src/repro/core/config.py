"""Attack configuration and result containers.

An :class:`AttackConfig` selects one of the framework's 8 configurations
(objective × method × field) plus the hyper-parameters of Section V-A.
:class:`AttackResult` carries everything a table needs: the adversarial
cloud, perturbation distances, predictions and derived metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from ..metrics.attack_metrics import AttackOutcome
from .perturbation import AttackField


class AttackObjective(str, Enum):
    """The attacker's goal (Section III)."""

    PERFORMANCE_DEGRADATION = "degradation"
    OBJECT_HIDING = "hiding"


class AttackMethod(str, Enum):
    """The optimisation family (Section IV-B)."""

    NORM_BOUNDED = "bounded"       # PGD-adapted, Algorithm 1
    NORM_UNBOUNDED = "unbounded"   # C&W-adapted
    RANDOM_NOISE = "noise"         # baseline of Section V-C


class AttackMode(str, Enum):
    """The attacker's access to the victim model.

    ``WHITEBOX`` is the paper's setting (full gradients).  The black-box
    modes never call ``backward``: NES and SPSA estimate the gradient of the
    Eq. 10/11 losses from finite differences of logit queries, and BOUNDARY
    only observes the predicted labels (decision-based boundary walk).
    """

    WHITEBOX = "whitebox"
    NES = "nes"             # antithetic Gaussian finite differences
    SPSA = "spsa"           # simultaneous-perturbation (Rademacher) estimator
    BOUNDARY = "boundary"   # decision-based boundary walk


@dataclass
class AttackConfig:
    """Hyper-parameters of one attack configuration.

    The defaults follow Section V-A of the paper, scaled down where noted so
    the CPU-only harness stays fast; ``paper_scale()`` restores the paper's
    exact values.
    """

    objective: AttackObjective = AttackObjective.PERFORMANCE_DEGRADATION
    method: AttackMethod = AttackMethod.NORM_UNBOUNDED
    field: AttackField = AttackField.COLOR

    # Model access (repro.core.blackbox).  The black-box modes replace the
    # white-box engines behind the same dispatch: NES/SPSA run an ε-bounded
    # sign-step loop on an estimated gradient, BOUNDARY walks the decision
    # boundary from an adversarial random start.  ``query_budget`` counts
    # every model evaluation the attacker pays for (one per cloud);
    # ``samples_per_step`` is the number of finite-difference directions per
    # step (each costs two antithetic queries); ``fd_sigma`` is the probing
    # radius of the estimators.
    attack_mode: AttackMode = AttackMode.WHITEBOX
    query_budget: int = 1000
    samples_per_step: int = 8
    fd_sigma: float = 0.05

    # Adaptive (defense-aware) attacks.  With ``adaptive=True`` the attacker
    # knows the deployed defense (``defense`` is a ``repro.defenses``
    # registry name, ``defense_kwargs`` its constructor arguments) and folds
    # ``eot_samples`` stochastic defense draws into every optimisation step
    # — expectation over transformation.  Transformation defenses enter the
    # white-box graph as affine / straight-through ops; removal defenses
    # restrict the adversarial loss to the points that would survive.  The
    # black-box engines evaluate their probe losses through the same
    # samples (each defended forward costs one query).  Convergence keeps
    # judging the raw (undefended) cloud: the stop criterion is the
    # attacker's own, the defense only shapes the loss landscape.
    adaptive: bool = False
    defense: Optional[str] = None
    defense_kwargs: Dict[str, object] = dataclass_field(default_factory=dict)
    eot_samples: int = 1

    # Decision-based (boundary) mode: random restarts allowed while hunting
    # for an adversarial starting point, the initial contraction step toward
    # the original cloud, and the orthogonal exploration scale (relative to
    # the current perturbation norm).
    boundary_init_tries: int = 10
    boundary_source_step: float = 0.1
    boundary_noise_step: float = 0.2

    # Norm-bounded attack (Algorithm 1).
    epsilon: float = 0.12            # attack boundary ε in model units
    step_size: float = 0.01          # γ
    bounded_steps: int = 50          # Steps for the norm-bounded attack

    # Norm-unbounded attack.
    unbounded_steps: int = 1000      # Steps for the norm-unbounded attack
    learning_rate: float = 0.01      # Adam lr
    lambda1: float = 1.0             # adversarial-loss weight
    lambda2: float = 0.1             # smoothness-penalty weight
    plateau_patience: int = 10       # steps without gain before random restart

    # Shared components.
    smoothness_alpha: int = 10       # α nearest neighbours in Eq. 9
    min_impact_points: int = 100     # n in Eq. 12 (coordinate attacks)
    min_impact_floor: float = 0.10   # stop restoring below this fraction of points

    # Batched multi-scene execution: one optimisation loop drives up to
    # ``batch_scenes`` same-size scenes through a single forward/backward,
    # amortising the per-op autograd overhead across the batch.  ``1`` is the
    # serial path, bit-for-bit identical to the historical behaviour; larger
    # values keep per-scene masks, RNG streams, plateau restarts and early
    # stopping independent, so every scene's result is identical to its
    # ``batch_scenes=1`` run (see ``run_attack_batch``).
    batch_scenes: int = 1

    # Compute policy (repro.accel).  The fast defaults trade a little
    # numerical fidelity for wall-clock speed on the attack hot path;
    # "float64" + neighbor_refresh=1 + smoothness_neighbors="current" is
    # exactness mode, bit-for-bit identical to the seed implementation.
    compute_dtype: str = "float32"       # "float32" | "float64"
    neighbor_refresh: int = 5            # R: recompute kNN graphs every R steps
    smoothness_neighbors: str = "clean"  # Eq. 9 neighbour source: "clean" | "current"

    # Compiled tensor engine (repro.nn.compile).  ``graph_capture`` lets the
    # engines record the first step's computation and replay a compiled plan
    # on later steps — bit-for-bit identical to eager, so it is purely an
    # execution knob (excluded from result-store salting, like
    # ``batch_scenes``).  ``tensor_backend`` selects who executes the plans:
    # "numpy" (the bitwise reference) or the optional "torch" backend
    # (allclose, not bitwise — salted).  ``REPRO_BACKEND`` / ``REPRO_CAPTURE``
    # override both externally (see ComputePolicy.from_attack_config).
    tensor_backend: str = "numpy"        # "numpy" | "torch"
    graph_capture: bool = True

    # "Both fields" update schedule (Section IV-B): the default perturbs colour
    # and coordinates concurrently; the alternating variant — which the paper
    # reports as worse because the two gradients offset each other — updates
    # one field per iteration and is kept for the ablation experiment.
    alternating_fields: bool = False

    # Object hiding.
    target_class: Optional[int] = None
    source_class: Optional[int] = None

    # Convergence (Converge(·) in Algorithm 1).
    target_accuracy: Optional[float] = None   # defaults to 1 / num_classes
    target_psr: float = 0.95

    seed: int = 0

    def __post_init__(self) -> None:
        self.objective = AttackObjective(self.objective)
        self.method = AttackMethod(self.method)
        self.field = AttackField(self.field)
        self.attack_mode = AttackMode(self.attack_mode)
        if self.query_budget < 1:
            raise ValueError("query_budget must be >= 1")
        if self.samples_per_step < 1:
            raise ValueError("samples_per_step must be >= 1")
        if self.fd_sigma <= 0:
            raise ValueError("fd_sigma must be positive")
        if self.boundary_init_tries < 1:
            raise ValueError("boundary_init_tries must be >= 1")
        if not 0.0 < self.boundary_source_step < 1.0:
            raise ValueError("boundary_source_step must be in (0, 1)")
        if self.boundary_noise_step < 0:
            raise ValueError("boundary_noise_step must be non-negative")
        if self.eot_samples < 1:
            raise ValueError("eot_samples must be >= 1")
        if self.adaptive and self.defense is None:
            raise ValueError("adaptive attacks require a defense name")
        if self.defense is not None and not self.adaptive:
            raise ValueError("defense is only consumed by adaptive attacks; "
                             "set adaptive=True (or drop the defense)")
        if self.objective is AttackObjective.OBJECT_HIDING and self.target_class is None:
            raise ValueError("object hiding attacks require target_class")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.bounded_steps <= 0 or self.unbounded_steps <= 0:
            raise ValueError("step counts must be positive")
        if self.compute_dtype not in ("float32", "float64"):
            raise ValueError("compute_dtype must be 'float32' or 'float64'")
        if self.neighbor_refresh < 1:
            raise ValueError("neighbor_refresh must be >= 1")
        if self.batch_scenes < 1:
            raise ValueError("batch_scenes must be >= 1")
        if self.smoothness_neighbors not in ("clean", "current"):
            raise ValueError("smoothness_neighbors must be 'clean' or 'current'")
        if self.tensor_backend not in ("numpy", "torch"):
            raise ValueError("tensor_backend must be 'numpy' or 'torch'")

    @property
    def engine_name(self) -> str:
        """Short engine label used by telemetry events and reports.

        One of ``noise`` / ``nes`` / ``spsa`` / ``boundary`` / ``bounded`` /
        ``unbounded`` — mirroring the dispatch order of
        :func:`repro.core.attack._build_engine`.
        """
        if self.method is AttackMethod.RANDOM_NOISE:
            return "noise"
        if self.attack_mode is not AttackMode.WHITEBOX:
            return self.attack_mode.value
        return self.method.value

    @property
    def steps(self) -> int:
        """Iteration budget of the configured method."""
        eot = 1
        if self.adaptive:
            # Ask the sampler, not eot_samples directly: deterministic
            # defenses collapse to one sample per step, so the engines'
            # real query cost uses the collapsed count.
            from .eot import build_eot

            eot = build_eot(self).samples
        if self.attack_mode is AttackMode.BOUNDARY:
            # Each proposal costs one defended evaluation per EOT sample.
            return max(self.query_budget // eot, 1)
        if self.attack_mode is not AttackMode.WHITEBOX:
            # One NES/SPSA step = a convergence check plus an antithetic
            # pair of queries per direction (times the EOT samples each
            # probe is evaluated through in adaptive mode).
            return max(self.query_budget
                       // (2 * self.samples_per_step * eot + 1), 1)
        if self.method is AttackMethod.NORM_BOUNDED:
            return self.bounded_steps
        if self.method is AttackMethod.NORM_UNBOUNDED:
            return self.unbounded_steps
        return 1

    @classmethod
    def paper_scale(cls, **overrides) -> "AttackConfig":
        """The exact hyper-parameters of Section V-A (Steps 50 / 1000, etc.).

        Paper-scale runs also use exactness compute: float64 arithmetic,
        per-step neighbourhood refresh, and Eq. 9 neighbourhoods from the
        current (perturbed) cloud, exactly as the paper describes.
        """
        defaults = dict(
            epsilon=0.12, step_size=0.01, bounded_steps=50,
            unbounded_steps=1000, learning_rate=0.01,
            lambda1=1.0, lambda2=0.1, smoothness_alpha=10,
            min_impact_points=100,
            compute_dtype="float64", neighbor_refresh=1,
            smoothness_neighbors="current",
            query_budget=5000, samples_per_step=16,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def fast(cls, **overrides) -> "AttackConfig":
        """A scaled-down configuration for CPU benchmarks and tests.

        With only tens of optimisation steps (instead of the paper's 50/1000),
        the adversarial-loss weight and learning rate are raised so the attack
        reaches a comparable operating point in far fewer iterations.
        """
        defaults = dict(bounded_steps=20, unbounded_steps=60,
                        epsilon=0.15, step_size=0.02,
                        learning_rate=0.03, lambda1=3.0,
                        min_impact_points=24, smoothness_alpha=6,
                        query_budget=200, samples_per_step=4)
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class AttackResult:
    """Everything produced by one attack on one point cloud."""

    config: AttackConfig
    original_coords: np.ndarray
    original_colors: np.ndarray
    adversarial_coords: np.ndarray
    adversarial_colors: np.ndarray
    labels: np.ndarray
    target_labels: Optional[np.ndarray]
    target_mask: np.ndarray
    clean_prediction: np.ndarray
    adversarial_prediction: np.ndarray
    l2: float
    l0: float
    linf: float
    iterations: int
    converged: bool
    outcome: AttackOutcome
    history: List[Dict[str, float]] = dataclass_field(default_factory=list)
    scene_name: str = ""

    @property
    def coordinate_perturbation(self) -> np.ndarray:
        return self.adversarial_coords - self.original_coords

    @property
    def color_perturbation(self) -> np.ndarray:
        return self.adversarial_colors - self.original_colors

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics (handy for tables)."""
        data = {
            "l2": self.l2,
            "l0": self.l0,
            "linf": self.linf,
            "accuracy": self.outcome.accuracy,
            "aiou": self.outcome.aiou,
            "clean_accuracy": self.outcome.clean_accuracy,
            "clean_aiou": self.outcome.clean_aiou,
            "accuracy_drop": self.outcome.accuracy_drop,
            "aiou_drop": self.outcome.aiou_drop,
            "iterations": float(self.iterations),
            "converged": float(self.converged),
        }
        if self.outcome.psr is not None:
            data["psr"] = self.outcome.psr
        if self.outcome.oob_accuracy is not None:
            data["oob_accuracy"] = self.outcome.oob_accuracy
            data["oob_aiou"] = self.outcome.oob_aiou
        return data


__all__ = ["AttackObjective", "AttackMethod", "AttackMode", "AttackConfig",
           "AttackResult"]
