"""Weight initialisation helpers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a weight of ``shape`` (in, out)."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (suited to ReLU activations)."""
    fan_in = shape[0]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    return np.ones(shape)


__all__ = ["xavier_uniform", "kaiming_uniform", "zeros", "ones"]
