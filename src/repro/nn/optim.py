"""Gradient-descent optimizers for model training and attack optimisation."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class: owns a list of tensors and updates them from their grads."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity -= self.lr * grad
            param.data += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015).

    The norm-unbounded attack in the paper uses Adam with lr=0.01 to optimise
    the perturbation variable, so this implementation serves both model
    training and attack optimisation.
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            # In-place moment updates: same multiply-then-add rounding as the
            # out-of-place originals, without the two fresh allocations.
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            m_hat = m / (1 - self.beta1 ** t)
            v_hat = v / (1 - self.beta2 ** t)
            np.sqrt(v_hat, out=v_hat)
            v_hat += self.eps
            # Keep the seed's evaluation order (lr * m_hat, then divide) so
            # exactness mode stays bit-for-bit reproducible.
            m_hat *= self.lr
            m_hat /= v_hat
            param.data -= m_hat


class StepLR:
    """Multiplies the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


__all__ = ["Optimizer", "SGD", "Adam", "StepLR"]
