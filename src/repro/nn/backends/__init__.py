"""Execution backends for compiled plans.

A backend executes a :class:`repro.nn.compile.CompiledPlan` on fresh
placeholder feeds and returns outputs plus placeholder gradients.  Two
backends exist:

``numpy`` (default)
    The in-process reference executor built into ``CompiledPlan`` itself —
    bit-for-bit identical to eager execution.
``torch``
    An optional executor (:mod:`repro.nn.backends.torch_backend`) that maps
    every registry op onto a torch kernel and derives gradients through
    ``torch.autograd`` — the cross-validation harness for the hand-written
    NumPy VJPs.  Import-guarded: requesting it without a torch install
    raises a clear error, and the test-suite skip-marks torch cases.

Selection is by name via ``AttackConfig.tensor_backend`` or the
``REPRO_BACKEND`` environment variable (resolved into the compute policy,
and therefore into the store salt — torch results are allclose to NumPy,
not bitwise, so the two must never share cached cells).
"""

from __future__ import annotations

from typing import Dict

BACKENDS = ("numpy", "torch")

_instances: Dict[str, object] = {}


def has_torch() -> bool:
    """True when a usable torch wheel is importable."""
    try:
        import torch  # noqa: F401
    except Exception:
        return False
    return True


def available_backends() -> Dict[str, bool]:
    """Availability map for every known backend name."""
    return {"numpy": True, "torch": has_torch()}


def get_backend(name: str):
    """Return the executor singleton for ``name``.

    Raises
    ------
    ValueError
        Unknown backend name.
    RuntimeError
        The backend is known but its runtime is not importable.
    """
    if name not in BACKENDS:
        raise ValueError(
            f"unknown tensor backend {name!r}; expected one of {BACKENDS}")
    backend = _instances.get(name)
    if backend is None:
        if name == "torch":
            if not has_torch():
                raise RuntimeError(
                    "tensor_backend='torch' requested but torch is not "
                    "installed (pip install '.[torch]')")
            from .torch_backend import TorchBackend
            backend = TorchBackend()
        else:
            backend = _NumpyBackend()
        _instances[name] = backend
    return backend


class _NumpyBackend:
    """Trivial delegate to the plan's built-in reference executor."""

    name = "numpy"

    def execute(self, plan, feeds):
        return plan._execute_numpy(feeds)


__all__ = ["BACKENDS", "available_backends", "get_backend", "has_torch"]
