"""Torch execution backend for compiled plans (optional dependency).

Executes a captured plan's forward schedule with torch kernels — one kernel
per :mod:`repro.nn.ops` registry entry — and derives placeholder gradients
through ``torch.autograd`` instead of the hand-written NumPy VJPs.  This is
the cross-validation harness from the project roadmap: two independent
gradient implementations over the same captured graph, compared allclose in
``tests/test_engine_contract.py`` and ``tests/test_compile.py`` (tolerances
documented in docs/COMPILE.md).

Everything torch-touching lives in this module; it is imported only after
:func:`repro.nn.backends.has_torch` succeeds.  Execution is CPU, with dtypes
mapped 1:1 from the captured plan (float32 plans run in torch.float32).

Numerics: torch results are *allclose* to NumPy, not bitwise — different
kernels, different accumulation order, and a handful of tie-breaking
differences at measure-zero points (``maximum`` at exact ties routes the
subgradient differently).  The store salt includes the backend name, so
torch and NumPy runs never share cached results.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import torch

from ..compile import PlanMismatch, PlanResult

_TORCH_DTYPES = {
    np.dtype(np.float64): torch.float64,
    np.dtype(np.float32): torch.float32,
    np.dtype(np.int64): torch.int64,
    np.dtype(np.bool_): torch.bool,
}


def _to_torch(arr: np.ndarray) -> "torch.Tensor":
    return torch.as_tensor(np.ascontiguousarray(arr))


def _index_to_torch(index):
    """Convert a NumPy fancy-index (or tuple of them) for torch indexing."""
    if isinstance(index, np.ndarray):
        return torch.as_tensor(index)
    if isinstance(index, tuple):
        return tuple(_index_to_torch(part) for part in index)
    return index


def _cached(pcache: dict, key: str, build):
    value = pcache.get(key)
    if value is None:
        value = pcache[key] = build()
    return value


# ---------------------------------------------------------------------- #
# Kernel table: op name -> fn(inputs, params, pcache) -> torch.Tensor
# ---------------------------------------------------------------------- #
def _k_add(inputs, params, pcache):
    return inputs[0] + inputs[1]


def _k_neg(inputs, params, pcache):
    return -inputs[0]


def _k_mul(inputs, params, pcache):
    return inputs[0] * inputs[1]


def _k_div(inputs, params, pcache):
    return inputs[0] / inputs[1]


def _k_pow(inputs, params, pcache):
    return inputs[0] ** params["exponent"]


def _k_matmul(inputs, params, pcache):
    return inputs[0] @ inputs[1]


def _k_exp(inputs, params, pcache):
    return torch.exp(inputs[0])


def _k_log(inputs, params, pcache):
    return torch.log(inputs[0])


def _k_sqrt(inputs, params, pcache):
    return torch.sqrt(inputs[0])


def _k_tanh(inputs, params, pcache):
    return torch.tanh(inputs[0])


def _k_sigmoid(inputs, params, pcache):
    return torch.sigmoid(inputs[0])


def _k_relu(inputs, params, pcache):
    x = inputs[0]
    # x * (x > 0) rather than torch.relu: matches the reference subgradient
    # (zero at the kink) through the product rule.
    return x * (x > 0)


def _k_leaky_relu(inputs, params, pcache):
    x = inputs[0]
    slope = params["negative_slope"]
    return x * torch.where(x > 0, torch.ones((), dtype=x.dtype),
                           torch.full((), slope, dtype=x.dtype))


def _k_abs(inputs, params, pcache):
    return torch.abs(inputs[0])


def _k_clip(inputs, params, pcache):
    return torch.clamp(inputs[0], params["low"], params["high"])


def _k_sum(inputs, params, pcache):
    axis, keepdims = params["axis"], params["keepdims"]
    if axis is None:
        out = torch.sum(inputs[0])
        return out.reshape((1,) * inputs[0].ndim) if keepdims else out
    return torch.sum(inputs[0], dim=axis, keepdim=keepdims)


def _k_max(inputs, params, pcache):
    # torch.amax distributes gradient evenly across ties, matching the
    # reference mask/counts subgradient.
    return torch.amax(inputs[0], dim=params["axis"], keepdim=params["keepdims"])


def _k_detached_max(inputs, params, pcache):
    return torch.amax(inputs[0], dim=params["axis"], keepdim=True).detach()


def _k_reshape(inputs, params, pcache):
    return inputs[0].reshape(params["shape"])


def _k_transpose(inputs, params, pcache):
    return inputs[0].permute(tuple(int(a) for a in params["axes"]))


def _k_broadcast_to(inputs, params, pcache):
    return torch.broadcast_to(inputs[0], params["shape"])


def _k_expand_dims(inputs, params, pcache):
    return torch.unsqueeze(inputs[0], params["axis"])


def _k_squeeze(inputs, params, pcache):
    return torch.squeeze(inputs[0], params["axis"])


def _k_getitem(inputs, params, pcache):
    index = _cached(pcache, "index",
                    lambda: _index_to_torch(params["index"]))
    return inputs[0][index]


def _k_concatenate(inputs, params, pcache):
    return torch.cat(list(inputs), dim=params["axis"])


def _k_stack(inputs, params, pcache):
    return torch.stack(list(inputs), dim=params["axis"])


def _k_maximum(inputs, params, pcache):
    return torch.maximum(inputs[0], inputs[1])


def _k_where(inputs, params, pcache):
    cond = _cached(pcache, "cond", lambda: torch.as_tensor(params["cond"]))
    return torch.where(cond, inputs[0], inputs[1])


def _k_gather_points(inputs, params, pcache):
    features = inputs[0]
    channels = params["channels"]
    flat_index = _cached(pcache, "flat_index",
                         lambda: torch.as_tensor(params["flat_index"]))
    flat = features.reshape(params["rows"], channels)
    gathered = torch.index_select(flat, 0, flat_index)
    return gathered.reshape(params["index_shape"] + (channels,))


KERNELS = {
    "add": _k_add,
    "neg": _k_neg,
    "mul": _k_mul,
    "div": _k_div,
    "pow": _k_pow,
    "matmul": _k_matmul,
    "exp": _k_exp,
    "log": _k_log,
    "sqrt": _k_sqrt,
    "tanh": _k_tanh,
    "sigmoid": _k_sigmoid,
    "relu": _k_relu,
    "leaky_relu": _k_leaky_relu,
    "abs": _k_abs,
    "clip": _k_clip,
    "sum": _k_sum,
    "max": _k_max,
    "detached_max": _k_detached_max,
    "reshape": _k_reshape,
    "transpose": _k_transpose,
    "broadcast_to": _k_broadcast_to,
    "expand_dims": _k_expand_dims,
    "squeeze": _k_squeeze,
    "getitem": _k_getitem,
    "concatenate": _k_concatenate,
    "stack": _k_stack,
    "maximum": _k_maximum,
    "where": _k_where,
    "gather_points": _k_gather_points,
}


class _TorchExecutor:
    """Per-plan torch state: converted constants and param caches."""

    def __init__(self, plan) -> None:
        self.plan = plan
        self._template = [
            _to_torch(arr) if arr is not None else None
            for arr in plan._template
        ]
        # Per-exec-op caches for converted index/condition parameters.
        self._pcaches: Dict[int, dict] = {}

    def run(self, feeds) -> PlanResult:
        plan = self.plan
        values = list(self._template)
        grad_leaves = {}
        wants_grad = plan.root is not None and bool(plan.grad_slots)
        for name, node in plan.placeholders.items():
            arr = feeds[name]
            if arr.shape != node.shape:
                raise PlanMismatch(
                    f"placeholder {name!r}: expected {node.shape}, "
                    f"got {arr.shape}")
            t = _to_torch(arr).to(_TORCH_DTYPES[np.dtype(node.dtype)])
            if wants_grad and node.requires_grad:
                t = t.requires_grad_(True)
                grad_leaves[name] = t
            values[node.idx] = t

        grad_mode = torch.enable_grad() if wants_grad else torch.no_grad()
        with grad_mode:
            for segment in plan.segments:
                for step in segment:
                    kernel = KERNELS[step.op.name]
                    pcache = self._pcaches.setdefault(id(step), {})
                    inputs = tuple(values[i] for i in step.in_idxs)
                    values[step.out_idx] = kernel(inputs, step.params, pcache)

        outputs = {
            name: values[node.idx].detach().numpy()
            for name, node in plan.outputs.items()
        }
        grads: Dict[str, np.ndarray] = {}
        if wants_grad:
            root_value = values[plan.root.idx]
            names = sorted(grad_leaves)
            pieces = torch.autograd.grad(
                root_value, [grad_leaves[name] for name in names],
                grad_outputs=torch.ones_like(root_value),
                allow_unused=True)
            for name, piece in zip(names, pieces):
                if piece is not None:
                    grads[name] = piece.detach().numpy()
        return PlanResult(outputs, grads)


class TorchBackend:
    """Backend adapter: lazily builds one :class:`_TorchExecutor` per plan."""

    name = "torch"

    def execute(self, plan, feeds) -> PlanResult:
        executor = plan._torch_executor
        if executor is None:
            executor = plan._torch_executor = _TorchExecutor(plan)
        return executor.run(feeds)


__all__ = ["KERNELS", "TorchBackend"]
