"""Graph capture: record one attack step's tensor ops as a static graph.

The attack inner loops run the same computation every step — same model, same
shapes, same op sequence — with only the perturbed inputs changing.  This
module records that computation once (on the first step) as a static op
graph: every :func:`repro.nn.tensor._apply` call while a recorder is active
becomes a :class:`Node` carrying the op, its input nodes, parameters, shape
and dtype.  The plan compiler (:mod:`repro.nn.compile`) then turns the graph
into a replayable execution plan.

Three node kinds:

``placeholder``
    A step input whose data changes between steps (the adversarial colour
    tensor, the stacked black-box query clouds).  Registered explicitly by
    the engine; replay feeds fresh arrays into these slots.
``constant``
    Any other tensor entering the graph from outside: frozen model
    parameters, masks, one-hot targets, neighbourhood index tables.  Baked
    by reference — valid because the engines only replay plans in regimes
    where these stay fixed (colour-field attacks, no EOT; see
    docs/COMPILE.md).
``op``
    A recorded operation from the :mod:`repro.nn.ops` registry.

Capture is conservative: if anything unexpected appears — a tensor that
requires gradients but was not registered as a placeholder — the recording
is marked invalid and the engine silently stays on the eager path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import tensor as tensor_mod
from .ops import OpDef
from .tensor import Tensor


class Node:
    """One vertex of a captured computation graph."""

    __slots__ = ("kind", "op", "inputs", "params", "shape", "dtype",
                 "requires_grad", "data", "name", "idx")

    def __init__(self, kind: str, *, op: Optional[OpDef] = None,
                 inputs: Tuple["Node", ...] = (), params: Optional[dict] = None,
                 shape: Tuple[int, ...] = (), dtype=None,
                 requires_grad: bool = False,
                 data: Optional[np.ndarray] = None,
                 name: Optional[str] = None) -> None:
        self.kind = kind                # "op" | "placeholder" | "constant"
        self.op = op
        self.inputs = inputs
        self.params = params or {}
        self.shape = shape
        self.dtype = dtype
        self.requires_grad = requires_grad
        self.data = data                # baked array for constants
        self.name = name                # slot name for placeholders
        self.idx = -1                   # value-slot index, set by the compiler

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.op.name if self.op is not None else (self.name or self.kind)
        return f"Node({self.kind}:{label}, shape={self.shape})"


class GraphRecorder:
    """Record every ``_apply`` call into a static op graph.

    Parameters
    ----------
    placeholders:
        Mapping from slot name to the tensor whose data will be swapped on
        each replayed step.  Every other tensor entering the graph is baked
        as a constant.
    """

    def __init__(self, placeholders: Dict[str, Tensor]) -> None:
        self.order: List[Node] = []
        self.placeholders: Dict[str, Node] = {}
        self.valid = True
        self.invalid_reason: Optional[str] = None
        # id(tensor) -> Node, plus a reference to the tensor itself so ids
        # cannot be recycled by the allocator mid-capture.
        self._nodes: Dict[int, Node] = {}
        self._alive: List[Tensor] = []
        for slot, t in placeholders.items():
            node = Node("placeholder", shape=t.shape, dtype=t.dtype,
                        requires_grad=t.requires_grad, name=slot)
            self.placeholders[slot] = node
            self._bind(t, node)

    def _bind(self, t: Tensor, node: Node) -> None:
        self._nodes[id(t)] = node
        self._alive.append(t)

    def _lookup(self, t: Tensor) -> Node:
        node = self._nodes.get(id(t))
        if node is None:
            # First sighting of an outside tensor: bake it as a constant
            # (by reference — the engines guarantee it stays fixed for the
            # lifetime of the plan).  A gradient-bearing stray means the
            # engine forgot a placeholder; poison the capture instead of
            # baking something that must not be constant.
            if t.requires_grad:
                self.valid = False
                self.invalid_reason = "unregistered tensor requires grad"
            node = Node("constant", shape=t.shape, dtype=t.dtype,
                        requires_grad=t.requires_grad, data=t.data)
            self._bind(t, node)
        return node

    def record(self, op: OpDef, inputs: Tuple[Tensor, ...], out: Tensor,
               params: dict) -> None:
        """Called by :func:`repro.nn.tensor._apply` for every executed op."""
        in_nodes = tuple(self._lookup(t) for t in inputs)
        node = Node("op", op=op, inputs=in_nodes, params=params,
                    shape=out.shape, dtype=out.dtype,
                    requires_grad=out.requires_grad)
        self.order.append(node)
        self._bind(out, node)

    def node_for(self, t: Tensor) -> Optional[Node]:
        """The node a tensor was recorded as, or ``None`` if never seen."""
        return self._nodes.get(id(t))


@contextmanager
def recording(recorder: GraphRecorder) -> Iterator[GraphRecorder]:
    """Route every tensor op through ``recorder`` for the duration.

    Capture does not nest: entering while another recorder is active marks
    the inner recorder invalid and records nothing (the outer capture is
    left untouched).
    """
    if tensor_mod._RECORDER is not None:
        recorder.valid = False
        recorder.invalid_reason = "nested capture"
        yield recorder
        return
    tensor_mod._RECORDER = recorder
    try:
        yield recorder
    finally:
        tensor_mod._RECORDER = None


__all__ = ["Node", "GraphRecorder", "recording"]
