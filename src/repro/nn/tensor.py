"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` substrate.  It is a deliberately small, well-tested autograd
engine: every operation records a backward closure, and :meth:`Tensor.backward`
walks the graph in reverse topological order accumulating gradients.

Only the operations needed by the point-cloud segmentation models and the
attack framework are implemented, but each supports full NumPy broadcasting
and is checked against finite differences in the test-suite.

The floating dtype of every new tensor follows the active
:class:`repro.accel.ComputePolicy` (float64 by default; float32 inside the
attack engines' fast-math context).  Gradient accumulation is allocation
lean: the first gradient reaching a tensor is stored by reference, later
ones are added in place into a privately owned buffer, and backward
closures skip work entirely for parents that do not require gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..accel.policy import compute_dtype

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a NumPy array of the active compute dtype."""
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype or compute_dtype())
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor that records operations for autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``float64`` by default.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_grad_owned", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward = _backward
        self._parents = _parents
        self._grad_owned = False
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying data."""
        return self.data.copy()

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    def _make(self, data, parents, backward) -> "Tensor":
        requires_grad = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad, _parents=parents,
                     _backward=backward if requires_grad else None)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        current = self.grad
        if current is None:
            # Store by reference: most tensors receive exactly one gradient,
            # so the defensive copy the seed made is usually wasted.  The
            # array may be shared (or a read-only broadcast view), hence the
            # ownership flag guarding the in-place fast path below.
            grad = np.asarray(grad)
            if grad.dtype != self.data.dtype:
                grad = grad.astype(self.data.dtype)
                self._grad_owned = True
            else:
                self._grad_owned = False
            self.grad = grad
        elif self._grad_owned and current.shape == np.shape(grad):
            current += grad
        else:
            self.grad = current + grad
            self._grad_owned = True

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        # Division floor for the sqrt(0) subgradient.  1e-300 (the seed
        # value, kept for float64 bit-exactness) underflows to 0 in float32
        # and would divide by zero; the float32 floor is chosen so
        # 0.5/floor stays far from the float32 overflow boundary (an inf
        # here turns downstream `huge * 0` chain products into NaN).
        floor = 1e-300 if data.dtype == np.float64 else 1e-30

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(data, floor))

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        data = self.data * scale

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            # A read-only broadcast view is enough: _accumulate never
            # mutates gradients it does not own.
            self._accumulate(np.broadcast_to(g, self.shape))

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        max_keep = _fast_max(self.data, axis % self.ndim)
        data = np.squeeze(max_keep, axis=axis) if not keepdims else max_keep

        def backward(grad: np.ndarray) -> None:
            # The tie mask is only needed under autograd; building it lazily
            # spares evaluation-only forwards two full passes over the input.
            mask = (self.data == max_keep)
            counts = mask.sum(axis=axis, keepdims=True)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(mask * g / counts)

        return self._make(data, (self,), backward)

    def min(self, axis: int, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def broadcast_to(self, shape) -> "Tensor":
        """Broadcast to ``shape`` without copying (gradients sum back down).

        The forward value is a read-only NumPy broadcast view, so tiling a
        ``(B, N, 1, C)`` centre across ``K`` neighbours costs no memory —
        unlike the ``x + zeros(shape)`` idiom it replaces.
        """
        original = self.shape
        data = np.broadcast_to(self.data, tuple(shape))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, original))

        return self._make(data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return self._make(data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.expand_dims(grad, axis=axis))

        return self._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` for scalar tensors.

        Notes
        -----
        ``.grad`` arrays must be treated as read-only: the allocation-lean
        accumulation stores gradients by reference, so an array may be
        shared between tensors or be a read-only broadcast view.  Replace a
        gradient (``t.grad = ...``) instead of mutating it in place.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Pass-through ops may have stored this very buffer into the
                # parents' .grad; relinquish ownership so a later backward()
                # accumulating into this node allocates instead of mutating
                # an array that now aliases other tensors' gradients.
                node._grad_owned = False


def _fast_max(data: np.ndarray, axis: int) -> np.ndarray:
    """``data.max(axis, keepdims=True)`` via a binary tree of ``np.maximum``.

    NumPy's reduction loop is strided-access bound for middle axes (the
    ``(B, N, K, C)`` pooling pattern of every point-cloud model); pairing
    halves with vectorised ``np.maximum`` calls is ~2.5× faster.  Maximum is
    exact (no rounding), so the result is bit-identical to ``np.max`` for
    every evaluation order.
    """
    n = data.shape[axis]
    if n <= 2:
        return data.max(axis=axis, keepdims=True)
    moved = np.moveaxis(data, axis, 0)
    while moved.shape[0] > 1:
        m = moved.shape[0]
        half = m // 2
        paired = np.maximum(moved[:half], moved[half:2 * half])
        if m % 2:
            paired[0] = np.maximum(paired[0], moved[-1])
        moved = paired
    return np.moveaxis(moved, 0, axis)


def as_tensor(value: ArrayLike) -> Tensor:
    """Return ``value`` unchanged if it is a :class:`Tensor`, else wrap it."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ---------------------------------------------------------------------- #
# Free functions that combine multiple tensors
# ---------------------------------------------------------------------- #
def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, splits, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    requires_grad = any(t.requires_grad for t in tensors)
    return Tensor(data, requires_grad=requires_grad, _parents=tuple(tensors),
                  _backward=backward if requires_grad else None)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    requires_grad = any(t.requires_grad for t in tensors)
    return Tensor(data, requires_grad=requires_grad, _parents=tuple(tensors),
                  _backward=backward if requires_grad else None)


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum with subgradient routed to the larger input."""
    a, b = as_tensor(a), as_tensor(b)
    data = np.maximum(a.data, b.data)
    mask = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * mask, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (~mask), b.shape))

    requires_grad = a.requires_grad or b.requires_grad
    return Tensor(data, requires_grad=requires_grad, _parents=(a, b),
                  _backward=backward if requires_grad else None)


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum with subgradient routed to the smaller input."""
    return -maximum(-as_tensor(a), -as_tensor(b))


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Select ``a`` where ``condition`` is true, else ``b``.

    ``condition`` is treated as a constant (no gradient flows through it).
    """
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (~cond), b.shape))

    requires_grad = a.requires_grad or b.requires_grad
    return Tensor(data, requires_grad=requires_grad, _parents=(a, b),
                  _backward=backward if requires_grad else None)


def gather_points(features: Tensor, index: np.ndarray) -> Tensor:
    """Gather per-point feature vectors using an integer index map.

    Parameters
    ----------
    features:
        Tensor of shape ``(B, N, C)``.
    index:
        Integer array of shape ``(B, M)`` or ``(B, M, K)`` whose values index
        into the ``N`` dimension of ``features``.

    Returns
    -------
    Tensor
        Shape ``(B, M, C)`` or ``(B, M, K, C)`` respectively.
    """
    features = as_tensor(features)
    index = np.asarray(index, dtype=np.int64)
    if features.ndim != 3:
        raise ValueError("features must have shape (B, N, C)")
    batch, num_points, channels = features.shape
    if index.ndim == 2:
        batch_idx = np.arange(batch)[:, None]
    elif index.ndim == 3:
        batch_idx = np.arange(batch)[:, None, None]
    else:
        raise ValueError("index must have shape (B, M) or (B, M, K)")
    # Row-gather through np.take on the flattened (B*N, C) view: ~5× faster
    # than advanced indexing for the (B, M, K) neighbourhood tables, with
    # byte-identical output.  The flat index is shared with the backward
    # scatter.
    flat_index = (batch_idx * num_points + index).reshape(-1)
    flat_features = features.data.reshape(batch * num_points, channels)
    data = np.take(flat_features, flat_index, axis=0).reshape(
        index.shape + (channels,))

    def backward(grad: np.ndarray) -> None:
        # Scatter-add per channel with np.bincount, which is far faster than
        # np.add.at and performs the per-bin additions in the same input
        # order (so float64 exactness mode stays bit-for-bit identical).
        grad_rows = np.ascontiguousarray(grad.reshape(-1, channels).T)
        full = np.empty((channels, batch * num_points), dtype=features.data.dtype)
        for channel in range(channels):
            full[channel] = np.bincount(flat_index, weights=grad_rows[channel],
                                        minlength=full.shape[1])
        features._accumulate(
            np.ascontiguousarray(full.T).reshape(features.shape))

    return Tensor(data, requires_grad=features.requires_grad, _parents=(features,),
                  _backward=backward if features.requires_grad else None)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
