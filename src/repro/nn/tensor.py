"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` substrate.  It is a deliberately small, well-tested autograd
engine: every operation is declared once in the :mod:`repro.nn.ops` registry
(forward kernel + vector-Jacobian product + compiler metadata), and every
Tensor method is a thin wrapper that routes through the :func:`_apply`
chokepoint.  :meth:`Tensor.backward` walks the recorded graph in reverse
topological order accumulating gradients.

Routing everything through one chokepoint is what makes graph capture
(:mod:`repro.nn.graph`) possible: when a recorder is active, ``_apply``
notifies it of every op, and the resulting plan replays the identical kernel
sequence without rebuilding Python closures (see :mod:`repro.nn.compile`).

Only the operations needed by the point-cloud segmentation models and the
attack framework are implemented, but each supports full NumPy broadcasting
and is checked against finite differences in the test-suite.

The floating dtype of every new tensor follows the active
:class:`repro.accel.ComputePolicy` (float64 by default; float32 inside the
attack engines' fast-math context).  Gradient accumulation is allocation
lean: the first gradient reaching a tensor is stored by reference, later
ones are added in place into a privately owned buffer, and backward
closures skip work entirely for parents that do not require gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..accel.policy import compute_dtype
from .ops import OPS, OpDef, _fast_max, _unbroadcast  # noqa: F401 (re-export)

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]

# The active GraphRecorder (see repro.nn.graph) or None.  Set/cleared by
# repro.nn.graph.recording(); read once per op in _apply.
_RECORDER = None


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a NumPy array of the active compute dtype."""
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype or compute_dtype())
    return arr


def _apply(op: OpDef, inputs: Tuple["Tensor", ...], params: dict) -> "Tensor":
    """Execute one registry op eagerly and (optionally) record it.

    This is the single construction path for every op-producing tensor: it
    runs the registered forward kernel, builds the table-driven backward
    closure (skipping parents that do not require gradients, exactly like the
    historical per-op closures), and notifies the active graph recorder.
    """
    datas = tuple(t.data for t in inputs)
    data = op.forward(datas, params)
    requires_grad = op.differentiable and any(t.requires_grad for t in inputs)
    if requires_grad:
        needs = tuple(t.requires_grad for t in inputs)
        vjp = op.vjp

        def backward(grad: np.ndarray) -> None:
            grads = vjp(grad, data, datas, params, needs)
            for tensor, piece in zip(inputs, grads):
                if piece is not None:
                    tensor._accumulate(piece)

        out = Tensor(data, requires_grad=True, _parents=inputs,
                     _backward=backward)
    else:
        out = Tensor(data, requires_grad=False, _parents=inputs)
    if _RECORDER is not None:
        _RECORDER.record(op, inputs, out, params)
    return out


class Tensor:
    """A NumPy-backed tensor that records operations for autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``float64`` by default.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_grad_owned", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward = _backward
        self._parents = _parents
        self._grad_owned = False
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying data."""
        return self.data.copy()

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------ #
    # Gradient accumulation
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        current = self.grad
        if current is None:
            # Store by reference: most tensors receive exactly one gradient,
            # so the defensive copy the seed made is usually wasted.  The
            # array may be shared (or a read-only broadcast view), hence the
            # ownership flag guarding the in-place fast path below.
            grad = np.asarray(grad)
            if grad.dtype != self.data.dtype:
                grad = grad.astype(self.data.dtype)
                self._grad_owned = True
            else:
                self._grad_owned = False
            self.grad = grad
        elif self._grad_owned and current.shape == np.shape(grad):
            current += grad
        else:
            self.grad = current + grad
            self._grad_owned = True

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        return _apply(OPS["add"], (self, as_tensor(other)), {})

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return _apply(OPS["neg"], (self,), {})

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return _apply(OPS["mul"], (self, as_tensor(other)), {})

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return _apply(OPS["div"], (self, as_tensor(other)), {})

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        return _apply(OPS["pow"], (self,), {"exponent": exponent})

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return _apply(OPS["matmul"], (self, as_tensor(other)), {})

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        return _apply(OPS["exp"], (self,), {})

    def log(self) -> "Tensor":
        return _apply(OPS["log"], (self,), {})

    def sqrt(self) -> "Tensor":
        return _apply(OPS["sqrt"], (self,), {})

    def tanh(self) -> "Tensor":
        return _apply(OPS["tanh"], (self,), {})

    def sigmoid(self) -> "Tensor":
        return _apply(OPS["sigmoid"], (self,), {})

    def relu(self) -> "Tensor":
        return _apply(OPS["relu"], (self,), {})

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        return _apply(OPS["leaky_relu"], (self,),
                      {"negative_slope": negative_slope})

    def abs(self) -> "Tensor":
        return _apply(OPS["abs"], (self,), {})

    def clip(self, low: float, high: float) -> "Tensor":
        return _apply(OPS["clip"], (self,), {"low": low, "high": high})

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _apply(OPS["sum"], (self,), {"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        return _apply(OPS["max"], (self,), {"axis": axis, "keepdims": keepdims})

    def min(self, axis: int, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _apply(OPS["reshape"], (self,), {"shape": shape})

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        return _apply(OPS["transpose"], (self,),
                      {"axes": axes, "inverse": inverse})

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def broadcast_to(self, shape) -> "Tensor":
        """Broadcast to ``shape`` without copying (gradients sum back down).

        The forward value is a read-only NumPy broadcast view, so tiling a
        ``(B, N, 1, C)`` centre across ``K`` neighbours costs no memory —
        unlike the ``x + zeros(shape)`` idiom it replaces.
        """
        return _apply(OPS["broadcast_to"], (self,), {"shape": tuple(shape)})

    def expand_dims(self, axis: int) -> "Tensor":
        return _apply(OPS["expand_dims"], (self,), {"axis": axis})

    def squeeze(self, axis: int) -> "Tensor":
        return _apply(OPS["squeeze"], (self,), {"axis": axis})

    def __getitem__(self, index) -> "Tensor":
        return _apply(OPS["getitem"], (self,), {"index": index})

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` for scalar tensors.

        Notes
        -----
        ``.grad`` arrays must be treated as read-only: the allocation-lean
        accumulation stores gradients by reference, so an array may be
        shared between tensors or be a read-only broadcast view.  Replace a
        gradient (``t.grad = ...``) instead of mutating it in place.

        The compiled plan executor (:mod:`repro.nn.compile`) replicates this
        exact traversal — same DFS, same accumulation order — so replayed
        gradients are bit-for-bit identical to eager ones.  Keep the two in
        sync when changing the traversal.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Pass-through ops may have stored this very buffer into the
                # parents' .grad; relinquish ownership so a later backward()
                # accumulating into this node allocates instead of mutating
                # an array that now aliases other tensors' gradients.
                node._grad_owned = False


def as_tensor(value: ArrayLike) -> Tensor:
    """Return ``value`` unchanged if it is a :class:`Tensor`, else wrap it."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ---------------------------------------------------------------------- #
# Free functions that combine multiple tensors
# ---------------------------------------------------------------------- #
def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = tuple(as_tensor(t) for t in tensors)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]
    return _apply(OPS["concatenate"], tensors,
                  {"axis": axis, "splits": splits})


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = tuple(as_tensor(t) for t in tensors)
    return _apply(OPS["stack"], tensors, {"axis": axis})


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum with subgradient routed to the larger input."""
    return _apply(OPS["maximum"], (as_tensor(a), as_tensor(b)), {})


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum with subgradient routed to the smaller input."""
    return -maximum(-as_tensor(a), -as_tensor(b))


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Select ``a`` where ``condition`` is true, else ``b``.

    ``condition`` is treated as a constant (no gradient flows through it).
    """
    cond = np.asarray(condition, dtype=bool)
    return _apply(OPS["where"], (as_tensor(a), as_tensor(b)), {"cond": cond})


def detached_max(x: Tensor, axis: int = -1) -> Tensor:
    """``x.max(axis, keepdims=True)`` as a recorded, gradient-free op.

    Used for the numerically-stabilising shift of softmax/log-softmax: the
    value is data-dependent but must not carry gradient.  Unlike wrapping the
    NumPy result in a fresh constant tensor, this records a graph node, so
    compiled plans recompute the shift on every replayed step instead of
    baking a stale constant.
    """
    return _apply(OPS["detached_max"], (as_tensor(x),), {"axis": axis})


def gather_points(features: Tensor, index: np.ndarray) -> Tensor:
    """Gather per-point feature vectors using an integer index map.

    Parameters
    ----------
    features:
        Tensor of shape ``(B, N, C)``.
    index:
        Integer array of shape ``(B, M)`` or ``(B, M, K)`` whose values index
        into the ``N`` dimension of ``features``.

    Returns
    -------
    Tensor
        Shape ``(B, M, C)`` or ``(B, M, K, C)`` respectively.
    """
    features = as_tensor(features)
    index = np.asarray(index, dtype=np.int64)
    if features.ndim != 3:
        raise ValueError("features must have shape (B, N, C)")
    batch, num_points, channels = features.shape
    if index.ndim == 2:
        batch_idx = np.arange(batch)[:, None]
    elif index.ndim == 3:
        batch_idx = np.arange(batch)[:, None, None]
    else:
        raise ValueError("index must have shape (B, M) or (B, M, K)")
    flat_index = (batch_idx * num_points + index).reshape(-1)
    return _apply(OPS["gather_points"], (features,), {
        "flat_index": flat_index,
        "index_shape": index.shape,
        "rows": batch * num_points,
        "channels": channels,
    })


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
