"""Plan compiler and executor: replay captured graphs without closures.

A captured graph (:mod:`repro.nn.graph`) is turned into a
:class:`CompiledPlan` by shape-specialized passes:

* **Dead-node elimination** — only ancestors of the requested outputs (and
  the backward root) are scheduled; bookkeeping ops recorded during capture
  but never consumed are dropped.
* **Backward scheduling** — the reverse-mode schedule is derived by running
  the *same* iterative DFS topological sort as :meth:`Tensor.backward` on the
  captured graph.  Gradient accumulation order is the bit-sensitive part of
  reverse-mode autodiff (float addition is not associative); replicating the
  traversal exactly is what makes replayed gradients bit-for-bit identical
  to eager ones.
* **Buffer liveness + arena allocation** — intermediate buffers whose value
  is not needed by the backward pass (and is not a view or a view's base)
  are returned to a ``(shape, dtype)``-keyed arena after their last use and
  recycled through ``out=``-capable kernels.  ``out=`` on a NumPy ufunc is
  bitwise-identical to fresh allocation, so this pass is numerics-neutral.
* **Fusion** — single-consumer chains of fusible ops (the
  normalize→matmul→bn→relu and gather→reduce hot paths) are grouped into
  fused steps executed as one unit: one dispatch, one profiler span, buffers
  recycled within the chain.  The kernels and their order are unchanged, so
  fusion never changes bits.

Plans are cached per engine-chosen key — ``(engine tag, model identity,
batch, points, dtype)`` — in the :class:`PlanCache` that
:func:`repro.accel.attack_compute` installs for the duration of one attack
run.  Engines drive the capture-once / replay-thereafter lifecycle through
:class:`StepProgram`; any surprise (shape change, invalid capture) falls
back to the eager path silently.

Execution backends: the default NumPy executor runs the registry kernels
in-process; ``backend="torch"`` delegates to
:mod:`repro.nn.backends.torch_backend` (optional, import-guarded).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from .graph import GraphRecorder, Node, recording
from .tensor import Tensor

# Profiling sink installed by repro.telemetry.profiler.profile_ops while
# active (telemetry sits below repro.nn in the layer map, so the dependency
# points upward via this registration hook rather than an import).
_PROFILE_SINK = None

# The PlanCache installed by repro.accel.attack_compute for the current
# attack run, or None (capture disabled / outside an attack context).
_PLAN_CACHE: Optional["PlanCache"] = None


def set_profile_sink(sink) -> None:
    """Install (or clear, with ``None``) the executor's profiling sink.

    The sink must expose ``add_forward(name, seconds)`` and
    ``add_backward(name, seconds)``; :func:`repro.telemetry.profiler.profile_ops`
    registers its :class:`OpProfile` here so replayed and fused steps show up
    in ``REPRO_PROFILE_OPS=1`` reports alongside eagerly-executed ops.
    """
    global _PROFILE_SINK
    _PROFILE_SINK = sink


def plan_cache() -> Optional["PlanCache"]:
    """The PlanCache of the active attack run, or ``None``."""
    return _PLAN_CACHE


@contextmanager
def use_plan_cache(cache: Optional["PlanCache"]):
    """Install ``cache`` as the active plan cache for the ``with`` body."""
    global _PLAN_CACHE
    previous = _PLAN_CACHE
    _PLAN_CACHE = cache
    try:
        yield cache
    finally:
        _PLAN_CACHE = previous


class PlanMismatch(RuntimeError):
    """A replay was fed arrays whose shapes differ from the captured plan."""


class PlanResult:
    """Outputs (and placeholder gradients) of one plan execution."""

    __slots__ = ("outputs", "grads")

    def __init__(self, outputs: Dict[str, np.ndarray],
                 grads: Dict[str, np.ndarray]) -> None:
        self.outputs = outputs
        self.grads = grads


class _ExecOp:
    """One forward step: precomputed indices for the hot replay loop."""

    __slots__ = ("op", "in_idxs", "params", "out_idx", "dtype", "shape",
                 "use_arena", "release")

    def __init__(self, node: Node) -> None:
        self.op = node.op
        self.in_idxs = tuple(p.idx for p in node.inputs)
        self.params = node.params
        self.out_idx = node.idx
        self.dtype = node.dtype
        self.shape = node.shape
        self.use_arena = node.op.forward_out is not None
        self.release: List[Tuple[Tuple[tuple, object], int]] = []


class _BackOp:
    """One backward step: a VJP application plus its accumulation targets."""

    __slots__ = ("op", "in_idxs", "out_idx", "params", "needs", "targets")

    def __init__(self, node: Node) -> None:
        self.op = node.op
        self.in_idxs = tuple(p.idx for p in node.inputs)
        self.out_idx = node.idx
        self.params = node.params
        self.needs = tuple(p.requires_grad for p in node.inputs)
        self.targets = tuple((p.idx, p.dtype) for p in node.inputs)


class CompiledPlan:
    """A shape-specialized, replayable execution plan for one step graph."""

    def __init__(self, placeholders: Dict[str, Node],
                 outputs: Dict[str, Node], root: Optional[Node],
                 segments: List[List[_ExecOp]], backward: List[_BackOp],
                 template: List[Optional[np.ndarray]], num_slots: int,
                 num_folded: int = 0) -> None:
        self.placeholders = placeholders
        self.outputs = outputs
        self.root = root
        self.segments = segments          # fused forward schedule
        self.backward = backward
        self._template = template         # constants prefilled, by reference
        self.num_slots = num_slots
        self.num_folded = num_folded
        self.grad_slots = {name: node for name, node in placeholders.items()
                           if node.requires_grad}
        self.replays = 0
        self._segment_labels = [
            seg[0].op.name if len(seg) == 1
            else "fused:" + "+".join(step.op.name for step in seg)
            for seg in segments
        ]
        self._torch_executor = None       # lazily built by the torch backend
        self._runner = None               # exec-compiled straight-line body
        self._runner_built = False
        # Flat per-op records for the interpreted fallback loop: attribute
        # lookups and the segment nesting are hoisted out of replay entirely.
        self._fwd_flat = [
            (step.op.forward, step.op.forward_out, step.in_idxs, step.params,
             step.out_idx, step.dtype, (step.shape, step.dtype),
             step.use_arena, tuple(step.release))
            for seg in segments for step in seg
        ]
        self._back_flat = [
            (step.op.vjp, step.in_idxs, step.out_idx, step.params,
             step.needs, step.targets)
            for step in backward
        ]

    # -------------------------------------------------------------- #
    # Introspection (docs, tests, profiling)
    # -------------------------------------------------------------- #
    @property
    def num_ops(self) -> int:
        return sum(len(seg) for seg in self.segments)

    @property
    def num_fused(self) -> int:
        return sum(1 for seg in self.segments if len(seg) > 1)

    def describe(self) -> Dict[str, object]:
        return {
            "ops": self.num_ops,
            "segments": len(self.segments),
            "fused_segments": self.num_fused,
            "folded": self.num_folded,
            "backward_ops": len(self.backward),
            "slots": self.num_slots,
            "grad_slots": sorted(self.grad_slots),
            "outputs": sorted(self.outputs),
        }

    # -------------------------------------------------------------- #
    # Execution
    # -------------------------------------------------------------- #
    def execute(self, feeds: Dict[str, np.ndarray],
                backend: str = "numpy") -> PlanResult:
        """Run the plan on ``feeds`` and return outputs + placeholder grads."""
        if backend != "numpy":
            from . import backends as _backends
            result = _backends.get_backend(backend).execute(self, feeds)
        else:
            result = self._execute_numpy(feeds)
        self.replays += 1
        return result

    def _feed_values(self, feeds: Dict[str, np.ndarray]
                     ) -> List[Optional[np.ndarray]]:
        values = list(self._template)
        for name, node in self.placeholders.items():
            arr = feeds[name]
            if arr.shape != node.shape:
                raise PlanMismatch(
                    f"placeholder {name!r}: expected {node.shape}, "
                    f"got {arr.shape}")
            if arr.dtype != node.dtype:
                # Same coercion Tensor.__init__ applies to eager step inputs.
                arr = arr.astype(node.dtype)
            values[node.idx] = arr
        return values

    def _execute_numpy(self, feeds: Dict[str, np.ndarray]) -> PlanResult:
        if _PROFILE_SINK is not None:
            return self._execute_numpy_profiled(feeds)
        if not self._runner_built:
            self._runner = self._build_runner()
            self._runner_built = True
        values = self._feed_values(feeds)
        if self._runner is not None:
            outputs, grads = self._runner(values)
            return PlanResult(outputs, grads)
        return self._execute_numpy_interpreted(values)

    def _execute_numpy_interpreted(self, values: List[Optional[np.ndarray]]
                                   ) -> PlanResult:
        """Record-driven fallback when codegen is unavailable.

        Runs the identical kernel schedule as the generated runner; only the
        dispatch plumbing differs, so both produce the same bits.
        """
        getv = values.__getitem__
        arena: Dict[Tuple[tuple, object], List[np.ndarray]] = {}
        arena_get = arena.get

        for (forward, forward_out, in_idxs, params, out_idx, dtype, akey,
             use_arena, release) in self._fwd_flat:
            datas = tuple(map(getv, in_idxs))
            out = None
            if use_arena:
                free = arena_get(akey)
                if free:
                    out = forward_out(datas, params, free.pop())
            if out is None:
                out = forward(datas, params)
            if out.dtype != dtype:
                out = out.astype(dtype)
            values[out_idx] = out
            for key, idx in release:
                buf = values[idx]
                values[idx] = None
                arena.setdefault(key, []).append(buf)

        grads: List[Optional[np.ndarray]] = [None] * self.num_slots
        owned = [False] * self.num_slots
        if self.root is not None:
            # Seed exactly as Tensor.backward does for the default argument.
            seed = np.ones_like(values[self.root.idx])
            _accumulate(grads, owned, self.root.idx, self.root.dtype, seed)
            getg = grads.__getitem__
            for vjp, in_idxs, out_idx, params, needs, targets in \
                    self._back_flat:
                grad = getg(out_idx)
                if grad is None:
                    continue
                pieces = vjp(grad, values[out_idx],
                             tuple(map(getv, in_idxs)), params, needs)
                for (idx, dtype), piece in zip(targets, pieces):
                    if piece is not None:
                        _accumulate(grads, owned, idx, dtype, piece)

        outputs = {name: values[node.idx]
                   for name, node in self.outputs.items()}
        grad_out = {name: grads[node.idx]
                    for name, node in self.grad_slots.items()
                    if grads[node.idx] is not None}
        return PlanResult(outputs, grad_out)

    def _build_runner(self):
        """exec-compile the schedule into one straight-line Python function.

        The interpreted loop pays per-replay costs the schedule does not
        need: record unpacking, ``tuple(map(...))`` argument packing,
        statically-decidable branches (arena use, releases, accumulation
        targets) and a Python call per gradient accumulation.  Unrolling the
        whole forward + backward schedule into generated source — kernels,
        params and dtypes bound as keyword-only defaults, so they are locals
        in the frame — removes all of it while calling the *same* kernels in
        the *same* order with the *same* accumulation branch structure, so
        the generated runner is bitwise-identical to the interpreted one.

        Returns ``None`` when generation fails for any reason; the caller
        falls back to the interpreted loop.
        """
        binds: Dict[str, object] = {"_np": np}
        lines: List[str] = []
        emit = lines.append

        def bind(prefix: str, tag: object, value: object) -> str:
            name = f"{prefix}{tag}"
            binds[name] = value
            return name

        def argtuple(in_idxs: Tuple[int, ...]) -> str:
            args = ", ".join(f"values[{i}]" for i in in_idxs)
            return f"({args},)" if len(in_idxs) == 1 else f"({args})"

        emit("    arena = {}")
        for k, (forward, forward_out, in_idxs, params, out_idx, dtype, akey,
                use_arena, release) in enumerate(self._fwd_flat):
            fwd = bind("F", k, forward)
            par = bind("P", k, params)
            dty = bind("D", k, dtype)
            tup = argtuple(in_idxs)
            if use_arena:
                out_fn = bind("G", k, forward_out)
                key = bind("A", k, akey)
                emit("    out = None")
                emit(f"    free = arena.get({key})")
                emit("    if free:")
                emit(f"        out = {out_fn}({tup}, {par}, free.pop())")
                emit("    if out is None:")
                emit(f"        out = {fwd}({tup}, {par})")
            else:
                emit(f"    out = {fwd}({tup}, {par})")
            emit(f"    if out.dtype != {dty}:")
            emit(f"        out = out.astype({dty})")
            emit(f"    values[{out_idx}] = out")
            for key_val, idx in release:
                key = bind("R", f"{k}_{idx}", key_val)
                emit(f"    buf = values[{idx}]")
                emit(f"    values[{idx}] = None")
                emit(f"    arena.setdefault({key}, []).append(buf)")

        grad_idxs = set()
        if self.root is not None:
            grad_idxs.add(self.root.idx)
            for _, _, _, _, _, targets in self._back_flat:
                for idx, _ in targets:
                    grad_idxs.add(idx)
            for idx in sorted(grad_idxs):
                emit(f"    g{idx} = None")
                emit(f"    o{idx} = False")
            # Same seed as Tensor.backward's default argument; stored by
            # reference with owned=False, exactly like _accumulate would.
            root = self.root.idx
            emit(f"    g{root} = _np.ones_like(values[{root}])")
            for k, (vjp, in_idxs, out_idx, params, needs, targets) in \
                    enumerate(self._back_flat):
                if out_idx not in grad_idxs:
                    continue          # statically unreachable: grad stays None
                vjp_fn = bind("V", k, vjp)
                par = bind("Q", k, params)
                nee = bind("N", k, needs)
                tup = argtuple(in_idxs)
                emit(f"    if g{out_idx} is not None:")
                emit(f"        pieces = {vjp_fn}(g{out_idx}, "
                     f"values[{out_idx}], {tup}, {par}, {nee})")
                for j, (tidx, tdtype) in enumerate(targets):
                    dty = bind("T", tidx, tdtype)
                    emit(f"        p = pieces[{j}]")
                    emit("        if p is not None:")
                    # Inlined _accumulate: reference-first storage, same
                    # ownership rules, same in-place add.
                    emit(f"            if g{tidx} is None:")
                    emit("                p = _np.asarray(p)")
                    emit(f"                if p.dtype != {dty}:")
                    emit(f"                    p = p.astype({dty})")
                    emit(f"                    o{tidx} = True")
                    emit("                else:")
                    emit(f"                    o{tidx} = False")
                    emit(f"                g{tidx} = p")
                    emit(f"            elif o{tidx} and "
                         f"g{tidx}.shape == _np.shape(p):")
                    emit(f"                g{tidx} += p")
                    emit("            else:")
                    emit(f"                g{tidx} = g{tidx} + p")
                    emit(f"                o{tidx} = True")

        out_items = ", ".join(f"{name!r}: values[{node.idx}]"
                              for name, node in self.outputs.items())
        emit(f"    outputs = {{{out_items}}}")
        emit("    grads_out = {}")
        for name, node in self.grad_slots.items():
            if node.idx in grad_idxs:
                emit(f"    if g{node.idx} is not None:")
                emit(f"        grads_out[{name!r}] = g{node.idx}")
        emit("    return outputs, grads_out")

        header = "def _plan_run(values, *, " + \
            ", ".join(f"{name}={name}" for name in binds) + "):"
        source = "\n".join([header] + lines)
        try:
            namespace = dict(binds)
            exec(compile(source, "<compiled-plan>", "exec"), namespace)
            return namespace["_plan_run"]
        except Exception:
            return None

    def _execute_numpy_profiled(self, feeds: Dict[str, np.ndarray]
                                ) -> PlanResult:
        """The same schedule with per-segment / per-VJP profiler spans.

        Kept as a separate path so the common unprofiled replay pays no
        timing overhead; the kernels and their order are identical, so both
        paths produce the same bits.
        """
        sink = _PROFILE_SINK
        values = self._feed_values(feeds)
        arena: Dict[Tuple[tuple, object], List[np.ndarray]] = {}

        for label, segment in zip(self._segment_labels, self.segments):
            start = time.perf_counter()
            for step in segment:
                op = step.op
                datas = tuple(values[i] for i in step.in_idxs)
                out = None
                if step.use_arena:
                    free = arena.get((step.shape, step.dtype))
                    if free:
                        out = op.forward_out(datas, step.params, free.pop())
                if out is None:
                    out = op.forward(datas, step.params)
                if out.dtype != step.dtype:
                    out = out.astype(step.dtype)
                values[step.out_idx] = out
                for key, idx in step.release:
                    buf = values[idx]
                    values[idx] = None
                    arena.setdefault(key, []).append(buf)
            sink.add_forward(label, time.perf_counter() - start)

        grads: List[Optional[np.ndarray]] = [None] * self.num_slots
        owned = [False] * self.num_slots
        if self.root is not None:
            seed = np.ones_like(values[self.root.idx])
            _accumulate(grads, owned, self.root.idx, self.root.dtype, seed)
            for step in self.backward:
                grad = grads[step.out_idx]
                if grad is None:
                    continue
                start = time.perf_counter()
                datas = tuple(values[i] for i in step.in_idxs)
                pieces = step.op.vjp(grad, values[step.out_idx], datas,
                                     step.params, step.needs)
                for (idx, dtype), piece in zip(step.targets, pieces):
                    if piece is not None:
                        _accumulate(grads, owned, idx, dtype, piece)
                sink.add_backward(step.op.name, time.perf_counter() - start)

        outputs = {name: values[node.idx]
                   for name, node in self.outputs.items()}
        grad_out = {name: grads[node.idx]
                    for name, node in self.grad_slots.items()
                    if grads[node.idx] is not None}
        return PlanResult(outputs, grad_out)


def _accumulate(grads: List[Optional[np.ndarray]], owned: List[bool],
                idx: int, dtype, piece: np.ndarray) -> None:
    """Replicate :meth:`Tensor._accumulate` on the plan's gradient slots.

    Same reference-first storage, same ownership rules, same in-place add:
    ``a += b`` and ``a + b`` round identically, and the branch structure
    matches the eager accumulator exactly, so replayed gradients are
    bitwise-identical to eager ones.
    """
    current = grads[idx]
    if current is None:
        piece = np.asarray(piece)
        if piece.dtype != dtype:
            piece = piece.astype(dtype)
            owned[idx] = True
        else:
            owned[idx] = False
        grads[idx] = piece
    elif owned[idx] and current.shape == np.shape(piece):
        current += piece
    else:
        grads[idx] = current + piece
        owned[idx] = True


# ------------------------------------------------------------------ #
# Compilation passes
# ------------------------------------------------------------------ #
def compile_plan(recorder: GraphRecorder, outputs: Dict[str, Tensor],
                 root: Optional[Tensor] = None) -> Optional[CompiledPlan]:
    """Compile a finished capture into a :class:`CompiledPlan`.

    Returns ``None`` when the capture cannot be soundly replayed (invalid
    recording, missing outputs, empty graph) — callers fall back to eager.
    """
    if not recorder.valid or not recorder.order:
        return None

    out_nodes: Dict[str, Node] = {}
    for name, t in outputs.items():
        node = recorder.node_for(t)
        if node is None or node.kind != "op":
            return None
        out_nodes[name] = node

    root_node: Optional[Node] = None
    if root is not None:
        root_node = recorder.node_for(root)
        if root_node is None or not root_node.requires_grad:
            return None
        if int(np.prod(root_node.shape, dtype=np.int64)) != 1:
            return None

    # --- Dead-node elimination: ancestors of outputs + root ----------- #
    needed: Dict[int, Node] = {}
    stack: List[Node] = list(out_nodes.values())
    if root_node is not None:
        stack.append(root_node)
    while stack:
        node = stack.pop()
        if id(node) in needed:
            continue
        needed[id(node)] = node
        stack.extend(node.inputs)

    schedule_all = [n for n in recorder.order if id(n) in needed]
    if not schedule_all:
        return None

    # --- Constant folding: evaluate constant-only subgraphs once ------ #
    # Anything computed purely from baked constants (the coordinate
    # pipeline of a colour-field attack, BatchNorm eval arithmetic, ...)
    # produces the same value every step.  Run the exact registry kernel
    # once here and bake the result, so replays skip the op entirely.
    # Same kernel, same inputs -> same bits; gradient-bearing nodes can
    # never fold because constants never require grad.
    out_ids = {id(n) for n in out_nodes.values()}
    if root_node is not None:
        out_ids.add(id(root_node))
    folded: Dict[int, np.ndarray] = {}
    for node in schedule_all:
        if node.requires_grad or id(node) in out_ids:
            continue
        datas = []
        for parent in node.inputs:
            if parent.kind == "constant":
                datas.append(parent.data)
            elif id(parent) in folded:
                datas.append(folded[id(parent)])
            else:
                datas = None
                break
        if datas is None:
            continue
        value = node.op.forward(tuple(datas), node.params)
        if value.dtype != node.dtype:
            value = value.astype(node.dtype)
        folded[id(node)] = value

    fold_nodes = [n for n in schedule_all if id(n) in folded]
    schedule = [n for n in schedule_all if id(n) not in folded]
    if not schedule:
        return None

    # --- Backward schedule: the exact Tensor.backward() traversal ----- #
    back_nodes: List[Node] = []
    if root_node is not None:
        topo: List[Node] = []
        visited: set = set()
        dfs: List[Tuple[Node, bool]] = [(root_node, False)]
        while dfs:
            node, processed = dfs.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            dfs.append((node, True))
            for parent in node.inputs:
                if parent.requires_grad and id(parent) not in visited:
                    dfs.append((parent, False))
        back_nodes = [n for n in reversed(topo) if n.kind == "op"]

    # --- Slot assignment --------------------------------------------- #
    leaves = [n for n in needed.values() if n.kind != "op"]
    num_slots = 0
    for node in leaves + fold_nodes + schedule:
        node.idx = num_slots
        num_slots += 1

    template: List[Optional[np.ndarray]] = [None] * num_slots
    for node in leaves:
        if node.kind == "constant":
            template[node.idx] = node.data
    for node in fold_nodes:
        template[node.idx] = folded[id(node)]

    # --- Liveness: which buffers may be recycled ---------------------- #
    pinned: set = set(id(n) for n in out_nodes.values())
    if root_node is not None:
        pinned.add(id(root_node))
    for node in back_nodes:
        pinned.add(id(node))              # VJPs read the forward value
        for parent in node.inputs:
            pinned.add(id(parent))        # ... and the input values
    for node in schedule:
        if node.op.returns_view:
            pinned.add(id(node))          # views own no memory
            for parent in node.inputs:
                pinned.add(id(parent))    # and must keep their base alive

    last_use: Dict[int, int] = {}
    for i, node in enumerate(schedule):
        for parent in node.inputs:
            if parent.kind == "op" and id(parent) not in folded:
                # Folded values live in the shared template; recycling
                # them would hand the template's buffer to the arena.
                last_use[id(parent)] = i

    exec_ops = [_ExecOp(node) for node in schedule]
    for node_id, pos in last_use.items():
        if node_id in pinned:
            continue
        node = needed[node_id]
        exec_ops[pos].release.append(((node.shape, node.dtype), node.idx))

    # --- Fusion: group single-consumer chains of fusible ops ---------- #
    scheduled = {id(n) for n in schedule}
    consumers: Dict[int, int] = {}
    for node in schedule:
        for parent in node.inputs:
            if parent.kind == "op" and id(parent) in scheduled:
                consumers[id(parent)] = consumers.get(id(parent), 0) + 1

    segments: List[List[_ExecOp]] = []
    for i, node in enumerate(schedule):
        if segments and node.op.fuse is not None:
            prev = schedule[i - 1]
            chained = (
                prev.op.fuse is not None
                and any(p is prev for p in node.inputs)
                and consumers.get(id(prev), 0) == 1
                and segments[-1][-1].out_idx == prev.idx
            )
            if chained:
                segments[-1].append(exec_ops[i])
                continue
        segments.append([exec_ops[i]])

    placeholders = dict(recorder.placeholders)
    backward = [_BackOp(node) for node in back_nodes]
    return CompiledPlan(placeholders, out_nodes, root_node, segments,
                        backward, template, num_slots,
                        num_folded=len(fold_nodes))


# ------------------------------------------------------------------ #
# The engine-facing lifecycle
# ------------------------------------------------------------------ #
class StepProgram:
    """Capture-once / replay-thereafter driver for one step computation.

    Engines obtain a program from :meth:`PlanCache.program` keyed by
    everything that pins the plan (engine tag, scene identity, shapes), feed
    the step inputs, and try :meth:`replay`.  On the first step (or after
    any fallback) they run the eager computation inside :meth:`capture` and
    :meth:`finalize` the plan.  Gradients land on the placeholder tensors'
    ``.grad`` exactly as the eager backward pass leaves them.
    """

    def __init__(self, cache: "PlanCache",
                 placeholders: Dict[str, Tensor]) -> None:
        self._cache = cache
        self.placeholders = placeholders
        self._recorder: Optional[GraphRecorder] = None
        self._plan: Optional[CompiledPlan] = None
        self._invalid = False

    @property
    def ready(self) -> bool:
        return self._plan is not None

    @property
    def plan(self) -> Optional[CompiledPlan]:
        return self._plan

    def tensor(self, name: str) -> Tensor:
        return self.placeholders[name]

    def feed(self, **arrays: np.ndarray) -> None:
        """Bind fresh step inputs to the persistent placeholder tensors."""
        for name, arr in arrays.items():
            t = self.placeholders[name]
            arr = np.asarray(arr)
            if arr.dtype != t.data.dtype:
                # Same cast Tensor.__init__ would apply under the policy.
                arr = arr.astype(t.data.dtype)
            t.data = arr

    @contextmanager
    def capture(self):
        """Record the eager step if this program still needs a plan."""
        if self._plan is not None or self._invalid:
            yield False
            return
        recorder = GraphRecorder(self.placeholders)
        with recording(recorder):
            yield True
        self._recorder = recorder

    def finalize(self, outputs: Dict[str, Tensor],
                 root: Optional[Tensor] = None) -> None:
        """Compile the capture made under :meth:`capture` (no-op otherwise)."""
        recorder, self._recorder = self._recorder, None
        if recorder is None:
            return
        plan = compile_plan(recorder, outputs, root)
        if plan is None:
            self._invalid = True
            self._cache.stats["fallbacks"] += 1
        else:
            self._plan = plan
            self._cache.stats["captures"] += 1

    def replay(self) -> Optional[Dict[str, np.ndarray]]:
        """Replay the compiled plan on the current placeholder data.

        Returns the outputs dict, or ``None`` when no plan is available (or
        the feed no longer matches) — the caller then runs the eager path.
        Placeholder tensors that require grad receive their ``.grad``.
        """
        plan = self._plan
        if plan is None:
            return None
        feeds = {name: t.data for name, t in self.placeholders.items()}
        try:
            result = plan.execute(feeds, backend=self._cache.backend)
        except PlanMismatch:
            self._cache.stats["fallbacks"] += 1
            return None
        for name, t in self.placeholders.items():
            if t.requires_grad:
                grad = result.grads.get(name)
                if grad is not None:
                    t.grad = grad
                    t._grad_owned = False
        self._cache.stats["replays"] += 1
        return result.outputs


class PlanCache:
    """Per-attack-run cache of :class:`StepProgram` instances.

    Installed by :func:`repro.accel.attack_compute` (when the policy enables
    graph capture) and discarded with the run, so baked-by-reference scene
    constants can never leak across runs.  Keys are engine-chosen; see
    docs/COMPILE.md for the keying rules per engine.
    """

    def __init__(self, backend: str = "numpy") -> None:
        self.backend = backend
        self._programs: Dict[tuple, StepProgram] = {}
        self.stats = {"programs": 0, "captures": 0, "replays": 0,
                      "fallbacks": 0}

    def program(self, key: tuple, builder) -> StepProgram:
        """The program for ``key``, creating it via ``builder()`` once.

        ``builder`` returns the placeholder dict (name → Tensor) used for
        both the capture step and all replays.
        """
        program = self._programs.get(key)
        if program is None:
            program = StepProgram(self, builder())
            self._programs[key] = program
            self.stats["programs"] += 1
        return program

    def __len__(self) -> int:
        return len(self._programs)


__all__ = [
    "CompiledPlan", "PlanCache", "PlanMismatch", "PlanResult", "StepProgram",
    "compile_plan", "plan_cache", "set_profile_sink", "use_plan_cache",
]
