"""Functional neural-network operations built on :mod:`repro.nn.tensor`."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..accel.cache import neighborhoods
from ..accel.policy import compute_dtype
from .tensor import Tensor, as_tensor, detached_max, gather_points, maximum, where


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The stabilising shift is a recorded gradient-free op (not a baked
    constant), so captured plans recompute it per step — see
    :func:`repro.nn.tensor.detached_max`.
    """
    logits = as_tensor(logits)
    shifted = logits - detached_max(logits, axis=axis)
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = as_tensor(logits)
    shifted = logits - detached_max(logits, axis=axis)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer label array (as a plain NumPy constant)."""
    labels = np.asarray(labels, dtype=np.int64)
    eye = np.eye(num_classes, dtype=compute_dtype())
    return eye[labels]


def cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    weight: Optional[np.ndarray] = None,
    label_smoothing: float = 0.0,
) -> Tensor:
    """Mean cross-entropy loss over all leading dimensions.

    Parameters
    ----------
    logits:
        Tensor of shape ``(..., num_classes)``.
    labels:
        Integer array of shape ``(...)``.
    weight:
        Optional per-class weights of shape ``(num_classes,)``.
    label_smoothing:
        Amount of probability mass spread uniformly over non-target classes.
    """
    logits = as_tensor(logits)
    num_classes = logits.shape[-1]
    log_probs = log_softmax(logits, axis=-1)
    targets = one_hot(labels, num_classes)
    if label_smoothing > 0.0:
        targets = targets * (1.0 - label_smoothing) + label_smoothing / num_classes
    if weight is not None:
        targets = targets * np.asarray(weight)[..., :]
    per_point = -(log_probs * Tensor(targets)).sum(axis=-1)
    return per_point.mean()


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``labels`` under ``log_probs``."""
    log_probs = as_tensor(log_probs)
    targets = one_hot(labels, log_probs.shape[-1])
    return -(log_probs * Tensor(targets)).sum(axis=-1).mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = as_tensor(prediction) - as_tensor(target)
    return (diff * diff).mean()


def hinge(value: Tensor) -> Tensor:
    """``max(value, 0)`` — the hinge used by the adversarial losses."""
    return maximum(value, Tensor(np.zeros(1)))


def masked_mean(values: Tensor, mask: np.ndarray) -> Tensor:
    """Mean of ``values`` over positions where boolean ``mask`` is true."""
    mask = np.asarray(mask, dtype=compute_dtype())
    total = float(mask.sum())
    if total == 0:
        return Tensor(np.zeros(()))
    return (values * Tensor(mask)).sum() / total


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or ``rate`` is zero."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(compute_dtype()) / keep
    return x * Tensor(mask)


def _interpolation_weights(source_coords: np.ndarray, target_coords: np.ndarray,
                           k: int, eps: float) -> Tuple[np.ndarray, np.ndarray]:
    """Neighbour indices and inverse-distance weights for interpolation."""
    diff = target_coords[:, :, None, :] - source_coords[:, None, :, :]
    dist2 = np.sum(diff ** 2, axis=-1)
    idx = np.argsort(dist2, axis=-1)[:, :, :k]
    nearest = np.take_along_axis(dist2, idx, axis=-1)
    weights = 1.0 / (nearest + eps)
    weights = weights / weights.sum(axis=-1, keepdims=True)
    return idx, weights


def knn_interpolate(
    features: Tensor,
    source_coords: np.ndarray,
    target_coords: np.ndarray,
    k: int = 3,
    eps: float = 1e-8,
    slot: Optional[tuple] = None,
) -> Tensor:
    """Inverse-distance weighted interpolation of features onto new points.

    This is the feature-propagation step of PointNet++: each target point
    receives a weighted average of the features of its ``k`` nearest source
    points, weighted by inverse distance.  Neighbour indices and weights are
    computed outside the autograd graph (they depend only on coordinates,
    which are treated as constants for this step).

    Parameters
    ----------
    features:
        ``(B, M, C)`` features at the source points.
    source_coords:
        ``(B, M, 3)`` coordinates of the source points.
    target_coords:
        ``(B, N, 3)`` coordinates of the points to interpolate onto.
    slot:
        Optional stable call-site label; when given, the indices and weights
        are served from the active :class:`~repro.accel.NeighborhoodCache`
        (exact hits on unchanged coordinates, stale reuse in fast mode).
    """
    features = as_tensor(features)
    source_coords = np.asarray(source_coords)
    target_coords = np.asarray(target_coords)
    k = min(k, source_coords.shape[1])

    idx, weights = neighborhoods().memo(
        ("interp", k, eps),
        (source_coords, target_coords),
        lambda: _interpolation_weights(source_coords, target_coords, k, eps),
        slot=slot,
    )

    gathered = gather_points(features, idx)            # (B, N, k, C)
    weighted = gathered * Tensor(weights[..., None])
    return weighted.sum(axis=2)


__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "hinge",
    "masked_mean",
    "dropout",
    "knn_interpolate",
    "where",
]
