"""Common neural-network layers used by the PCSS models."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..accel.policy import compute_dtype, current_policy
from . import init
from .functional import dropout
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Affine transformation applied to the last dimension of the input."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class BatchNorm(Module):
    """Batch normalisation over all dimensions except the last (channel) one.

    During training, batch statistics are used and running statistics are
    updated with momentum.  During evaluation (the regime in which attacks
    run), the frozen running statistics are used so the model is a fixed,
    deterministic, differentiable function of its input.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._buffers = ("running_mean", "running_var")
        self._eval_cache = None

    def _eval_stats(self):
        """Frozen mean/std tensors, rebuilt only when the buffers change.

        The running buffers are replaced (never mutated in place) by both
        the training update and ``load_state_dict``, so identity against
        the *retained* buffer references is a sound cache key — holding the
        references also pins the arrays, so a freed buffer's address can
        never be recycled into a false match.  Saves a sqrt and two tensor
        wraps on every evaluation forward — the regime every attack step
        runs in.
        """
        cache = self._eval_cache
        if (cache is None or cache[0] is not self.running_mean
                or cache[1] is not self.running_var
                or cache[2] != compute_dtype()):
            mean = Tensor(self.running_mean)
            std = Tensor(np.sqrt(self.running_var + self.eps))
            cache = (self.running_mean, self.running_var, compute_dtype(),
                     mean, std)
            self._eval_cache = cache
        return cache[3], cache[4]

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            axes = tuple(range(x.ndim - 1))
            batch_mean = x.data.mean(axis=axes)
            batch_var = x.data.var(axis=axes)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * batch_mean)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * batch_var)
            mean = x.mean(axis=axes, keepdims=True)
            var = ((x - mean) * (x - mean)).mean(axis=axes, keepdims=True)
            normalized = (x - mean) / (var + self.eps).sqrt()
        else:
            mean, std = self._eval_stats()
            if not current_policy().is_exact:
                # Fast-math: fold normalisation and the affine into a single
                # channel-wise scale/shift — half the full-size elementwise
                # traffic and a one-product backward.  Exactness mode keeps
                # the seed's op-by-op arithmetic below.
                scale = self.gamma / std
                shift = self.beta - mean * scale
                return x * scale + shift
            normalized = (x - mean) / std
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout layer (identity in evaluation mode)."""

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, self._rng, self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sequential(Module):
    """Run a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.children_list = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.children_list:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.children_list)

    def __len__(self) -> int:
        return len(self.children_list)


class SharedMLP(Module):
    """A per-point MLP: Linear + BatchNorm + ReLU stacks applied pointwise.

    This is the ubiquitous building block of point-cloud networks
    (PointNet/PointNet++/RandLA-Net all describe their layers as "shared MLPs").
    """

    def __init__(
        self,
        channels: Sequence[int],
        batch_norm: bool = True,
        final_activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        layers: List[Module] = []
        for i in range(len(channels) - 1):
            layers.append(Linear(channels[i], channels[i + 1], rng=rng))
            is_last = i == len(channels) - 2
            if batch_norm:
                layers.append(BatchNorm(channels[i + 1]))
            if final_activation or not is_last:
                layers.append(ReLU())
        self.body = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


__all__ = [
    "Linear",
    "BatchNorm",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sequential",
    "SharedMLP",
]
