"""Module / Parameter abstractions, mirroring the familiar torch.nn API."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural network modules.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, mirroring the PyTorch convention.  Modules support
    ``train()`` / ``eval()`` switching, recursive parameter iteration and
    ``state_dict`` / ``load_state_dict`` round-trips.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full_name)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full_name}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield non-trainable state (e.g. batch-norm running statistics)."""
        buffer_names = getattr(self, "_buffers", ())
        for name in buffer_names:
            full_name = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            yield full_name, getattr(self, name)
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, Module):
                yield from value.named_buffers(full_name)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_buffers(f"{full_name}.{i}")

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------ #
    # Mode switching
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------ #
    # Gradient handling
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[f"buffer:{name}"] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = {name: None for name, _ in self.named_buffers()}
        for key, value in state.items():
            if key.startswith("buffer:"):
                name = key[len("buffer:"):]
                if name not in buffers:
                    raise KeyError(f"unexpected buffer {name!r} in state dict")
                self._assign_buffer(name, value)
            else:
                if key not in params:
                    raise KeyError(f"unexpected parameter {key!r} in state dict")
                if params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{params[key].shape} vs {value.shape}"
                    )
                params[key].data = np.array(value, dtype=np.float64, copy=True)
        missing = set(params) - {k for k in state if not k.startswith("buffer:")}
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")

    def _assign_buffer(self, dotted_name: str, value: np.ndarray) -> None:
        parts = dotted_name.split(".")
        target = self
        for part in parts[:-1]:
            if part.isdigit():
                target = target[int(part)] if isinstance(target, (list, tuple)) else getattr(target, part)
            else:
                attr = getattr(target, part)
                target = attr
        setattr(target, parts[-1], np.array(value, copy=True))

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        return int(sum(param.size for param in self.parameters()))


__all__ = ["Module", "Parameter"]
