"""``repro.nn`` — a NumPy reverse-mode autodiff and neural-network substrate.

This package stands in for PyTorch / TensorFlow in the paper's experiment
stack.  It provides tensors with automatic differentiation, common layers,
optimizers and (de)serialization — everything required to train the PCSS
models and to compute input gradients for the attacks.

The engine has three layers behind one Tensor API: the eager autograd path
(:mod:`~repro.nn.tensor`, driven by the :mod:`~repro.nn.ops` registry),
graph capture (:mod:`~repro.nn.graph`), and the plan compiler/executor with
optional torch execution (:mod:`~repro.nn.compile`,
:mod:`~repro.nn.backends`) — see docs/COMPILE.md.
"""

from .backends import available_backends, has_torch
from .compile import (
    CompiledPlan,
    PlanCache,
    PlanMismatch,
    StepProgram,
    compile_plan,
    plan_cache,
    set_profile_sink,
    use_plan_cache,
)
from .functional import (
    cross_entropy,
    dropout,
    hinge,
    knn_interpolate,
    log_softmax,
    masked_mean,
    mse_loss,
    nll_loss,
    one_hot,
    softmax,
)
from .graph import GraphRecorder, recording
from .layers import BatchNorm, Dropout, LeakyReLU, Linear, ReLU, Sequential, SharedMLP
from .module import Module, Parameter
from .ops import OPS, OpDef, register
from .optim import SGD, Adam, Optimizer, StepLR
from .serialization import load_into, load_state_dict, save_state_dict
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    detached_max,
    gather_points,
    maximum,
    minimum,
    ones,
    stack,
    where,
    zeros,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "maximum",
    "minimum",
    "where",
    "detached_max",
    "gather_points",
    "zeros",
    "ones",
    "OPS",
    "OpDef",
    "register",
    "GraphRecorder",
    "recording",
    "CompiledPlan",
    "PlanCache",
    "PlanMismatch",
    "StepProgram",
    "compile_plan",
    "plan_cache",
    "use_plan_cache",
    "set_profile_sink",
    "available_backends",
    "has_torch",
    "Module",
    "Parameter",
    "Linear",
    "BatchNorm",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sequential",
    "SharedMLP",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "softmax",
    "log_softmax",
    "one_hot",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "hinge",
    "masked_mean",
    "dropout",
    "knn_interpolate",
    "save_state_dict",
    "load_state_dict",
    "load_into",
]
