"""``repro.nn`` — a NumPy reverse-mode autodiff and neural-network substrate.

This package stands in for PyTorch / TensorFlow in the paper's experiment
stack.  It provides tensors with automatic differentiation, common layers,
optimizers and (de)serialization — everything required to train the PCSS
models and to compute input gradients for the attacks.
"""

from .functional import (
    cross_entropy,
    dropout,
    hinge,
    knn_interpolate,
    log_softmax,
    masked_mean,
    mse_loss,
    nll_loss,
    one_hot,
    softmax,
)
from .layers import BatchNorm, Dropout, LeakyReLU, Linear, ReLU, Sequential, SharedMLP
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, StepLR
from .serialization import load_into, load_state_dict, save_state_dict
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    gather_points,
    maximum,
    minimum,
    ones,
    stack,
    where,
    zeros,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "maximum",
    "minimum",
    "where",
    "gather_points",
    "zeros",
    "ones",
    "Module",
    "Parameter",
    "Linear",
    "BatchNorm",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sequential",
    "SharedMLP",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "softmax",
    "log_softmax",
    "one_hot",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "hinge",
    "masked_mean",
    "dropout",
    "knn_interpolate",
    "save_state_dict",
    "load_state_dict",
    "load_into",
]
