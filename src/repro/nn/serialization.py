"""Saving and loading of model state dictionaries as ``.npz`` archives."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ioutils import atomic_write
from .module import Module


def save_state_dict(module: Module, path: str) -> None:
    """Serialize ``module.state_dict()`` to a compressed ``.npz`` file.

    The write is atomic, so concurrent pipeline workers racing to cache the
    same checkpoint can never leave a truncated archive for a third to load.
    """
    state = module.state_dict()
    atomic_write(path, lambda handle: np.savez_compressed(handle, **state))


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a state dictionary previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def load_into(module: Module, path: str) -> Module:
    """Load weights from ``path`` into ``module`` and return it."""
    module.load_state_dict(load_state_dict(path))
    return module


__all__ = ["save_state_dict", "load_state_dict", "load_into"]
