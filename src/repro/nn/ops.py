"""The single op-table shared by eager autograd, graph capture and compile.

Every differentiable operation in :mod:`repro.nn` is declared once here as an
:class:`OpDef`: a forward kernel, a vector-Jacobian product, and the metadata
the compiler needs (fusion tag, view/aliasing behaviour, an optional
``out=``-capable forward for arena buffer reuse).  The eager path
(:meth:`repro.nn.tensor.Tensor` methods) and the capture/replay path
(:mod:`repro.nn.graph` / :mod:`repro.nn.compile`) both execute these exact
kernels, which is what makes compiled-plan replay bit-for-bit identical to
eager execution: same kernels, same order, same accumulation arithmetic.

Adding an op is one :func:`register` call; the Tensor method, the recorded
graph node, the plan executor and the profiler label all follow from it.

The VJP convention: ``vjp(grad, out, inputs, params, needs) -> tuple`` with
one entry per input, ``None`` for inputs whose gradient is not needed.  The
arithmetic inside each VJP is copied verbatim from the historical per-op
closures (including every :func:`_unbroadcast` application), so gradients are
bitwise identical to the pre-table engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

Forward = Callable[[Tuple[np.ndarray, ...], dict], np.ndarray]
Vjp = Callable[
    [np.ndarray, np.ndarray, Tuple[np.ndarray, ...], dict, Tuple[bool, ...]],
    Tuple[Optional[np.ndarray], ...],
]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _fast_max(data: np.ndarray, axis: int) -> np.ndarray:
    """``data.max(axis, keepdims=True)`` via a binary tree of ``np.maximum``.

    NumPy's reduction loop is strided-access bound for middle axes (the
    ``(B, N, K, C)`` pooling pattern of every point-cloud model); pairing
    halves with vectorised ``np.maximum`` calls is ~2.5× faster.  Maximum is
    exact (no rounding), so the result is bit-identical to ``np.max`` for
    every evaluation order.
    """
    n = data.shape[axis]
    if n <= 2:
        return data.max(axis=axis, keepdims=True)
    moved = np.moveaxis(data, axis, 0)
    while moved.shape[0] > 1:
        m = moved.shape[0]
        half = m // 2
        paired = np.maximum(moved[:half], moved[half:2 * half])
        if m % 2:
            paired[0] = np.maximum(paired[0], moved[-1])
        moved = paired
    return np.moveaxis(moved, 0, axis)


class OpDef:
    """One registry entry: forward kernel, VJP, and compiler metadata.

    Attributes
    ----------
    name:
        Registry key; also the profiler span label.
    forward / vjp:
        The kernels (see module docstring for the VJP convention).
    differentiable:
        ``False`` marks data-dependent-constant ops (e.g. the softmax shift):
        they are recorded in captured graphs so replay recomputes them, but no
        gradient ever flows through them.
    fuse:
        Fusion tag (``"ew"``, ``"matmul"``, ``"reduce"``, ``"gather"``,
        ``"shape"`` or ``None``) used by the plan compiler to group hot chains
        (normalize→matmul→bn→relu, gather→reduce) into fused steps.
    returns_view:
        ``True`` when the forward output may alias an input's memory
        (reshape/transpose/broadcast-style ops).  The compiler's arena
        allocator never recycles the buffers of such nodes or their inputs.
    forward_out:
        Optional ``(inputs, params, out) -> ndarray`` variant writing into a
        preallocated buffer.  Only registered for single-ufunc kernels, where
        ``out=`` is guaranteed bitwise-identical to fresh allocation.
    """

    __slots__ = ("name", "forward", "vjp", "differentiable", "fuse",
                 "returns_view", "forward_out")

    def __init__(self, name: str, forward: Forward, vjp: Optional[Vjp],
                 *, differentiable: bool = True, fuse: Optional[str] = None,
                 returns_view: bool = False, forward_out=None) -> None:
        self.name = name
        self.forward = forward
        self.vjp = vjp
        self.differentiable = differentiable
        self.fuse = fuse
        self.returns_view = returns_view
        self.forward_out = forward_out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpDef({self.name!r})"


OPS: Dict[str, OpDef] = {}


def register(name: str, forward: Forward, vjp: Optional[Vjp] = None,
             **kwargs) -> OpDef:
    """Register an :class:`OpDef` under ``name`` and return it."""
    op = OpDef(name, forward, vjp, **kwargs)
    OPS[name] = op
    return op


# ---------------------------------------------------------------------- #
# Arithmetic
# ---------------------------------------------------------------------- #
def _add_fwd(inputs, params):
    return inputs[0] + inputs[1]


def _add_out(inputs, params, out):
    return np.add(inputs[0], inputs[1], out=out)


def _add_vjp(grad, out, inputs, params, needs):
    a, b = inputs
    return (
        _unbroadcast(grad, a.shape) if needs[0] else None,
        _unbroadcast(grad, b.shape) if needs[1] else None,
    )


register("add", _add_fwd, _add_vjp, fuse="ew", forward_out=_add_out)


def _neg_fwd(inputs, params):
    return -inputs[0]


def _neg_out(inputs, params, out):
    return np.negative(inputs[0], out=out)


def _neg_vjp(grad, out, inputs, params, needs):
    return (-grad,)


register("neg", _neg_fwd, _neg_vjp, fuse="ew", forward_out=_neg_out)


def _mul_fwd(inputs, params):
    return inputs[0] * inputs[1]


def _mul_out(inputs, params, out):
    return np.multiply(inputs[0], inputs[1], out=out)


def _mul_vjp(grad, out, inputs, params, needs):
    a, b = inputs
    return (
        _unbroadcast(grad * b, a.shape) if needs[0] else None,
        _unbroadcast(grad * a, b.shape) if needs[1] else None,
    )


register("mul", _mul_fwd, _mul_vjp, fuse="ew", forward_out=_mul_out)


def _div_fwd(inputs, params):
    return inputs[0] / inputs[1]


def _div_out(inputs, params, out):
    return np.divide(inputs[0], inputs[1], out=out)


def _div_vjp(grad, out, inputs, params, needs):
    a, b = inputs
    return (
        _unbroadcast(grad / b, a.shape) if needs[0] else None,
        _unbroadcast(-grad * a / (b ** 2), b.shape) if needs[1] else None,
    )


register("div", _div_fwd, _div_vjp, fuse="ew", forward_out=_div_out)


def _pow_fwd(inputs, params):
    return inputs[0] ** params["exponent"]


def _pow_vjp(grad, out, inputs, params, needs):
    exponent = params["exponent"]
    return (grad * exponent * inputs[0] ** (exponent - 1),)


register("pow", _pow_fwd, _pow_vjp, fuse="ew")


def _matmul_fwd(inputs, params):
    return inputs[0] @ inputs[1]


def _matmul_vjp(grad, out, inputs, params, needs):
    a, b = inputs
    grad_a = grad_b = None
    if needs[0]:
        grad_a = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
    if needs[1]:
        grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
    return (grad_a, grad_b)


register("matmul", _matmul_fwd, _matmul_vjp, fuse="matmul")


# ---------------------------------------------------------------------- #
# Elementwise functions
# ---------------------------------------------------------------------- #
def _exp_fwd(inputs, params):
    return np.exp(inputs[0])


def _exp_out(inputs, params, out):
    return np.exp(inputs[0], out=out)


def _exp_vjp(grad, out, inputs, params, needs):
    return (grad * out,)


register("exp", _exp_fwd, _exp_vjp, fuse="ew", forward_out=_exp_out)


def _log_fwd(inputs, params):
    return np.log(inputs[0])


def _log_out(inputs, params, out):
    return np.log(inputs[0], out=out)


def _log_vjp(grad, out, inputs, params, needs):
    return (grad / inputs[0],)


register("log", _log_fwd, _log_vjp, fuse="ew", forward_out=_log_out)


def _sqrt_fwd(inputs, params):
    return np.sqrt(inputs[0])


def _sqrt_out(inputs, params, out):
    return np.sqrt(inputs[0], out=out)


def _sqrt_vjp(grad, out, inputs, params, needs):
    # Division floor for the sqrt(0) subgradient.  1e-300 (the seed value,
    # kept for float64 bit-exactness) underflows to 0 in float32 and would
    # divide by zero; the float32 floor is chosen so 0.5/floor stays far from
    # the float32 overflow boundary (an inf here turns downstream `huge * 0`
    # chain products into NaN).
    floor = 1e-300 if out.dtype == np.float64 else 1e-30
    return (grad * 0.5 / np.maximum(out, floor),)


register("sqrt", _sqrt_fwd, _sqrt_vjp, fuse="ew", forward_out=_sqrt_out)


def _tanh_fwd(inputs, params):
    return np.tanh(inputs[0])


def _tanh_out(inputs, params, out):
    return np.tanh(inputs[0], out=out)


def _tanh_vjp(grad, out, inputs, params, needs):
    return (grad * (1.0 - out ** 2),)


register("tanh", _tanh_fwd, _tanh_vjp, fuse="ew", forward_out=_tanh_out)


def _sigmoid_fwd(inputs, params):
    return 1.0 / (1.0 + np.exp(-inputs[0]))


def _sigmoid_vjp(grad, out, inputs, params, needs):
    return (grad * out * (1.0 - out),)


register("sigmoid", _sigmoid_fwd, _sigmoid_vjp, fuse="ew")


def _relu_fwd(inputs, params):
    x = inputs[0]
    return x * (x > 0)


def _relu_vjp(grad, out, inputs, params, needs):
    return (grad * (inputs[0] > 0),)


register("relu", _relu_fwd, _relu_vjp, fuse="ew")


def _leaky_relu_fwd(inputs, params):
    x = inputs[0]
    return x * np.where(x > 0, 1.0, params["negative_slope"])


def _leaky_relu_vjp(grad, out, inputs, params, needs):
    x = inputs[0]
    return (grad * np.where(x > 0, 1.0, params["negative_slope"]),)


register("leaky_relu", _leaky_relu_fwd, _leaky_relu_vjp, fuse="ew")


def _abs_fwd(inputs, params):
    return np.abs(inputs[0])


def _abs_out(inputs, params, out):
    return np.abs(inputs[0], out=out)


def _abs_vjp(grad, out, inputs, params, needs):
    return (grad * np.sign(inputs[0]),)


register("abs", _abs_fwd, _abs_vjp, fuse="ew", forward_out=_abs_out)


def _clip_fwd(inputs, params):
    return np.clip(inputs[0], params["low"], params["high"])


def _clip_vjp(grad, out, inputs, params, needs):
    x = inputs[0]
    mask = (x >= params["low"]) & (x <= params["high"])
    return (grad * mask,)


register("clip", _clip_fwd, _clip_vjp, fuse="ew")


# ---------------------------------------------------------------------- #
# Reductions
# ---------------------------------------------------------------------- #
def _sum_fwd(inputs, params):
    return inputs[0].sum(axis=params["axis"], keepdims=params["keepdims"])


def _sum_vjp(grad, out, inputs, params, needs):
    x = inputs[0]
    axis, keepdims = params["axis"], params["keepdims"]
    g = grad
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = frozenset(a % x.ndim for a in axes)
        # reshape == expand_dims here (pure metadata, same values), minus
        # the per-call axis-normalisation overhead on the backward hot path.
        g = g.reshape(tuple(1 if i in axes else size
                            for i, size in enumerate(x.shape)))
    # A read-only broadcast view is enough: gradient accumulation never
    # mutates gradients it does not own.
    return (np.broadcast_to(g, x.shape),)


register("sum", _sum_fwd, _sum_vjp, fuse="reduce")


def _max_fwd(inputs, params):
    x = inputs[0]
    max_keep = _fast_max(x, params["axis"] % x.ndim)
    if params["keepdims"]:
        return max_keep
    return np.squeeze(max_keep, axis=params["axis"])


def _max_vjp(grad, out, inputs, params, needs):
    x = inputs[0]
    axis, keepdims = params["axis"], params["keepdims"]
    # Maximum is exact, so re-expanding the output reconstructs the
    # keepdims intermediate bit-for-bit; the tie mask is then identical to
    # the one the eager closure builds from its saved forward value.
    if keepdims:
        max_keep = out
        g = grad
    else:
        # reshape == expand_dims (metadata only); shape derived from the
        # saved input, sidestepping NumPy's axis-normalisation overhead.
        shape = list(x.shape)
        shape[axis % x.ndim] = 1
        max_keep = out.reshape(shape)
        g = grad.reshape(shape)
    mask = (x == max_keep)
    counts = mask.sum(axis=axis, keepdims=True)
    return (mask * g / counts,)


register("max", _max_fwd, _max_vjp, fuse="reduce")


def _detached_max_fwd(inputs, params):
    return inputs[0].max(axis=params["axis"], keepdims=True)


# The numerically-stabilising shift of softmax/log_softmax: a data-dependent
# constant.  Declaring it as a recorded, gradient-free op (instead of a bare
# ``Tensor(x.data.max(...))``) is what keeps captured plans valid when the
# logits change between steps — replay recomputes the shift.
register("detached_max", _detached_max_fwd, None,
         differentiable=False, fuse="reduce")


# ---------------------------------------------------------------------- #
# Shape manipulation
# ---------------------------------------------------------------------- #
def _reshape_fwd(inputs, params):
    return inputs[0].reshape(params["shape"])


def _reshape_vjp(grad, out, inputs, params, needs):
    return (grad.reshape(inputs[0].shape),)


register("reshape", _reshape_fwd, _reshape_vjp, fuse="shape", returns_view=True)


def _transpose_fwd(inputs, params):
    return inputs[0].transpose(params["axes"])


def _transpose_vjp(grad, out, inputs, params, needs):
    return (grad.transpose(params["inverse"]),)


register("transpose", _transpose_fwd, _transpose_vjp, fuse="shape",
         returns_view=True)


def _broadcast_to_fwd(inputs, params):
    # A read-only view: tiling a (B, N, 1, C) centre across K neighbours
    # costs no memory, and gradients sum back down via _unbroadcast.
    return np.broadcast_to(inputs[0], params["shape"])


def _broadcast_to_vjp(grad, out, inputs, params, needs):
    return (_unbroadcast(grad, inputs[0].shape),)


register("broadcast_to", _broadcast_to_fwd, _broadcast_to_vjp, fuse="shape",
         returns_view=True)


def _expand_dims_fwd(inputs, params):
    return np.expand_dims(inputs[0], axis=params["axis"])


def _expand_dims_vjp(grad, out, inputs, params, needs):
    return (np.squeeze(grad, axis=params["axis"]),)


register("expand_dims", _expand_dims_fwd, _expand_dims_vjp, fuse="shape",
         returns_view=True)


def _squeeze_fwd(inputs, params):
    return np.squeeze(inputs[0], axis=params["axis"])


def _squeeze_vjp(grad, out, inputs, params, needs):
    return (np.expand_dims(grad, axis=params["axis"]),)


register("squeeze", _squeeze_fwd, _squeeze_vjp, fuse="shape", returns_view=True)


def _getitem_fwd(inputs, params):
    return inputs[0][params["index"]]


def _getitem_vjp(grad, out, inputs, params, needs):
    full = np.zeros_like(inputs[0])
    np.add.at(full, params["index"], grad)
    return (full,)


register("getitem", _getitem_fwd, _getitem_vjp, fuse="shape", returns_view=True)


# ---------------------------------------------------------------------- #
# Multi-tensor combinators
# ---------------------------------------------------------------------- #
def _concatenate_fwd(inputs, params):
    return np.concatenate(list(inputs), axis=params["axis"])


def _concatenate_vjp(grad, out, inputs, params, needs):
    # Direct slicing builds the same views np.split would, skips the pieces
    # nobody needs, and avoids array_split's per-call bookkeeping.
    axis = params["axis"]
    bounds = (0, *params["splits"], grad.shape[axis])
    index = [slice(None)] * grad.ndim
    pieces = []
    for i, need in enumerate(needs):
        if need:
            index[axis] = slice(bounds[i], bounds[i + 1])
            pieces.append(grad[tuple(index)])
        else:
            pieces.append(None)
    return tuple(pieces)


register("concatenate", _concatenate_fwd, _concatenate_vjp, fuse="shape")


def _stack_fwd(inputs, params):
    return np.stack(list(inputs), axis=params["axis"])


def _stack_vjp(grad, out, inputs, params, needs):
    axis = params["axis"]
    pieces = np.split(grad, len(inputs), axis=axis)
    return tuple(np.squeeze(piece, axis=axis) if need else None
                 for piece, need in zip(pieces, needs))


register("stack", _stack_fwd, _stack_vjp, fuse="shape")


def _maximum_fwd(inputs, params):
    return np.maximum(inputs[0], inputs[1])


def _maximum_vjp(grad, out, inputs, params, needs):
    a, b = inputs
    mask = a >= b
    return (
        _unbroadcast(grad * mask, a.shape) if needs[0] else None,
        _unbroadcast(grad * (~mask), b.shape) if needs[1] else None,
    )


register("maximum", _maximum_fwd, _maximum_vjp, fuse="ew")


def _where_fwd(inputs, params):
    return np.where(params["cond"], inputs[0], inputs[1])


def _where_vjp(grad, out, inputs, params, needs):
    a, b = inputs
    cond = params["cond"]
    return (
        _unbroadcast(grad * cond, a.shape) if needs[0] else None,
        _unbroadcast(grad * (~cond), b.shape) if needs[1] else None,
    )


register("where", _where_fwd, _where_vjp, fuse="ew")


def _gather_points_fwd(inputs, params):
    # Row-gather through np.take on the flattened (B*N, C) view: ~5× faster
    # than advanced indexing for the (B, M, K) neighbourhood tables, with
    # byte-identical output.  The flat index is shared with the backward
    # scatter.
    features = inputs[0]
    channels = params["channels"]
    flat_features = features.reshape(params["rows"], channels)
    return np.take(flat_features, params["flat_index"], axis=0).reshape(
        params["index_shape"] + (channels,))


def _gather_points_vjp(grad, out, inputs, params, needs):
    # Scatter-add per channel with np.bincount, which is far faster than
    # np.add.at and performs the per-bin additions in the same input order
    # (so float64 exactness mode stays bit-for-bit identical).
    features = inputs[0]
    channels = params["channels"]
    flat_index = params["flat_index"]
    grad_rows = np.ascontiguousarray(grad.reshape(-1, channels).T)
    full = np.empty((channels, params["rows"]), dtype=features.dtype)
    for channel in range(channels):
        full[channel] = np.bincount(flat_index, weights=grad_rows[channel],
                                    minlength=full.shape[1])
    return (np.ascontiguousarray(full.T).reshape(features.shape),)


register("gather_points", _gather_points_fwd, _gather_points_vjp, fuse="gather")


__all__ = ["OpDef", "OPS", "register", "_unbroadcast", "_fast_max"]
