"""Scheduler: dispatch ready tasks onto an executor backend, with caching.

The scheduler walks a :class:`~repro.pipeline.graph.TaskGraph`, serving
completed tasks from a content-addressed store
(:class:`~repro.pipeline.store.StoreBackend`) and dispatching the rest
onto an :class:`~repro.pipeline.executors.ExecutorBackend`:

* ``serial`` — in-process execution (the ``jobs == 1`` default,
  optionally against a caller-provided ``ExperimentContext``);
* ``local`` — a ``ProcessPoolExecutor`` whose workers each own a
  private, lazily-built context (the ``jobs > 1`` default);
* ``remote`` — a fleet of ``repro.serve`` daemons scheduled depot-style
  (round-robin, host failover, straggler work-stealing).

One event loop serves all three: submit ready tasks, reap completions,
recover the substrate.  Failures are *classified*, not just isolated (see
:mod:`~repro.pipeline.resilience`): transient errors — a broken process
pool, an unreachable worker host, a task killed at its wall-clock
deadline, an injected fault — are retried with exponential backoff under a
:class:`~repro.pipeline.resilience.RetryPolicy`, while deterministic
executor exceptions fail fast after one attempt.  A task's transitive
dependents are only skipped once it has exhausted its attempt budget.  A
broken local pool is rebuilt (bounded times) with its in-flight tasks
resubmitted; if it keeps dying, the run degrades to the serial backend so
it always makes forward progress.  The returned :class:`PipelineResult`
carries every task output plus a per-task
:class:`~repro.pipeline.progress.RunReport` with per-worker attribution.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from concurrent.futures import FIRST_COMPLETED, wait
from typing import Any, Dict, Mapping, Optional, Sequence, Set, Union

from ..telemetry import get_tracer
from .executors import (ExecutorBackend, SerialBackend, SerialRunner,
                        make_backend, terminate_pool)
from .graph import Task, TaskGraph
from .progress import (CACHED, FAILED, RAN, SKIPPED, ProgressReporter,
                       RunReport, TaskRecord)
from .resilience import (TRANSIENT, FaultPlan, RetryPolicy, TaskTimeoutError,
                         classify_error, error_type_names)
from .store import STORE_FORMAT_VERSION, StoreBackend

ConfigLike = Union[Mapping[str, Any], Any]

# Historical aliases: earlier revisions defined these here, and the serve
# layer (plus external scripts) imports them from this module.
_terminate_pool = terminate_pool
_SerialRunner = SerialRunner


class PipelineError(RuntimeError):
    """Raised by strict callers when a run did not produce its result."""


@dataclass
class PipelineResult:
    """Outputs and bookkeeping of one scheduled run."""

    outputs: Dict[str, Any]
    report: RunReport
    result_id: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.report.succeeded

    @property
    def result(self) -> Any:
        """Output of the graph's designated result task."""
        if self.result_id is None:
            raise PipelineError("graph has no designated result task")
        if self.result_id not in self.outputs:
            raise PipelineError(self.describe_failure())
        return self.outputs[self.result_id]

    def describe_failure(self) -> str:
        failures = self.report.failures()
        if not failures:
            return f"result task {self.result_id!r} did not run"
        first = failures[0]
        message = f"{len(failures)} task(s) failed; first: {first.task_id}"
        if first.error:
            message += f"\n{first.error}"
        return message


def config_to_dict(config: ConfigLike) -> Dict[str, Any]:
    """Experiment configuration as a plain dict (for worker init)."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    return dict(config)


def config_salt(config: ConfigLike) -> Dict[str, Any]:
    """The configuration fields that participate in content hashing.

    ``cache_dir`` is a storage location, not an input of any computation,
    so it is excluded — moving the cache must not invalidate results.

    Configs may expose two duck-typed hooks (keeping this generic layer
    ignorant of attack semantics):

    * ``salt_exclusions()`` — names of further fields that are pure
      execution strategy (e.g. scene batching) and must not invalidate
      cached results;
    * ``compute_policy_salt()`` — a description of any run-wide compute
      policy (e.g. the resolved :mod:`repro.accel` policy, including
      environment overrides) that the config fields alone do not capture.
      Its value is folded into every task fingerprint, so a store populated
      under one policy is never served to another.

    Retry policies, fault plans and executor backends are deliberately
    *not* part of the salt: they are pure execution strategy over pure
    tasks, so a run that retried (or was chaos-tested, or ran on a remote
    fleet) must produce — and share — bit-for-bit the same cached
    payloads as a serial unfaulted run.
    """
    salt = config_to_dict(config)
    salt.pop("cache_dir", None)
    exclusions_hook = getattr(config, "salt_exclusions", None)
    if callable(exclusions_hook):
        for name in exclusions_hook():
            salt.pop(name, None)
    policy_hook = getattr(config, "compute_policy_salt", None)
    if callable(policy_hook):
        salt["compute_policy"] = policy_hook()
    return {"config": salt, "store_format": STORE_FORMAT_VERSION}


def run_graph(graph: TaskGraph, config: ConfigLike, *, jobs: int = 1,
              store: Optional[StoreBackend] = None, context: Any = None,
              reporter: Optional[ProgressReporter] = None,
              refresh: bool = False,
              retry: Optional[RetryPolicy] = None,
              faults: Optional[FaultPlan] = None,
              backend: Union[str, ExecutorBackend, None] = None,
              workers: Optional[Sequence[str]] = None) -> PipelineResult:
    """Execute ``graph`` and return every task output plus a run report.

    Parameters
    ----------
    config:
        The ``ExperimentConfig`` (or equivalent mapping) that parameterises
        every task; it seeds worker contexts and the content hashes.
    jobs:
        Worker process count (local pool) / concurrent dispatch bound
        (remote); ``1`` with the default backend executes serially in
        this process.
    store:
        Optional result store (on-disk :class:`~.store.ResultStore` or an
        HTTP :class:`~.store_http.RemoteStore`); cacheable tasks with a
        fresh fingerprint are served from it and newly-computed payloads
        are written back.
    context:
        Optional live ``ExperimentContext`` reused for serial execution
        (ignored by the process/remote backends — workers build their own).
    refresh:
        Recompute every task even when a cached payload exists (results are
        still written back to the store).
    retry:
        Retry/timeout/recovery policy (default: one retry for transient
        failures, no task deadline, two pool rebuilds — see
        :class:`~repro.pipeline.resilience.RetryPolicy`).
    faults:
        Optional deterministic fault-injection plan (chaos testing; see
        :class:`~repro.pipeline.resilience.FaultPlan`).
    backend:
        Executor backend: ``"serial"`` / ``"local"`` / ``"remote"``, a
        ready :class:`~.executors.ExecutorBackend`, or ``None``/"auto"
        (serial when ``jobs == 1``, local pool otherwise).
    workers:
        Worker daemon addresses (``host:port`` / socket paths) of the
        ``remote`` backend.
    """
    graph.validate()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    retry = retry if retry is not None else RetryPolicy()
    tracer = get_tracer()
    executor = make_backend(backend, config=config, jobs=jobs,
                            workers=workers, context=context, faults=faults,
                            trace_path=tracer.path)
    fingerprints = graph.fingerprints(config_salt(config))
    report = RunReport(jobs=jobs, backend=executor.name)
    if reporter is None:
        reporter = ProgressReporter(total=len(graph), enabled=False)
    start = time.perf_counter()

    completed: Dict[str, Any] = {}
    failed: Set[str] = set()
    skipped: Set[str] = set()

    def finish(record: TaskRecord, task: Task) -> None:
        report.add(record)
        reporter.task_done(record)
        if tracer.enabled:
            tracer.emit("task", task_id=record.task_id, kind=record.kind,
                        status=record.status, elapsed=record.elapsed,
                        deps=list(task.deps), key=record.key,
                        stats=record.stats, attempts=record.attempts,
                        backend=report.backend, worker=record.worker)
            tracer.count(f"tasks.{record.status}", 1)

    def try_cache(task: Task) -> bool:
        if refresh or store is None or not task.cacheable:
            return False
        # One probe, one accounting site: ``get`` counts the hit or the
        # miss (including a corrupt entry it quarantined), so there is no
        # ``contains`` pre-check whose miss a later ``get`` double-counts.
        key = fingerprints[task.task_id]
        try:
            completed[task.task_id] = store.get(key)
        except KeyError:
            return False        # absent or quarantined: recompute
        finish(TaskRecord(task.task_id, task.kind, CACHED, key=key), task)
        return True

    def commit(task: Task, payload: Any, elapsed: float,
               stats: Optional[Dict[str, Any]] = None,
               attempts: int = 1, worker: Optional[str] = None) -> None:
        completed[task.task_id] = payload
        key = fingerprints[task.task_id]
        if store is not None and task.cacheable:
            metadata = {
                "task_id": task.task_id, "kind": task.kind,
                "params": task.params, "elapsed": elapsed,
            }
            if stats:
                metadata["stats"] = stats
            store.put(key, payload, metadata=metadata)
            if faults is not None and faults.take_corruption(task.task_id):
                # The chaos knob's "corrupt" clause: damage the bytes the
                # store just persisted, so integrity checking has to catch
                # it on the next read.  The in-memory payload this run
                # keeps using is untouched (as real bit rot would leave it).
                store.corrupt_entry(key)
        finish(TaskRecord(task.task_id, task.kind, RAN, elapsed=elapsed,
                          key=key, stats=stats, attempts=attempts,
                          worker=worker), task)

    def fail(task: Task, error: str, elapsed: float,
             attempts: int = 1, worker: Optional[str] = None) -> None:
        failed.add(task.task_id)
        finish(TaskRecord(task.task_id, task.kind, FAILED, elapsed=elapsed,
                          error=error, key=fingerprints[task.task_id],
                          attempts=attempts, worker=worker), task)

    def skip(task: Task) -> None:
        skipped.add(task.task_id)
        finish(TaskRecord(task.task_id, task.kind, SKIPPED,
                          key=fingerprints[task.task_id]), task)

    pending = {task.task_id: task for task in graph.topological_order()}

    _run_with_backend(executor, config, fingerprints, pending, completed,
                      failed, skipped, try_cache, commit, fail, skip,
                      retry, faults, report, reporter, tracer)

    report.wall_time = time.perf_counter() - start
    report.backend_stats = executor.counters() or None
    if store is not None:
        report.store_stats = store.session_stats()
    if tracer.enabled:
        busy = sum(record.elapsed for record in report.records)
        tracer.emit("run_report",
                    wall_time=report.wall_time, jobs=jobs, busy_s=busy,
                    tasks=len(report.records),
                    backend=report.backend,
                    hosts=report.host_breakdown() or None,
                    backend_stats=report.backend_stats,
                    counts={status: report.count(status)
                            for status in (RAN, CACHED, FAILED, SKIPPED)},
                    cache=report.cache_stats(), store=report.store_stats,
                    retries=report.retries, timeouts=report.timeouts,
                    pool_rebuilds=report.pool_rebuilds,
                    degraded=report.degraded)
    return PipelineResult(outputs=completed, report=report, result_id=graph.result)


def _emit_retry(report: RunReport, reporter: ProgressReporter, tracer,
                retry: RetryPolicy, task: Task, attempt: int,
                error_label: str, delay: float) -> None:
    """Record one retry everywhere it is surfaced (report, progress, trace)."""
    report.retries += 1
    reporter.task_retry(task.task_id, attempt, retry.max_attempts,
                        error_label, delay)
    if tracer.enabled:
        tracer.emit("task_retry", task_id=task.task_id, kind=task.kind,
                    attempt=attempt, max_attempts=retry.max_attempts,
                    error=error_label, classification=TRANSIENT,
                    delay_s=delay)
        tracer.count("tasks.retries", 1)


@dataclass
class _Flight:
    """One submitted attempt: the task, its ordinal, and its deadline."""

    task: Task
    attempt: int
    deadline: Optional[float]       # time.monotonic() deadline, or None
    timeout_s: Optional[float]      # the configured limit (for messages)


def _run_with_backend(backend: ExecutorBackend, config: ConfigLike,
                      fingerprints: Dict[str, str],
                      pending: Dict[str, Task], completed: Dict[str, Any],
                      failed: Set[str], skipped: Set[str],
                      try_cache, commit, fail, skip,
                      retry: RetryPolicy, faults: Optional[FaultPlan],
                      report: RunReport, reporter: ProgressReporter,
                      tracer) -> None:
    """Event loop: submit ready tasks, reap completions, recover the backend.

    One loop serves every backend.  A serial backend resolves its futures
    synchronously inside ``submit``, so the loop degenerates to ordered
    in-process execution; a preemptive backend (the local pool) gets
    wall-clock deadlines enforced by killing its workers; a remote
    backend encodes infrastructure failures as classified result tuples,
    so host failover and retry ride the ordinary failure path.

    Beyond the happy path this loop owns the resilience layer:

    * transient failures re-enter a backoff queue (``waiting``) and are
      resubmitted once their deterministic delay elapses;
    * tasks carrying a deadline are killed at it — the executor cannot
      cancel a running future, so the backend is interrupted and
      recovered, with every innocent in-flight task resubmitted
      (timeout-forced rebuilds do not count against the rebuild budget:
      they are controlled kills, not spontaneous pool deaths);
    * a broken substrate (worker OOM-killed, pool crashed hard) is
      rebuilt at most ``retry.max_pool_rebuilds`` times — a dead pool
      must not drip-fail every remaining submission one by one — after
      which the backend is swapped for a :class:`~.executors
      .SerialBackend` sharing the same attempt ordinals, so the run
      degrades instead of dying.
    """
    backend.start()
    attempts: Dict[str, int] = {}          # execution ordinals consumed
    inflight: Dict[Any, _Flight] = {}
    waiting: Dict[str, Task] = {}          # backoff queue
    ready_at: Dict[str, float] = {}        # task_id -> monotonic release time
    spontaneous_rebuilds = 0               # counted against the budget

    def submit(task: Task) -> None:
        attempt = attempts.get(task.task_id, 0) + 1
        attempts[task.task_id] = attempt
        deps_payload = {dep: completed[dep] for dep in task.deps}
        timeout_s = task.timeout if task.timeout is not None \
            else retry.task_timeout
        future = backend.submit(task, attempt, deps_payload,
                                timeout_s=timeout_s,
                                key=fingerprints[task.task_id])
        deadline = (time.monotonic() + timeout_s) \
            if (timeout_s and backend.preemptive) else None
        inflight[future] = _Flight(task, attempt, deadline, timeout_s)

    def schedule_retry(task: Task, attempt: int, error_label: str) -> None:
        delay = retry.delay(task.task_id, attempt)
        _emit_retry(report, reporter, tracer, retry, task, attempt,
                    error_label, delay)
        waiting[task.task_id] = task
        ready_at[task.task_id] = time.monotonic() + delay

    def handle_failure(task: Task, attempt: int, error_text: str,
                       error_types, elapsed: float,
                       worker: Optional[str] = None) -> None:
        """One failed attempt: retry if transient with budget left."""
        label = error_types[0] if error_types else "unknown"
        if classify_error(error_types) == TRANSIENT and \
                retry.retryable(attempt):
            schedule_retry(task, attempt, label)
        else:
            fail(task, error_text, elapsed, attempts=attempt, worker=worker)

    def degrade(reason: str) -> None:
        """Swap the broken backend for in-process serial execution.

        The shared ``attempts`` ordinals keep fault clauses and retry
        budgets deterministic across the boundary, and the backoff queue
        merges straight back into ``pending`` — the serial tail proceeds
        immediately instead of sleeping out backoffs that were scheduled
        for a pool that no longer exists.
        """
        nonlocal backend
        report.degraded = True
        reporter.note(f"worker pool keeps dying ({reason}); degrading the "
                      f"remaining tasks to in-process serial execution")
        if tracer.enabled:
            tracer.emit("pool_rebuild", action="degrade", reason=reason,
                        count=report.pool_rebuilds)
        backend.shutdown(wait=False)
        backend = SerialBackend(config, faults=faults)
        backend.start()
        pending.update(waiting)
        waiting.clear()
        ready_at.clear()

    def recover_backend(reason: str, timed_out: Set[str] = frozenset()) -> None:
        """Interrupt the backend, disposition its flights, rebuild (or
        degrade).

        Timed-out flights are budgeted failures (they consume an attempt
        and may exhaust their task); every other in-flight task is a
        casualty of the substrate, not of its own code, so it is always
        requeued — a pool death can never exhaust an innocent task into
        FAILED, and the loop stays bounded because pool deaths themselves
        are bounded by the rebuild budget.
        """
        nonlocal spontaneous_rebuilds
        backend.interrupt()
        flights = list(inflight.values())
        inflight.clear()
        for flight in flights:
            task = flight.task
            if task.task_id in timed_out:
                report.timeouts += 1
                if tracer.enabled:
                    tracer.emit("task_timeout", task_id=task.task_id,
                                kind=task.kind, attempt=flight.attempt,
                                timeout_s=flight.timeout_s)
                    tracer.count("tasks.timeouts", 1)
                message = (f"task {task.task_id!r} timed out after "
                           f"{flight.timeout_s:.1f}s (attempt "
                           f"{flight.attempt}/{retry.max_attempts}); "
                           f"its worker was terminated")
                handle_failure(task, flight.attempt, message,
                               error_type_names(TaskTimeoutError(message)),
                               flight.timeout_s or 0.0)
            else:
                schedule_retry(task, flight.attempt, reason)
        if reason.startswith("timeout"):
            rebuild = True                  # controlled kill: not budgeted
        else:
            spontaneous_rebuilds += 1
            rebuild = spontaneous_rebuilds <= retry.max_pool_rebuilds
        if rebuild and backend.recoverable:
            report.pool_rebuilds += 1
            reporter.note(f"worker pool rebuilt ({reason}; "
                          f"rebuild #{report.pool_rebuilds})")
            if tracer.enabled:
                tracer.emit("pool_rebuild", action="rebuild", reason=reason,
                            count=report.pool_rebuilds)
                tracer.count("pool.rebuilds", 1)
            backend.recover(reason)
        else:
            degrade(reason)

    while pending or inflight or waiting:
        progressed = False
        now = time.monotonic()
        # Release tasks whose backoff elapsed back into the submit set.
        for task_id in [tid for tid in waiting if ready_at[tid] <= now]:
            pending[task_id] = waiting.pop(task_id)
            ready_at.pop(task_id, None)
            progressed = True

        broken_submit = False
        for task_id in list(pending):
            task = pending[task_id]
            if any(dep in failed or dep in skipped for dep in task.deps):
                del pending[task_id]
                skip(task)
                progressed = True
                continue
            if not all(dep in completed for dep in task.deps):
                continue
            del pending[task_id]
            progressed = True
            if try_cache(task):
                continue
            try:
                submit(task)
            except Exception as error:  # noqa: BLE001 — substrate broken
                # A dead pool must not drip-fail every remaining task one
                # by one: put the task back, stop submitting, and recover
                # the backend wholesale.
                attempts[task.task_id] -= 1      # the attempt never started
                pending[task_id] = task
                broken_submit = True
                if tracer.enabled:
                    tracer.emit("pool_submit_failed", task_id=task_id,
                                error=repr(error))
                break
        if broken_submit:
            recover_backend("worker pool broke on submit")
            continue

        if inflight:
            deadlines = [flight.deadline for flight in inflight.values()
                         if flight.deadline is not None]
            wakeups = deadlines + [ready_at[tid] for tid in waiting]
            timeout = None
            if wakeups:
                timeout = max(0.01, min(wakeups) - time.monotonic())
            done, _ = wait(list(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                flight = inflight[future]
                worker = backend.worker_of(future)
                try:
                    _, ok, payload_or_error, elapsed, stats, error_types = \
                        future.result()
                except BaseException as error:  # worker died hard
                    names = error_type_names(error)
                    if "BrokenProcessPool" in names or \
                            "BrokenExecutor" in names:
                        # Every sibling future is about to fail the same
                        # way; recover the backend wholesale below.
                        broken = True
                        continue
                    del inflight[future]
                    handle_failure(flight.task, flight.attempt, repr(error),
                                   names, 0.0, worker=worker)
                    continue
                del inflight[future]
                if ok:
                    commit(flight.task, payload_or_error, elapsed,
                           stats=stats, attempts=flight.attempt,
                           worker=worker)
                else:
                    handle_failure(flight.task, flight.attempt,
                                   payload_or_error, error_types, elapsed,
                                   worker=worker)
            if broken:
                recover_backend("worker pool broke mid-task")
                continue
            # Deadline sweep: anything still running past its deadline is
            # hung — the executor cannot cancel a running future, so the
            # worker is killed with the backend and the backend recovered.
            if backend.preemptive:
                now = time.monotonic()
                expired = {flight.task.task_id
                           for flight in inflight.values()
                           if flight.deadline is not None
                           and now >= flight.deadline}
                if expired:
                    recover_backend("timeout", timed_out=expired)
                    continue
        elif waiting:
            # Nothing running, nothing submittable: sleep out the shortest
            # backoff (capped so newly-ready work is picked up promptly).
            delay = min(ready_at[tid] for tid in waiting) - time.monotonic()
            if delay > 0:
                time.sleep(min(delay, 0.5))
        elif not progressed:
            # No ready work and nothing running: validate() rules out
            # cycles, so this is unreachable — but never spin forever.
            for task_id in list(pending):
                skip(pending.pop(task_id))

    backend.shutdown(wait=True)


@dataclass
class PipelineSession:
    """Reusable execution policy: worker count, store, verbosity, retries.

    Attach one to an ``ExperimentContext`` (``ExperimentContext(config,
    pipeline=session)``) and every ``run_table*`` call submits its task
    graph through the scheduler instead of executing inline — enabling
    parallelism, store-backed resume, distributed execution and
    fault-tolerant runs without changing call sites.
    """

    jobs: int = 1
    store: Optional[StoreBackend] = None
    quiet: bool = True
    refresh: bool = False
    retry: Optional[RetryPolicy] = None
    faults: Optional[FaultPlan] = None
    backend: Union[str, ExecutorBackend, None] = None
    workers: Optional[Sequence[str]] = None
    last_report: Optional[RunReport] = field(default=None, repr=False)

    def run(self, graph: TaskGraph, config: ConfigLike,
            context: Any = None) -> PipelineResult:
        reporter = ProgressReporter(total=len(graph), enabled=not self.quiet)
        result = run_graph(graph, config, jobs=self.jobs, store=self.store,
                           context=context if self.jobs == 1 else None,
                           reporter=reporter, refresh=self.refresh,
                           retry=self.retry, faults=self.faults,
                           backend=self.backend, workers=self.workers)
        self.last_report = result.report
        return result


__all__ = [
    "PipelineError",
    "PipelineResult",
    "PipelineSession",
    "run_graph",
    "config_to_dict",
    "config_salt",
]
