"""Scheduler: dispatch ready tasks onto a worker pool, with caching.

The scheduler walks a :class:`~repro.pipeline.graph.TaskGraph`, serving
completed tasks from the content-addressed :class:`~repro.pipeline.store
.ResultStore` and dispatching the rest:

* ``jobs == 1`` — tasks run in-process (optionally against a caller-provided
  ``ExperimentContext``), preserving the historical serial behaviour exactly;
* ``jobs > 1`` — ready tasks fan out onto a ``ProcessPoolExecutor`` whose
  workers each own a private, lazily-built context.

Failures are isolated: a failed cell marks its transitive dependents as
skipped and the rest of the run continues.  The returned
:class:`PipelineResult` carries every task output plus a per-task
:class:`~repro.pipeline.progress.RunReport`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Set, Union

from ..telemetry import collect_stats, get_tracer
from .graph import Task, TaskGraph
from .progress import (CACHED, FAILED, RAN, SKIPPED, ProgressReporter,
                       RunReport, TaskRecord)
from .store import STORE_FORMAT_VERSION, ResultStore
from .worker import execute_task, initialize_worker, run_task

ConfigLike = Union[Mapping[str, Any], Any]


class PipelineError(RuntimeError):
    """Raised by strict callers when a run did not produce its result."""


@dataclass
class PipelineResult:
    """Outputs and bookkeeping of one scheduled run."""

    outputs: Dict[str, Any]
    report: RunReport
    result_id: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.report.succeeded

    @property
    def result(self) -> Any:
        """Output of the graph's designated result task."""
        if self.result_id is None:
            raise PipelineError("graph has no designated result task")
        if self.result_id not in self.outputs:
            raise PipelineError(self.describe_failure())
        return self.outputs[self.result_id]

    def describe_failure(self) -> str:
        failures = self.report.failures()
        if not failures:
            return f"result task {self.result_id!r} did not run"
        first = failures[0]
        message = f"{len(failures)} task(s) failed; first: {first.task_id}"
        if first.error:
            message += f"\n{first.error}"
        return message


def config_to_dict(config: ConfigLike) -> Dict[str, Any]:
    """Experiment configuration as a plain dict (for worker init)."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    return dict(config)


def config_salt(config: ConfigLike) -> Dict[str, Any]:
    """The configuration fields that participate in content hashing.

    ``cache_dir`` is a storage location, not an input of any computation,
    so it is excluded — moving the cache must not invalidate results.

    Configs may expose two duck-typed hooks (keeping this generic layer
    ignorant of attack semantics):

    * ``salt_exclusions()`` — names of further fields that are pure
      execution strategy (e.g. scene batching) and must not invalidate
      cached results;
    * ``compute_policy_salt()`` — a description of any run-wide compute
      policy (e.g. the resolved :mod:`repro.accel` policy, including
      environment overrides) that the config fields alone do not capture.
      Its value is folded into every task fingerprint, so a store populated
      under one policy is never served to another.
    """
    salt = config_to_dict(config)
    salt.pop("cache_dir", None)
    exclusions_hook = getattr(config, "salt_exclusions", None)
    if callable(exclusions_hook):
        for name in exclusions_hook():
            salt.pop(name, None)
    policy_hook = getattr(config, "compute_policy_salt", None)
    if callable(policy_hook):
        salt["compute_policy"] = policy_hook()
    return {"config": salt, "store_format": STORE_FORMAT_VERSION}


def run_graph(graph: TaskGraph, config: ConfigLike, *, jobs: int = 1,
              store: Optional[ResultStore] = None, context: Any = None,
              reporter: Optional[ProgressReporter] = None,
              refresh: bool = False) -> PipelineResult:
    """Execute ``graph`` and return every task output plus a run report.

    Parameters
    ----------
    config:
        The ``ExperimentConfig`` (or equivalent mapping) that parameterises
        every task; it seeds worker contexts and the content hashes.
    jobs:
        Worker process count; ``1`` executes serially in this process.
    store:
        Optional result store; cacheable tasks with a fresh fingerprint are
        served from it and newly-computed payloads are written back.
    context:
        Optional live ``ExperimentContext`` reused for serial execution
        (ignored when ``jobs > 1`` — workers build their own).
    refresh:
        Recompute every task even when a cached payload exists (results are
        still written back to the store).
    """
    graph.validate()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    fingerprints = graph.fingerprints(config_salt(config))
    report = RunReport(jobs=jobs)
    if reporter is None:
        reporter = ProgressReporter(total=len(graph), enabled=False)
    tracer = get_tracer()
    start = time.perf_counter()
    runner = _SerialRunner(config, context) if jobs == 1 else None

    completed: Dict[str, Any] = {}
    failed: Set[str] = set()
    skipped: Set[str] = set()

    def finish(record: TaskRecord, task: Task) -> None:
        report.add(record)
        reporter.task_done(record)
        if tracer.enabled:
            tracer.emit("task", task_id=record.task_id, kind=record.kind,
                        status=record.status, elapsed=record.elapsed,
                        deps=list(task.deps), key=record.key,
                        stats=record.stats)
            tracer.count(f"tasks.{record.status}", 1)

    def try_cache(task: Task) -> bool:
        if refresh or store is None or not task.cacheable:
            return False
        key = fingerprints[task.task_id]
        if not store.contains(key):
            return False
        try:
            completed[task.task_id] = store.get(key)
        except KeyError:
            return False        # corrupt entry: fall through and recompute
        finish(TaskRecord(task.task_id, task.kind, CACHED, key=key), task)
        return True

    def commit(task: Task, payload: Any, elapsed: float,
               stats: Optional[Dict[str, Any]] = None) -> None:
        completed[task.task_id] = payload
        key = fingerprints[task.task_id]
        if store is not None and task.cacheable:
            metadata = {
                "task_id": task.task_id, "kind": task.kind,
                "params": task.params, "elapsed": elapsed,
            }
            if stats:
                metadata["stats"] = stats
            store.put(key, payload, metadata=metadata)
        finish(TaskRecord(task.task_id, task.kind, RAN, elapsed=elapsed,
                          key=key, stats=stats), task)

    def fail(task: Task, error: str, elapsed: float) -> None:
        failed.add(task.task_id)
        finish(TaskRecord(task.task_id, task.kind, FAILED, elapsed=elapsed,
                          error=error, key=fingerprints[task.task_id]), task)

    def skip(task: Task) -> None:
        skipped.add(task.task_id)
        finish(TaskRecord(task.task_id, task.kind, SKIPPED,
                          key=fingerprints[task.task_id]), task)

    pending = {task.task_id: task for task in graph.topological_order()}

    if jobs == 1:
        for task in list(pending.values()):
            del pending[task.task_id]
            if any(dep in failed or dep in skipped for dep in task.deps):
                skip(task)
                continue
            if try_cache(task):
                continue
            deps_payload = {dep: completed[dep] for dep in task.deps}
            task_start = time.perf_counter()
            try:
                with collect_stats() as collector:
                    payload = runner.execute(task, deps_payload)
            except BaseException:  # noqa: BLE001 — isolation by design
                import traceback
                fail(task, traceback.format_exc(), time.perf_counter() - task_start)
                continue
            commit(task, payload, time.perf_counter() - task_start,
                   stats=collector.as_dict())
    else:
        _run_parallel(graph, config, jobs, pending, completed, failed, skipped,
                      try_cache, commit, fail, skip)

    report.wall_time = time.perf_counter() - start
    if store is not None:
        report.store_stats = store.session_stats()
    if tracer.enabled:
        busy = sum(record.elapsed for record in report.records)
        tracer.emit("run_report",
                    wall_time=report.wall_time, jobs=jobs, busy_s=busy,
                    tasks=len(report.records),
                    counts={status: report.count(status)
                            for status in (RAN, CACHED, FAILED, SKIPPED)},
                    cache=report.cache_stats(), store=report.store_stats)
    return PipelineResult(outputs=completed, report=report, result_id=graph.result)


def _run_parallel(graph: TaskGraph, config: ConfigLike, jobs: int,
                  pending: Dict[str, Task], completed: Dict[str, Any],
                  failed: Set[str], skipped: Set[str],
                  try_cache, commit, fail, skip) -> None:
    """Event loop: submit ready tasks, reap completions, propagate skips."""
    # Prefer fork on Linux: workers inherit the executor registry (including
    # any test-registered kinds) and the imported modules.  Elsewhere use
    # spawn — forking after BLAS/ObjC initialisation is unsafe on macOS —
    # and rely on the lazy domain-executor import in the worker.
    methods = multiprocessing.get_all_start_methods()
    use_fork = sys.platform.startswith("linux") and "fork" in methods
    mp_context = multiprocessing.get_context("fork" if use_fork else "spawn")
    config_dict = config_to_dict(config)
    # Workers append to the same JSONL sink as the parent (None ⇒ untraced).
    trace_path = get_tracer().path
    with ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context,
                             initializer=initialize_worker,
                             initargs=(config_dict, trace_path)) as pool:
        inflight: Dict[Any, Task] = {}
        while pending or inflight:
            progressed = False
            for task_id in list(pending):
                task = pending[task_id]
                if any(dep in failed or dep in skipped for dep in task.deps):
                    del pending[task_id]
                    skip(task)
                    progressed = True
                    continue
                if not all(dep in completed for dep in task.deps):
                    continue
                del pending[task_id]
                progressed = True
                if try_cache(task):
                    continue
                deps_payload = {dep: completed[dep] for dep in task.deps}
                try:
                    future = pool.submit(run_task, task.task_id, task.kind,
                                         dict(task.params), deps_payload)
                except Exception as error:  # pool broken (e.g. OOM-killed
                    fail(task, repr(error), 0.0)   # worker): isolate and go on
                    continue
                inflight[future] = task
            if inflight:
                done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
                for future in done:
                    task = inflight.pop(future)
                    try:
                        _, ok, payload_or_error, elapsed, stats = future.result()
                    except BaseException as error:  # worker died hard
                        ok, payload_or_error, elapsed, stats = \
                            False, repr(error), 0.0, None
                    if ok:
                        commit(task, payload_or_error, elapsed, stats=stats)
                    else:
                        fail(task, payload_or_error, elapsed)
            elif not progressed:
                # No ready work and nothing running: validate() rules out
                # cycles, so this is unreachable — but never spin forever.
                for task_id in list(pending):
                    skip(pending.pop(task_id))


class _SerialRunner:
    """In-process execution with a lazily-built (or borrowed) context."""

    def __init__(self, config: ConfigLike, context: Any = None) -> None:
        self._config = config
        self._context = context

    @property
    def context(self) -> Any:
        if self._context is None:
            from ..experiments.context import ExperimentConfig, ExperimentContext
            self._context = ExperimentContext(
                ExperimentConfig(**config_to_dict(self._config)))
        return self._context

    def execute(self, task: Task, deps: Mapping[str, Any]) -> Any:
        return execute_task(task.kind, task.params, deps, context=self.context)


@dataclass
class PipelineSession:
    """Reusable execution policy: worker count, store, verbosity.

    Attach one to an ``ExperimentContext`` (``ExperimentContext(config,
    pipeline=session)``) and every ``run_table*`` call submits its task
    graph through the scheduler instead of executing inline — enabling
    parallelism and store-backed resume without changing call sites.
    """

    jobs: int = 1
    store: Optional[ResultStore] = None
    quiet: bool = True
    refresh: bool = False
    last_report: Optional[RunReport] = field(default=None, repr=False)

    def run(self, graph: TaskGraph, config: ConfigLike,
            context: Any = None) -> PipelineResult:
        reporter = ProgressReporter(total=len(graph), enabled=not self.quiet)
        result = run_graph(graph, config, jobs=self.jobs, store=self.store,
                           context=context if self.jobs == 1 else None,
                           reporter=reporter, refresh=self.refresh)
        self.last_report = result.report
        return result


__all__ = [
    "PipelineError",
    "PipelineResult",
    "PipelineSession",
    "run_graph",
    "config_to_dict",
    "config_salt",
]
