"""Content-addressed result store.

Task outputs are filed under their content hash (see :mod:`.hashing` and
:meth:`..pipeline.graph.TaskGraph.fingerprints`), so re-running the same
experiment — or resuming an interrupted run — skips every task whose inputs
are unchanged.  Payloads are pickled (they contain numpy arrays and small
dataclasses); a JSON sidecar keeps human-inspectable metadata per entry.

Writes are atomic (temp file + ``os.replace``) so concurrent workers and
interrupted runs never leave a truncated entry behind; unreadable entries
are treated as misses.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from typing import Any, Dict, Iterator, Optional

from ..ioutils import atomic_write_bytes

#: Bump to invalidate every existing store entry on a payload format change.
#: v2: attack cells gained the repro.accel compute policy (fast-math
#: defaults), so results cached by the v1 (pre-accel) code are not
#: interchangeable with post-accel runs.
#: v3: the adversarial-loss head computes its constants in the policy dtype
#: (float32 under fast-math, previously always float64), shifting fast-mode
#: trajectories by low-order bits — cached fast-mode cells from v2 are not
#: interchangeable.  Exactness-mode arithmetic is unchanged.
STORE_FORMAT_VERSION = 3


class ResultStore:
    """On-disk key/value store addressed by task content hashes."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        # Runtime traffic of *this* store handle (not the on-disk totals of
        # :meth:`stats`): hits/misses and bytes moved, surfaced per run in
        # the ``RunReport`` and the telemetry ``run_report`` event.
        self._session = {"hits": 0, "misses": 0,
                         "bytes_read": 0, "bytes_written": 0}

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def _shard(self, key: str) -> str:
        return os.path.join(self.root, key[:2])

    def _payload_path(self, key: str) -> str:
        return os.path.join(self._shard(key), f"{key}.pkl")

    def _meta_path(self, key: str) -> str:
        return os.path.join(self._shard(key), f"{key}.json")

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        present = os.path.exists(self._payload_path(key))
        if not present:
            self._session["misses"] += 1
        return present

    __contains__ = contains

    def get(self, key: str) -> Any:
        """Load a payload; raises ``KeyError`` on a missing or corrupt entry."""
        path = self._payload_path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
                self._session["hits"] += 1
                self._session["bytes_read"] += handle.tell()
                return payload
        except FileNotFoundError:
            self._session["misses"] += 1
            raise KeyError(key) from None
        except (pickle.UnpicklingError, EOFError, OSError, ValueError,
                AttributeError, ImportError) as error:
            raise KeyError(f"{key} (corrupt entry: {error})") from None

    def put(self, key: str, payload: Any,
            metadata: Optional[Dict[str, Any]] = None) -> str:
        """Atomically write ``payload`` (and a JSON metadata sidecar)."""
        path = self._payload_path(key)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(path, blob)
        self._session["bytes_written"] += len(blob)
        meta = {"key": key, "format_version": STORE_FORMAT_VERSION,
                "created_at": time.time()}
        meta.update(metadata or {})
        atomic_write_bytes(self._meta_path(key),
                           json.dumps(meta, indent=2, default=str).encode("utf-8"))
        return path

    def metadata(self, key: str) -> Dict[str, Any]:
        try:
            with open(self._meta_path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    def discard(self, key: str) -> bool:
        """Remove one entry; returns whether a payload existed."""
        existed = self.contains(key)
        for path in (self._payload_path(key), self._meta_path(key)):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        return existed

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #
    def keys(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_path = os.path.join(self.root, shard)
            if not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                if name.endswith(".pkl"):
                    yield name[:-len(".pkl")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def session_stats(self) -> Dict[str, int]:
        """Traffic through *this* handle: cache hits/misses and bytes moved.

        Unlike :meth:`stats` (which walks the on-disk inventory), these
        counters cover only the lifetime of this ``ResultStore`` object, so a
        pipeline run can report its own reuse rate without being polluted by
        entries written by earlier runs.
        """
        return dict(self._session)

    def stats(self) -> Dict[str, Any]:
        entries = 0
        total_bytes = 0
        for key in self.keys():
            entries += 1
            try:
                total_bytes += os.path.getsize(self._payload_path(key))
            except OSError:
                pass
        return {"root": self.root, "entries": entries, "bytes": total_bytes}

    def clear(self) -> int:
        removed = 0
        for key in list(self.keys()):
            removed += bool(self.discard(key))
        return removed


__all__ = ["ResultStore", "STORE_FORMAT_VERSION"]
