"""Content-addressed result stores with payload integrity checking.

Task outputs are filed under their content hash (see :mod:`.hashing` and
:meth:`..pipeline.graph.TaskGraph.fingerprints`), so re-running the same
experiment — or resuming an interrupted run — skips every task whose inputs
are unchanged.  Payloads are pickled (they contain numpy arrays and small
dataclasses); a JSON sidecar keeps human-inspectable metadata per entry,
including a SHA-256 checksum of the payload bytes.

Two implementations sit behind the :class:`StoreBackend` interface:

* :class:`ResultStore` — the on-disk store every single-host run uses;
* :class:`~repro.pipeline.store_http.RemoteStore` — an HTTP client against
  a shared store daemon, so a fleet of workers (and any number of
  schedulers and ``repro.serve`` daemons) shares one memoisation layer.
  Sharing is safe by construction: every key carries the full config /
  compute-policy salt, so entries computed under different policies can
  never collide.

Writes are atomic (temp file + ``os.replace``) so concurrent workers and
interrupted runs never leave a truncated entry behind.  Reads verify the
checksum: an entry whose bytes no longer match (bit rot, a torn copy, an
injected ``corrupt`` fault) is *quarantined* — moved to ``<root>/corrupt/``
for post-mortem inspection rather than silently deleted — and reported as a
miss so the scheduler recomputes it.  A sidecar that exists but cannot be
parsed is treated the same way: damaged on-disk state must disable the
entry, never the integrity check.  :meth:`ResultStore.verify` audits a
whole store; :meth:`ResultStore.gc` evicts least-recently-used entries
against a byte/entry budget so a long-lived shared store can run
indefinitely.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..ioutils import atomic_write_bytes

#: Bump to invalidate every existing store entry on a payload format change.
#: v2: attack cells gained the repro.accel compute policy (fast-math
#: defaults), so results cached by the v1 (pre-accel) code are not
#: interchangeable with post-accel runs.
#: v3: the adversarial-loss head computes its constants in the policy dtype
#: (float32 under fast-math, previously always float64), shifting fast-mode
#: trajectories by low-order bits — cached fast-mode cells from v2 are not
#: interchangeable.  Exactness-mode arithmetic is unchanged.
#: (Checksums are additive sidecar metadata: entries written before they
#: existed still load, they just skip verification — no bump needed.)
STORE_FORMAT_VERSION = 3


def _payload_checksum(blob: bytes) -> str:
    return "sha256:" + hashlib.sha256(blob).hexdigest()


def canonical_payload_bytes(payload: Any) -> bytes:
    """Pickle ``payload`` to bytes that depend only on its value.

    A payload that crossed a worker-process boundary carries different
    string-interning/memo sharing than the same value computed in-process,
    which pickles to different (equal but not identical) bytes.  One
    dumps/loads round-trip is a fixed point of that normalisation, so an
    entry's bytes depend only on its value — not on whether a serial run,
    a pool worker, a remote daemon or a retried attempt produced it.  That
    is what makes "every backend stores bit-for-bit the same payloads"
    checkable at all.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.dumps(pickle.loads(blob), protocol=pickle.HIGHEST_PROTOCOL)


class StoreBackend:
    """What the scheduler and the serve layer require of a result store.

    The contract is value-oriented (:meth:`get` / :meth:`put`) with a
    byte-level escape hatch (:meth:`get_bytes` / :meth:`put_bytes`) for
    transports and bitwise comparisons.  Implementations must keep the
    canonical-bytes guarantee of :func:`canonical_payload_bytes`: the bytes
    stored for a payload depend only on its value.
    """

    def contains(self, key: str, count: bool = True) -> bool:
        raise NotImplementedError

    def get(self, key: str) -> Any:
        raise NotImplementedError

    def put(self, key: str, payload: Any,
            metadata: Optional[Dict[str, Any]] = None) -> str:
        raise NotImplementedError

    def get_bytes(self, key: str) -> bytes:
        raise NotImplementedError

    def put_bytes(self, key: str, blob: bytes,
                  metadata: Optional[Dict[str, Any]] = None) -> str:
        raise NotImplementedError

    def metadata(self, key: str) -> Dict[str, Any]:
        raise NotImplementedError

    def discard(self, key: str) -> bool:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def verify(self) -> Dict[str, Any]:
        raise NotImplementedError

    def gc(self, max_bytes: Optional[int] = None,
           max_entries: Optional[int] = None) -> Dict[str, Any]:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        raise NotImplementedError

    def session_stats(self) -> Dict[str, int]:
        raise NotImplementedError

    def corrupt_entry(self, key: str) -> None:
        """Chaos hook: damage the stored payload bytes in place.

        Backs the fault plan's ``corrupt`` clause wherever the bytes
        actually live, so integrity checking can be exercised against
        on-disk and remote stores alike.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (no-op for on-disk stores)."""

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        removed = 0
        for key in list(self.keys()):
            removed += bool(self.discard(key))
        return removed


class ResultStore(StoreBackend):
    """On-disk key/value store addressed by task content hashes."""

    #: Subdirectory quarantined (corrupt) entries are moved into.
    CORRUPT_DIR = "corrupt"

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        # Runtime traffic of *this* store handle (not the on-disk totals of
        # :meth:`stats`): hits/misses, bytes moved and entries quarantined,
        # surfaced per run in the ``RunReport`` and the telemetry
        # ``run_report`` event.
        self._session = {"hits": 0, "misses": 0, "quarantined": 0,
                         "bytes_read": 0, "bytes_written": 0}

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def _shard(self, key: str) -> str:
        return os.path.join(self.root, key[:2])

    def payload_path(self, key: str) -> str:
        return os.path.join(self._shard(key), f"{key}.pkl")

    def _meta_path(self, key: str) -> str:
        return os.path.join(self._shard(key), f"{key}.json")

    # Historical private names, kept for callers/tests that poke at them.
    _payload_path = payload_path

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def contains(self, key: str, count: bool = True) -> bool:
        """Whether a payload exists for ``key``.

        ``count=False`` makes the check free of session-stats side effects:
        pre-checks (the scheduler's cache probe, ``--status`` listings,
        :meth:`discard`) must not record a miss that a following
        :meth:`get` will record again — or that never corresponds to a
        failed payload read at all.
        """
        present = os.path.exists(self.payload_path(key))
        if not present and count:
            self._session["misses"] += 1
        return present

    __contains__ = contains

    def get_bytes(self, key: str) -> bytes:
        """Load and checksum-verify a payload's raw bytes.

        Raises ``KeyError`` on a missing entry and on a corrupt one —
        checksum mismatch against the sidecar, or a sidecar that exists
        but cannot be parsed — after moving it into ``<root>/corrupt/``
        (quarantine).  An *absent* sidecar marks a pre-checksum entry and
        is served unverified; an *unreadable* sidecar means the on-disk
        state is damaged, which must disable the entry, not the integrity
        check.
        """
        path = self.payload_path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self._session["misses"] += 1
            raise KeyError(key) from None
        except OSError as error:
            self._session["misses"] += 1
            raise KeyError(f"{key} (unreadable entry: {error})") from None
        meta, sidecar_corrupt = self._load_metadata(key)
        if sidecar_corrupt:
            self._quarantine(key, "unreadable metadata sidecar")
            self._session["misses"] += 1
            raise KeyError(f"{key} (corrupt entry: unreadable metadata "
                           f"sidecar; quarantined)")
        expected = meta.get("checksum")
        if expected is not None and _payload_checksum(blob) != expected:
            self._quarantine(key, "checksum mismatch")
            self._session["misses"] += 1
            raise KeyError(f"{key} (corrupt entry: checksum mismatch; "
                           f"quarantined)")
        self._touch(key, path, meta)
        return blob

    def get(self, key: str) -> Any:
        """Load, verify (see :meth:`get_bytes`) and unpickle a payload."""
        blob = self.get_bytes(key)
        try:
            payload = pickle.loads(blob)
        except (pickle.UnpicklingError, EOFError, OSError, ValueError,
                AttributeError, ImportError, IndexError) as error:
            self._quarantine(key, f"unpicklable payload: {error}")
            self._session["misses"] += 1
            raise KeyError(f"{key} (corrupt entry: {error}; quarantined)") \
                from None
        self._session["hits"] += 1
        self._session["bytes_read"] += len(blob)
        return payload

    def put(self, key: str, payload: Any,
            metadata: Optional[Dict[str, Any]] = None) -> str:
        """Atomically write ``payload`` (and a JSON metadata sidecar).

        The payload is canonicalised via :func:`canonical_payload_bytes`;
        the sidecar records a SHA-256 checksum of the stored bytes, which
        :meth:`get` and :meth:`verify` check before unpickling.
        """
        return self.put_bytes(key, canonical_payload_bytes(payload),
                              metadata=metadata)

    def put_bytes(self, key: str, blob: bytes,
                  metadata: Optional[Dict[str, Any]] = None) -> str:
        """Write already-canonical payload bytes (transports, replication).

        Callers own the canonical-bytes guarantee; anything produced by
        :func:`canonical_payload_bytes` (including every
        :class:`RemoteStore <repro.pipeline.store_http.RemoteStore>`
        upload) qualifies.
        """
        path = self.payload_path(key)
        atomic_write_bytes(path, blob)
        self._session["bytes_written"] += len(blob)
        meta = {"key": key, "format_version": STORE_FORMAT_VERSION,
                "created_at": time.time(),
                "checksum": _payload_checksum(blob),
                "payload_bytes": len(blob)}
        meta.update(metadata or {})
        atomic_write_bytes(self._meta_path(key),
                           json.dumps(meta, indent=2, default=str).encode("utf-8"))
        return path

    def _load_metadata(self, key: str) -> Tuple[Dict[str, Any], bool]:
        """Sidecar metadata plus a *corrupt* flag.

        ``({}, False)`` — sidecar absent: a pre-checksum entry, legal.
        ``({}, True)`` — sidecar present but unreadable/unparseable: the
        on-disk state is damaged and the entry must not be trusted.  The
        distinction is what keeps a torn sidecar from silently disabling
        checksum verification (``checksum=None`` looks identical to a
        legacy entry otherwise).
        """
        try:
            with open(self._meta_path(key), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            return {}, False
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return {}, True
        if not isinstance(meta, dict):
            return {}, True
        return meta, False

    def metadata(self, key: str) -> Dict[str, Any]:
        meta, _ = self._load_metadata(key)
        return meta

    def discard(self, key: str) -> bool:
        """Remove one entry; returns whether a payload existed.

        The existence probe is side-effect free: discarding an absent
        entry is not a cache miss and must not inflate session stats.
        """
        existed = self.contains(key, count=False)
        for path in (self.payload_path(key), self._meta_path(key)):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        return existed

    def _touch(self, key: str, path: str,
               meta: Optional[Dict[str, Any]] = None) -> None:
        """Stamp an access time for LRU eviction (best-effort).

        The authoritative recency signal is ``last_access`` in the metadata
        sidecar, rewritten atomically on every verified read: file atimes
        are frozen on ``noatime`` mounts and only move once a day under
        ``relatime``, so :meth:`gc` ordering by ``st_atime`` alone would
        degenerate to oldest-*written*-first and evict a fleet's hottest
        entries.  ``os.utime`` is still applied to the payload so external
        tooling sees the access too; a read-only store simply never
        reorders its LRU queue.
        """
        meta = dict(self.metadata(key) if meta is None else meta)
        meta["last_access"] = time.time()
        try:
            atomic_write_bytes(self._meta_path(key),
                               json.dumps(meta, indent=2,
                                          default=str).encode("utf-8"))
            os.utime(path)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Integrity
    # ------------------------------------------------------------------ #
    def corrupt_entry(self, key: str) -> None:
        from .resilience import corrupt_payload_file
        corrupt_payload_file(self.payload_path(key))

    def _quarantine(self, key: str, reason: str) -> str:
        """Move a corrupt entry into ``<root>/corrupt/`` and report it.

        Returns the quarantined payload path.  The sidecar travels along,
        annotated with the quarantine reason and time, so the on-disk
        evidence is self-describing.
        """
        corrupt_dir = os.path.join(self.root, self.CORRUPT_DIR)
        os.makedirs(corrupt_dir, exist_ok=True)
        target = os.path.join(corrupt_dir, f"{key}.pkl")
        try:
            os.replace(self.payload_path(key), target)
        except OSError:
            pass
        meta = self.metadata(key)
        meta.update({"quarantined_at": time.time(),
                     "quarantine_reason": reason})
        try:
            atomic_write_bytes(os.path.join(corrupt_dir, f"{key}.json"),
                               json.dumps(meta, indent=2,
                                          default=str).encode("utf-8"))
            os.remove(self._meta_path(key))
        except OSError:
            pass
        self._session["quarantined"] += 1
        from ..telemetry import get_tracer
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("store_quarantine", key=key, reason=reason,
                        path=target)
            tracer.count("store.quarantined", 1)
        return target

    def verify(self) -> Dict[str, Any]:
        """Audit every entry's checksum; quarantine the corrupt ones.

        Returns a summary with *disjoint* buckets: ``ok`` counts entries
        whose checksum actually verified, ``unchecksummed`` the entries
        that predate checksums (no sidecar checksum to verify against —
        reported, not quarantined, and *not* counted as ok), and
        ``quarantined`` the keys that failed.  ``ok + unchecksummed +
        len(quarantined) == checked`` always holds, so the summary cannot
        overstate how much of the store was actually verified.
        """
        checked = ok = unchecksummed = 0
        quarantined: List[str] = []
        for key in list(self.keys()):
            checked += 1
            meta, sidecar_corrupt = self._load_metadata(key)
            if sidecar_corrupt:
                self._quarantine(key, "unreadable metadata sidecar")
                quarantined.append(key)
                continue
            expected = meta.get("checksum")
            try:
                with open(self.payload_path(key), "rb") as handle:
                    blob = handle.read()
            except OSError:
                self._quarantine(key, "unreadable payload")
                quarantined.append(key)
                continue
            if expected is None:
                unchecksummed += 1
                continue
            if _payload_checksum(blob) != expected:
                self._quarantine(key, "checksum mismatch")
                quarantined.append(key)
            else:
                ok += 1
        return {"checked": checked, "ok": ok, "quarantined": quarantined,
                "unchecksummed": unchecksummed}

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def gc(self, max_bytes: Optional[int] = None,
           max_entries: Optional[int] = None) -> Dict[str, Any]:
        """Evict least-recently-used entries down to the given budgets.

        Recency is the ``last_access`` stamp :meth:`get_bytes` rewrites
        into the metadata sidecar on every verified read — an explicit
        signal that survives ``noatime``/``relatime`` mounts, where the
        payload file's atime freezes at creation and LRU-by-atime would
        silently evict the entries a fleet reads most.  Entries never read
        through this code fall back to the sidecar's ``created_at``, then
        to ``st_atime`` (pre-sidecar legacy entries).  With no budget
        given this is a no-op inventory pass.  Returns the eviction
        summary (kept/evicted counts, bytes before and after).
        """
        if (max_bytes is not None and max_bytes < 0) or \
                (max_entries is not None and max_entries < 0):
            raise ValueError("gc budgets must be >= 0")
        entries: List[Tuple[float, int, str]] = []   # (last_access, size, key)
        total = 0
        for key in self.keys():
            try:
                info = os.stat(self.payload_path(key))
            except OSError:
                continue
            meta, _ = self._load_metadata(key)
            recency = meta.get("last_access", meta.get("created_at",
                                                       info.st_atime))
            try:
                recency = float(recency)
            except (TypeError, ValueError):
                recency = info.st_atime
            entries.append((recency, info.st_size, key))
            total += info.st_size
        entries.sort()                               # oldest access first
        before = total
        evicted: List[str] = []
        over_bytes = (lambda: max_bytes is not None and total > max_bytes)
        over_count = (lambda: max_entries is not None
                      and len(entries) - len(evicted) > max_entries)
        for atime, size, key in entries:
            if not over_bytes() and not over_count():
                break
            self.discard(key)
            evicted.append(key)
            total -= size
        summary = {"evicted": evicted, "kept": len(entries) - len(evicted),
                   "bytes_before": before, "bytes_after": total}
        from ..telemetry import get_tracer
        tracer = get_tracer()
        if tracer.enabled and evicted:
            tracer.emit("store_gc", evicted=len(evicted),
                        kept=summary["kept"], bytes_before=before,
                        bytes_after=total)
            tracer.count("store.evicted", len(evicted))
        return summary

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #
    def keys(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_path = os.path.join(self.root, shard)
            if shard == self.CORRUPT_DIR or not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                if name.endswith(".pkl"):
                    yield name[:-len(".pkl")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def session_stats(self) -> Dict[str, int]:
        """Traffic through *this* handle: hits/misses, bytes, quarantines.

        Unlike :meth:`stats` (which walks the on-disk inventory), these
        counters cover only the lifetime of this ``ResultStore`` object, so a
        pipeline run can report its own reuse rate without being polluted by
        entries written by earlier runs.
        """
        return dict(self._session)

    def stats(self) -> Dict[str, Any]:
        entries = 0
        total_bytes = 0
        for key in self.keys():
            entries += 1
            try:
                total_bytes += os.path.getsize(self.payload_path(key))
            except OSError:
                pass
        return {"root": self.root, "entries": entries, "bytes": total_bytes}

    def clear(self) -> int:
        removed = 0
        for key in list(self.keys()):
            removed += bool(self.discard(key))
        return removed


def open_store(spec: Any) -> StoreBackend:
    """Build a store from a location spec.

    ``http://host:port`` (or ``https://``) opens a
    :class:`~repro.pipeline.store_http.RemoteStore` against a shared store
    daemon; anything else is an on-disk :class:`ResultStore` directory.
    An existing :class:`StoreBackend` passes through unchanged.
    """
    if isinstance(spec, StoreBackend):
        return spec
    text = str(spec)
    if text.startswith(("http://", "https://")):
        from .store_http import RemoteStore
        return RemoteStore(text)
    return ResultStore(text)


__all__ = ["ResultStore", "StoreBackend", "STORE_FORMAT_VERSION",
           "canonical_payload_bytes", "open_store"]
