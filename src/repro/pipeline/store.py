"""Content-addressed result store with payload integrity checking.

Task outputs are filed under their content hash (see :mod:`.hashing` and
:meth:`..pipeline.graph.TaskGraph.fingerprints`), so re-running the same
experiment — or resuming an interrupted run — skips every task whose inputs
are unchanged.  Payloads are pickled (they contain numpy arrays and small
dataclasses); a JSON sidecar keeps human-inspectable metadata per entry,
including a SHA-256 checksum of the payload bytes.

Writes are atomic (temp file + ``os.replace``) so concurrent workers and
interrupted runs never leave a truncated entry behind.  Reads verify the
checksum: an entry whose bytes no longer match (bit rot, a torn copy, an
injected ``corrupt`` fault) is *quarantined* — moved to ``<root>/corrupt/``
for post-mortem inspection rather than silently deleted — and reported as a
miss so the scheduler recomputes it.  :meth:`ResultStore.verify` audits a
whole store the same way.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from typing import Any, Dict, Iterator, List, Optional

from ..ioutils import atomic_write_bytes

#: Bump to invalidate every existing store entry on a payload format change.
#: v2: attack cells gained the repro.accel compute policy (fast-math
#: defaults), so results cached by the v1 (pre-accel) code are not
#: interchangeable with post-accel runs.
#: v3: the adversarial-loss head computes its constants in the policy dtype
#: (float32 under fast-math, previously always float64), shifting fast-mode
#: trajectories by low-order bits — cached fast-mode cells from v2 are not
#: interchangeable.  Exactness-mode arithmetic is unchanged.
#: (Checksums are additive sidecar metadata: entries written before they
#: existed still load, they just skip verification — no bump needed.)
STORE_FORMAT_VERSION = 3


def _payload_checksum(blob: bytes) -> str:
    return "sha256:" + hashlib.sha256(blob).hexdigest()


class ResultStore:
    """On-disk key/value store addressed by task content hashes."""

    #: Subdirectory quarantined (corrupt) entries are moved into.
    CORRUPT_DIR = "corrupt"

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        # Runtime traffic of *this* store handle (not the on-disk totals of
        # :meth:`stats`): hits/misses, bytes moved and entries quarantined,
        # surfaced per run in the ``RunReport`` and the telemetry
        # ``run_report`` event.
        self._session = {"hits": 0, "misses": 0, "quarantined": 0,
                         "bytes_read": 0, "bytes_written": 0}

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def _shard(self, key: str) -> str:
        return os.path.join(self.root, key[:2])

    def payload_path(self, key: str) -> str:
        return os.path.join(self._shard(key), f"{key}.pkl")

    def _meta_path(self, key: str) -> str:
        return os.path.join(self._shard(key), f"{key}.json")

    # Historical private names, kept for callers/tests that poke at them.
    _payload_path = payload_path

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def contains(self, key: str, count: bool = True) -> bool:
        """Whether a payload exists for ``key``.

        ``count=False`` makes the check free of session-stats side effects:
        pre-checks (the scheduler's cache probe, ``--status`` listings,
        :meth:`discard`) must not record a miss that a following
        :meth:`get` will record again — or that never corresponds to a
        failed payload read at all.
        """
        present = os.path.exists(self.payload_path(key))
        if not present and count:
            self._session["misses"] += 1
        return present

    __contains__ = contains

    def get(self, key: str) -> Any:
        """Load and verify a payload.

        Raises ``KeyError`` on a missing entry, and on a corrupt one —
        checksum mismatch against the sidecar, or an unreadable pickle —
        after moving it into ``<root>/corrupt/`` (quarantine): a corrupt
        entry must never be silently served, but keeping the bytes around
        makes the corruption diagnosable.
        """
        path = self.payload_path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self._session["misses"] += 1
            raise KeyError(key) from None
        except OSError as error:
            self._session["misses"] += 1
            raise KeyError(f"{key} (unreadable entry: {error})") from None
        expected = self.metadata(key).get("checksum")
        if expected is not None and _payload_checksum(blob) != expected:
            self._quarantine(key, "checksum mismatch")
            self._session["misses"] += 1
            raise KeyError(f"{key} (corrupt entry: checksum mismatch; "
                           f"quarantined)")
        try:
            payload = pickle.loads(blob)
        except (pickle.UnpicklingError, EOFError, OSError, ValueError,
                AttributeError, ImportError, IndexError) as error:
            self._quarantine(key, f"unpicklable payload: {error}")
            self._session["misses"] += 1
            raise KeyError(f"{key} (corrupt entry: {error}; quarantined)") \
                from None
        self._session["hits"] += 1
        self._session["bytes_read"] += len(blob)
        return payload

    def put(self, key: str, payload: Any,
            metadata: Optional[Dict[str, Any]] = None) -> str:
        """Atomically write ``payload`` (and a JSON metadata sidecar).

        The sidecar records a SHA-256 checksum of the payload bytes;
        :meth:`get` and :meth:`verify` check it before unpickling.

        Payload bytes are *canonicalised* through one pickle round-trip
        before writing: a payload that crossed a worker-process boundary
        carries different string-interning/memo sharing than the same
        value computed in-process, which pickles to different (equal but
        not identical) bytes.  One round-trip is a fixed point of that
        normalisation, so an entry's bytes depend only on its value — not
        on whether a serial run, a pool worker, or a retried attempt
        produced it.  That is what makes "a faulted run stores bit-for-bit
        what a clean run stores" checkable at all.
        """
        path = self.payload_path(key)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        blob = pickle.dumps(pickle.loads(blob),
                            protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(path, blob)
        self._session["bytes_written"] += len(blob)
        meta = {"key": key, "format_version": STORE_FORMAT_VERSION,
                "created_at": time.time(),
                "checksum": _payload_checksum(blob),
                "payload_bytes": len(blob)}
        meta.update(metadata or {})
        atomic_write_bytes(self._meta_path(key),
                           json.dumps(meta, indent=2, default=str).encode("utf-8"))
        return path

    def metadata(self, key: str) -> Dict[str, Any]:
        try:
            with open(self._meta_path(key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return {}

    def discard(self, key: str) -> bool:
        """Remove one entry; returns whether a payload existed.

        The existence probe is side-effect free: discarding an absent
        entry is not a cache miss and must not inflate session stats.
        """
        existed = self.contains(key, count=False)
        for path in (self.payload_path(key), self._meta_path(key)):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        return existed

    # ------------------------------------------------------------------ #
    # Integrity
    # ------------------------------------------------------------------ #
    def _quarantine(self, key: str, reason: str) -> str:
        """Move a corrupt entry into ``<root>/corrupt/`` and report it.

        Returns the quarantined payload path.  The sidecar travels along,
        annotated with the quarantine reason and time, so the on-disk
        evidence is self-describing.
        """
        corrupt_dir = os.path.join(self.root, self.CORRUPT_DIR)
        os.makedirs(corrupt_dir, exist_ok=True)
        target = os.path.join(corrupt_dir, f"{key}.pkl")
        try:
            os.replace(self.payload_path(key), target)
        except OSError:
            pass
        meta = self.metadata(key)
        meta.update({"quarantined_at": time.time(),
                     "quarantine_reason": reason})
        try:
            atomic_write_bytes(os.path.join(corrupt_dir, f"{key}.json"),
                               json.dumps(meta, indent=2,
                                          default=str).encode("utf-8"))
            os.remove(self._meta_path(key))
        except OSError:
            pass
        self._session["quarantined"] += 1
        from ..telemetry import get_tracer
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("store_quarantine", key=key, reason=reason,
                        path=target)
            tracer.count("store.quarantined", 1)
        return target

    def verify(self) -> Dict[str, Any]:
        """Audit every entry's checksum; quarantine the corrupt ones.

        Returns a summary: total entries checked, how many verified, the
        keys that were quarantined, and how many predate checksums (no
        sidecar checksum to verify against — reported, not quarantined).
        """
        checked = ok = unchecksummed = 0
        quarantined: List[str] = []
        for key in list(self.keys()):
            checked += 1
            expected = self.metadata(key).get("checksum")
            try:
                with open(self.payload_path(key), "rb") as handle:
                    blob = handle.read()
            except OSError:
                self._quarantine(key, "unreadable payload")
                quarantined.append(key)
                continue
            if expected is None:
                unchecksummed += 1
                ok += 1
                continue
            if _payload_checksum(blob) != expected:
                self._quarantine(key, "checksum mismatch")
                quarantined.append(key)
            else:
                ok += 1
        return {"checked": checked, "ok": ok, "quarantined": quarantined,
                "unchecksummed": unchecksummed}

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #
    def keys(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self.root)):
            shard_path = os.path.join(self.root, shard)
            if shard == self.CORRUPT_DIR or not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                if name.endswith(".pkl"):
                    yield name[:-len(".pkl")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def session_stats(self) -> Dict[str, int]:
        """Traffic through *this* handle: hits/misses, bytes, quarantines.

        Unlike :meth:`stats` (which walks the on-disk inventory), these
        counters cover only the lifetime of this ``ResultStore`` object, so a
        pipeline run can report its own reuse rate without being polluted by
        entries written by earlier runs.
        """
        return dict(self._session)

    def stats(self) -> Dict[str, Any]:
        entries = 0
        total_bytes = 0
        for key in self.keys():
            entries += 1
            try:
                total_bytes += os.path.getsize(self.payload_path(key))
            except OSError:
                pass
        return {"root": self.root, "entries": entries, "bytes": total_bytes}

    def clear(self) -> int:
        removed = 0
        for key in list(self.keys()):
            removed += bool(self.discard(key))
        return removed


__all__ = ["ResultStore", "STORE_FORMAT_VERSION"]
