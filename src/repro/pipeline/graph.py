"""Task graph: per-cell experiment tasks with explicit dependencies.

An experiment decomposes into a DAG of small tasks — dataset generation,
model training, one attack cell per (model × method × field) combination,
and a final aggregation that assembles the paper-style table.  The graph
knows nothing about *how* tasks execute; it provides validation, a
deterministic topological order, and content fingerprints used as result
store keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .hashing import content_hash


class GraphError(ValueError):
    """Raised for malformed graphs: duplicate ids, missing deps, cycles."""


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    task_id:
        Unique, human-readable id (e.g. ``"table3/resgcn/unbounded"``).
    kind:
        Name of the registered executor that runs this task.
    params:
        JSON-serialisable parameters; together with the dependency
        fingerprints they define the task's content hash.
    deps:
        Ids of tasks whose outputs this task consumes.
    cacheable:
        Whether the output may be served from / written to the result
        store.  Cheap bookkeeping tasks (dataset stubs, table assembly)
        opt out so the store holds only the expensive attack payloads.
    timeout:
        Optional per-task wall-clock deadline in seconds, overriding the
        run-wide ``RetryPolicy.task_timeout`` (a training task may need a
        longer leash than an attack cell).  Pure execution strategy: it
        does not participate in the content fingerprint, exactly like the
        scheduler's job count.
    """

    task_id: str
    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    cacheable: bool = True
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise GraphError("task_id must be non-empty")
        if not self.kind:
            raise GraphError(f"task {self.task_id!r} has no kind")
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "deps", tuple(self.deps))


class TaskGraph:
    """A DAG of :class:`Task` objects plus the id of the final result task."""

    def __init__(self, result: Optional[str] = None) -> None:
        self._tasks: Dict[str, Task] = {}
        self.result = result

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, task: Task) -> Task:
        if task.task_id in self._tasks:
            raise GraphError(f"duplicate task id {task.task_id!r}")
        self._tasks[task.task_id] = task
        return task

    def add_once(self, task: Task) -> Task:
        """Add ``task`` unless an identically-specified one already exists."""
        existing = self._tasks.get(task.task_id)
        if existing is not None:
            if (existing.kind, existing.params, existing.deps) != (
                    task.kind, task.params, task.deps):
                raise GraphError(
                    f"conflicting re-definition of task {task.task_id!r}")
            return existing
        return self.add(task)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def get(self, task_id: str) -> Task:
        return self._tasks[task_id]

    def task_ids(self) -> List[str]:
        return list(self._tasks)

    def dependents(self) -> Dict[str, List[str]]:
        """Reverse adjacency: task id -> ids of tasks that depend on it."""
        reverse: Dict[str, List[str]] = {task_id: [] for task_id in self._tasks}
        for task in self:
            for dep in task.deps:
                reverse.setdefault(dep, []).append(task.task_id)
        return reverse

    # ------------------------------------------------------------------ #
    # Validation and ordering
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`GraphError` on missing deps, bad result id, cycles."""
        for task in self:
            for dep in task.deps:
                if dep not in self._tasks:
                    raise GraphError(
                        f"task {task.task_id!r} depends on unknown task {dep!r}")
        if self.result is not None and self.result not in self._tasks:
            raise GraphError(f"result task {self.result!r} is not in the graph")
        self.topological_order()

    def topological_order(self) -> List[Task]:
        """Kahn's algorithm, stable in insertion order (deterministic)."""
        in_degree = {task.task_id: len(task.deps) for task in self}
        reverse = self.dependents()
        ready = [task_id for task_id, degree in in_degree.items() if degree == 0]
        order: List[Task] = []
        while ready:
            task_id = ready.pop(0)
            order.append(self._tasks[task_id])
            for dependent in reverse.get(task_id, ()):
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._tasks):
            unresolved = sorted(set(self._tasks) - {t.task_id for t in order})
            raise GraphError(f"dependency cycle involving {unresolved}")
        return order

    # ------------------------------------------------------------------ #
    # Content addressing
    # ------------------------------------------------------------------ #
    def fingerprints(self, salt: Optional[Mapping[str, object]] = None
                     ) -> Dict[str, str]:
        """Content hash per task.

        A task's fingerprint covers its kind, its parameters, the
        fingerprints of its dependencies (so upstream changes invalidate
        downstream cache entries transitively) and a graph-wide ``salt``
        (the experiment configuration and store format version).
        """
        salt = dict(salt or {})
        fingerprints: Dict[str, str] = {}
        for task in self.topological_order():
            fingerprints[task.task_id] = content_hash({
                "kind": task.kind,
                "params": task.params,
                "deps": {dep: fingerprints[dep] for dep in task.deps},
                "salt": salt,
            })
        return fingerprints


def merge_graphs(graphs: Sequence[TaskGraph]) -> TaskGraph:
    """Union several experiment graphs (shared dataset/model tasks dedupe)."""
    merged = TaskGraph()
    for graph in graphs:
        for task in graph:
            merged.add_once(task)
    return merged


__all__ = ["Task", "TaskGraph", "GraphError", "merge_graphs"]
