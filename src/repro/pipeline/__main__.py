"""``python -m repro.pipeline`` — run experiments through the pipeline."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. `... | head`): not an error.
        # Re-point stdout at devnull so interpreter shutdown does not warn.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
