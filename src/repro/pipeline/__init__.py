"""``repro.pipeline`` — parallel experiment orchestration.

The pipeline decomposes each paper experiment into a task graph (dataset →
trained model → attack cells → table assembly), schedules ready tasks onto
a pluggable executor backend — in-process serial, a local multiprocessing
pool, or a fleet of ``repro.serve`` worker daemons — and memoises every
cell in a content-addressed result store (on disk, or an HTTP store daemon
shared by the fleet) so re-runs and resumed runs skip completed work.  See
``python -m repro.pipeline --help`` for the CLI.
"""

from .executors import (BACKEND_NAMES, ExecutorBackend, LocalPoolBackend,
                        RemoteBackend, SerialBackend, make_backend)
from .graph import GraphError, Task, TaskGraph, merge_graphs
from .hashing import canonical_json, content_hash
from .progress import ProgressReporter, RunReport, TaskRecord
from .resilience import (FaultPlan, FaultSpec, InjectedFault, RetryPolicy,
                         TaskTimeoutError, TransientTaskError,
                         WorkerCrashError, classify_error)
from .scheduler import (PipelineError, PipelineResult, PipelineSession,
                        config_salt, run_graph)
from .store import (STORE_FORMAT_VERSION, ResultStore, StoreBackend,
                    canonical_payload_bytes, open_store)
from .store_http import RemoteStore, StoreServer, StoreServerThread
from .worker import available_executors, execute_task, register_executor

__all__ = [
    "BACKEND_NAMES",
    "ExecutorBackend",
    "FaultPlan",
    "FaultSpec",
    "GraphError",
    "InjectedFault",
    "LocalPoolBackend",
    "PipelineError",
    "PipelineResult",
    "PipelineSession",
    "ProgressReporter",
    "RemoteBackend",
    "RemoteStore",
    "ResultStore",
    "RetryPolicy",
    "RunReport",
    "STORE_FORMAT_VERSION",
    "SerialBackend",
    "StoreBackend",
    "StoreServer",
    "StoreServerThread",
    "Task",
    "TaskGraph",
    "TaskRecord",
    "TaskTimeoutError",
    "TransientTaskError",
    "WorkerCrashError",
    "available_executors",
    "canonical_json",
    "canonical_payload_bytes",
    "classify_error",
    "config_salt",
    "content_hash",
    "execute_task",
    "make_backend",
    "merge_graphs",
    "open_store",
    "register_executor",
    "run_graph",
]
