"""``repro.pipeline`` — parallel experiment orchestration.

The pipeline decomposes each paper experiment into a task graph (dataset →
trained model → attack cells → table assembly), schedules ready tasks onto
a multiprocessing worker pool, and memoises every cell in a
content-addressed result store so re-runs and resumed runs skip completed
work.  See ``python -m repro.pipeline --help`` for the CLI.
"""

from .graph import GraphError, Task, TaskGraph, merge_graphs
from .hashing import canonical_json, content_hash
from .progress import ProgressReporter, RunReport, TaskRecord
from .resilience import (FaultPlan, FaultSpec, InjectedFault, RetryPolicy,
                         TaskTimeoutError, TransientTaskError,
                         WorkerCrashError, classify_error)
from .scheduler import (PipelineError, PipelineResult, PipelineSession,
                        config_salt, run_graph)
from .store import STORE_FORMAT_VERSION, ResultStore
from .worker import available_executors, execute_task, register_executor

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "GraphError",
    "InjectedFault",
    "PipelineError",
    "PipelineResult",
    "PipelineSession",
    "ProgressReporter",
    "ResultStore",
    "RetryPolicy",
    "RunReport",
    "STORE_FORMAT_VERSION",
    "Task",
    "TaskGraph",
    "TaskRecord",
    "TaskTimeoutError",
    "TransientTaskError",
    "WorkerCrashError",
    "available_executors",
    "canonical_json",
    "classify_error",
    "config_salt",
    "content_hash",
    "execute_task",
    "merge_graphs",
    "register_executor",
    "run_graph",
]
