"""Per-process task execution: executor registry and worker-side context.

The scheduler ships tasks to worker processes as ``(task_id, kind, params,
dep_results, attempt)`` tuples.  Each worker process owns its own
lazily-built ``ExperimentContext`` — datasets are regenerated
deterministically from the seed and trained model weights are shared
through the on-disk checkpoint cache, so no live objects ever cross
process boundaries.

Executors are plain functions ``fn(context, params, deps) -> payload``
registered under a ``kind`` string.  Domain executors (attack cells, table
assembly, ...) live in :mod:`repro.experiments.cells` and the table modules;
they are imported on demand so this module stays import-light and free of
circular dependencies.

Workers may also carry a :class:`~.resilience.FaultPlan` (installed through
:func:`initialize_worker`): the deterministic chaos harness that crashes,
hangs or transiently fails configured ``(task, attempt)`` executions so the
scheduler's retry/timeout/recovery machinery can be exercised — in tests
and in live runs alike.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .resilience import FaultPlan, error_type_names

Executor = Callable[[Any, Mapping[str, Any], Mapping[str, Any]], Any]

_EXECUTORS: Dict[str, Executor] = {}

# Per-worker-process state, populated by :func:`initialize_worker`.
_WORKER_CONFIG: Optional[Dict[str, Any]] = None
_WORKER_CONTEXT: Optional[Any] = None
_WORKER_FAULTS: Optional[FaultPlan] = None


# ---------------------------------------------------------------------- #
# Executor registry
# ---------------------------------------------------------------------- #
def register_executor(kind: str) -> Callable[[Executor], Executor]:
    """Decorator: register ``fn`` as the executor for ``kind`` tasks."""
    def decorator(fn: Executor) -> Executor:
        _EXECUTORS[kind] = fn
        return fn
    return decorator


def get_executor(kind: str) -> Executor:
    _ensure_domain_executors()
    try:
        return _EXECUTORS[kind]
    except KeyError:
        raise KeyError(f"no executor registered for task kind {kind!r}; "
                       f"known kinds: {sorted(_EXECUTORS)}") from None


def available_executors() -> List[str]:
    _ensure_domain_executors()
    return sorted(_EXECUTORS)


def _ensure_domain_executors() -> None:
    """Import the modules that register the experiment executors.

    Imported lazily (not at module import time) because the experiment
    modules themselves import :func:`register_executor` from here.
    """
    from ..experiments import plans  # noqa: F401  (import registers executors)


# ---------------------------------------------------------------------- #
# Worker process lifecycle
# ---------------------------------------------------------------------- #
def initialize_worker(config_dict: Dict[str, Any],
                      trace_path: Optional[str] = None,
                      fault_specs: Optional[Sequence[Dict[str, Any]]] = None
                      ) -> None:
    """Pool initializer: remember the experiment config for this process.

    The actual ``ExperimentContext`` is built lazily on the first task so
    that idle workers cost nothing.

    When the parent run is traced, ``trace_path`` carries the sink path into
    the worker: each worker appends to the same JSONL file (single-``write``
    events over ``O_APPEND`` keep lines atomic), so one trace covers the
    whole fleet.

    ``fault_specs`` (plain-data :meth:`FaultPlan.as_specs` form, because
    initargs must survive pickling under spawn) installs the deterministic
    fault-injection plan; rebuilt pools re-install it, so a crash fault
    keyed to attempt N still fires after its worker was replaced.
    """
    global _WORKER_CONFIG, _WORKER_CONTEXT, _WORKER_FAULTS
    _WORKER_CONFIG = dict(config_dict)
    _WORKER_CONTEXT = None
    _WORKER_FAULTS = FaultPlan.from_specs(fault_specs)
    # Each worker owns a core slice already; without this, every worker's
    # kd-tree queries (and, on fresh BLAS loads, its matmuls) would fan out
    # over all cores — jobs × cores threads of oversubscription, which is
    # exactly what makes 2-vCPU CI runners' timings noisy.
    from ..accel.threads import pin_compute_threads
    pin_compute_threads(1)
    from ..telemetry import Tracer, install_tracer
    install_tracer(None)  # drop any tracer inherited via fork
    if trace_path:
        tracer = Tracer(trace_path)
        install_tracer(tracer)
        # Flush this worker's counter totals (one `counters` event per
        # worker) when the pool retires it.  Pool workers leave through
        # ``os._exit`` (atexit never runs); ``multiprocessing.util``
        # finalizers do run, inside the worker's exit function.
        from multiprocessing.util import Finalize
        Finalize(None, tracer.close, exitpriority=10)


def worker_context() -> Any:
    """The per-process experiment context (built on first use)."""
    global _WORKER_CONTEXT
    if _WORKER_CONTEXT is None:
        if _WORKER_CONFIG is None:
            raise RuntimeError("worker process was not initialised with a "
                               "configuration (initialize_worker not called)")
        from ..experiments.context import ExperimentConfig, ExperimentContext
        config = ExperimentConfig(**_WORKER_CONFIG)
        _WORKER_CONTEXT = ExperimentContext(config)
    return _WORKER_CONTEXT


# ---------------------------------------------------------------------- #
# Execution entry points
# ---------------------------------------------------------------------- #
def execute_task(kind: str, params: Mapping[str, Any],
                 deps: Mapping[str, Any], context: Any = None) -> Any:
    """Run one task in the current process and return its payload."""
    executor = get_executor(kind)
    if context is None:
        context = worker_context()
    return executor(context, params, deps)


def run_task(task_id: str, kind: str, params: Mapping[str, Any],
             deps: Mapping[str, Any], attempt: int = 1
             ) -> Tuple[str, bool, Any, float,
                        Optional[Dict[str, Any]], Optional[List[str]]]:
    """Pool entry point: never raises, so one failed cell cannot kill a run.

    Returns ``(task_id, ok, payload_or_error, elapsed_seconds, stats,
    error_types)``.  Failures travel back as formatted tracebacks
    (exceptions themselves may not pickle cleanly across processes), plus
    the exception's class names along its MRO so the scheduler can classify
    transient vs permanent without string-matching the traceback.
    ``stats`` holds the task's neighbourhood-cache / attack counters (see
    :func:`repro.telemetry.collect_stats`).

    ``attempt`` is the 1-based execution ordinal the scheduler assigned;
    the fault plan keys on it, which is what makes e.g. a
    fail-twice-then-succeed injection deterministic even across worker
    restarts and pool rebuilds.
    """
    from ..telemetry import collect_stats
    start = time.perf_counter()
    try:
        if _WORKER_FAULTS is not None:
            _WORKER_FAULTS.inject(task_id, attempt, allow_exit=True)
        with collect_stats() as collector:
            payload = execute_task(kind, params, deps)
        return (task_id, True, payload, time.perf_counter() - start,
                collector.as_dict(), None)
    except BaseException as error:
        return (task_id, False, traceback.format_exc(),
                time.perf_counter() - start, None, error_type_names(error))


__all__ = [
    "register_executor",
    "get_executor",
    "available_executors",
    "initialize_worker",
    "worker_context",
    "execute_task",
    "run_task",
]
