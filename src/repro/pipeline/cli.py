"""Command-line entry point of the experiment pipeline.

Examples
--------
Regenerate Table III on 4 worker processes, resuming from the result store::

    python -m repro.pipeline --experiment table3 --jobs 4 --resume

Re-running the same command completes almost instantly: every attack cell is
served from the content-addressed store.  Use ``--fresh`` to force
recomputation, ``--status`` to inspect which cells are cached, and
``--list`` to enumerate the experiment names.
"""

from __future__ import annotations

import argparse
import os
from contextlib import nullcontext
from typing import List, Optional

from .graph import merge_graphs
from .progress import ProgressReporter
from .resilience import FaultPlan, RetryPolicy
from .scheduler import run_graph
from .store import ResultStore


def resilience_options(args) -> "tuple[Optional[RetryPolicy], Optional[FaultPlan]]":
    """Build the (retry policy, fault plan) pair from parsed CLI options.

    ``None`` for the policy means "scheduler default" (one retry, no
    deadline).  The fault plan falls back to ``$REPRO_FAULT_PLAN`` so chaos
    runs can be injected without touching the command line (CI does this).
    """
    retry: Optional[RetryPolicy] = None
    if args.retries is not None or args.task_timeout is not None:
        defaults = RetryPolicy()
        retry = RetryPolicy(
            max_attempts=(args.retries + 1 if args.retries is not None
                          else defaults.max_attempts),
            task_timeout=args.task_timeout)
    plan_text = args.fault_plan
    if plan_text is None:
        plan_text = os.environ.get("REPRO_FAULT_PLAN")
    faults = FaultPlan.parse(plan_text) if plan_text else None
    return retry, faults


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--experiment", default="table3",
                        help="experiment name, or 'all' (see --list)")
    parser.add_argument("--jobs", type=positive_int, default=1, metavar="N",
                        help="worker processes (1 = serial, in-process)")
    parser.add_argument("--batch-scenes", type=positive_int, default=1,
                        metavar="B",
                        help="scenes driven per attack loop inside each cell "
                             "(amortises one forward/backward over B scenes; "
                             "results are identical at any value, so cached "
                             "cells are shared across settings)")
    parser.add_argument("--attack-mode", default="whitebox",
                        choices=("whitebox", "nes", "spsa", "boundary"),
                        help="threat model for every attack cell: white-box "
                             "gradients (default) or a black-box engine "
                             "(NES/SPSA gradient estimation, decision-based "
                             "boundary walk)")
    parser.add_argument("--query-budget", type=positive_int, default=None,
                        metavar="Q",
                        help="per-scene model-query budget of the black-box "
                             "modes (default: the attack profile's value)")
    parser.add_argument("--samples-per-step", type=positive_int, default=None,
                        metavar="S",
                        help="finite-difference directions per NES/SPSA step "
                             "(default: the attack profile's value)")
    parser.add_argument("--eot-samples", type=positive_int, default=None,
                        metavar="K",
                        help="defense samples per optimisation step of the "
                             "adaptive (defense-aware) attack cells, e.g. in "
                             "table_defenses (default: the experiment's own "
                             "value)")
    parser.add_argument("--scale", default="default",
                        choices=("default", "paper", "tiny"),
                        help="experiment scale profile")
    parser.add_argument("--paper-scale", action="store_true",
                        help="shorthand for --scale paper")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="directory to write formatted tables into")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result store location "
                             "(default: <cache_dir>/results)")
    parser.add_argument("--resume", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="serve unchanged tasks from the result store "
                             "(default on; --no-resume recomputes but still "
                             "writes the store)")
    parser.add_argument("--fresh", action="store_true",
                        help="recompute every task, ignoring cached results "
                             "(alias of --no-resume)")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the result store entirely")
    parser.add_argument("--list", action="store_true",
                        help="list experiment names and exit")
    parser.add_argument("--status", action="store_true",
                        help="show cached/pending tasks per experiment "
                             "instead of running")
    parser.add_argument("--retries", type=nonnegative_int, default=None,
                        metavar="R",
                        help="retries per task after a transient failure — "
                             "worker crash, broken pool, timeout, injected "
                             "fault (default: 1, i.e. two attempts; 0 "
                             "disables retries; deterministic errors always "
                             "fail fast)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline per task attempt (parallel "
                             "runs only); a task past its deadline has its "
                             "worker terminated and the attempt counts as a "
                             "transient failure (default: no deadline)")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN",
                        help="deterministic fault injection for chaos "
                             "testing, e.g. 'table3/*=crash:1,*=fail:2' "
                             "(clauses PATTERN=MODE[:TIMES[:SECONDS]], MODE "
                             "in crash/hang/fail/corrupt; default: "
                             "$REPRO_FAULT_PLAN)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-task progress lines")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL telemetry trace of the run "
                             "(inspect with `python -m repro.telemetry "
                             "summarize PATH`)")
    return parser


def _build_config(args):
    from ..experiments.context import ExperimentConfig

    scale = "paper" if args.paper_scale else args.scale
    factory = {"default": ExperimentConfig.default,
               "paper": ExperimentConfig.paper_scale,
               "tiny": ExperimentConfig.tiny}[scale]
    return factory(seed=args.seed, batch_scenes=args.batch_scenes,
                   attack_mode=args.attack_mode,
                   query_budget=args.query_budget,
                   samples_per_step=args.samples_per_step,
                   eot_samples=args.eot_samples)


def _print_status(name: str, graph, config, store: Optional[ResultStore]) -> None:
    from .scheduler import config_salt

    fingerprints = graph.fingerprints(config_salt(config))
    print(f"{name}: {len(graph)} tasks")
    for task in graph.topological_order():
        if not task.cacheable:
            state = "uncached"
        elif store is not None and store.contains(fingerprints[task.task_id],
                                                  count=False):
            state = "cached"
        else:
            state = "pending"
        print(f"  {state:<9s} {task.task_id}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    from ..experiments.plans import available_experiments, plan_experiment

    if args.list:
        for name in available_experiments():
            print(name)
        return 0

    names = (available_experiments() if args.experiment == "all"
             else [args.experiment])
    unknown = [name for name in names if name not in available_experiments()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        return 2

    config = _build_config(args)
    store: Optional[ResultStore] = None
    if not args.no_store:
        store = ResultStore(args.store
                            or os.path.join(config.cache_dir, "results"))

    graphs = {name: plan_experiment(name, config) for name in names}
    if args.status:
        for name, graph in graphs.items():
            _print_status(name, graph, config, store)
        return 0

    # One merged graph: shared dataset/model tasks across experiments run
    # (and cache) once, on a single worker pool.
    merged = merge_graphs(list(graphs.values()))
    reporter = ProgressReporter(total=len(merged), enabled=not args.quiet)
    retry, faults = resilience_options(args)
    tracer_cm = nullcontext()
    if args.trace:
        from ..telemetry import build_manifest, trace_to
        from .scheduler import config_salt
        tracer_cm = trace_to(args.trace, manifest=build_manifest(
            salt=config_salt(config),
            extra={"experiments": names, "jobs": args.jobs,
                   "fault_plan": faults.text() if faults else None}))
    with tracer_cm:
        result = run_graph(merged, config, jobs=args.jobs, store=store,
                           reporter=reporter,
                           refresh=args.fresh or not args.resume,
                           retry=retry, faults=faults)
    print(result.report.summary())

    failures = 0
    for name, graph in graphs.items():
        if graph.result in result.outputs:
            table = result.outputs[graph.result]
            text = table.formatted()
            # Persist before printing: a closed stdout pipe (`... | head`)
            # must not cost the caller their output file.
            if args.output:
                os.makedirs(args.output, exist_ok=True)
                path = os.path.join(args.output, f"{table.name}.txt")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text + "\n")
            print(text)
            print()
        else:
            failures += 1
            errors = [record for record in result.report.failures()
                      if record.task_id in graph]
            detail = errors[0].error if errors and errors[0].error else \
                "an upstream task failed"
            print(f"{name} FAILED: {detail}")
    return 1 if failures else 0


__all__ = ["build_parser", "main", "resilience_options"]
