"""Command-line entry point of the experiment pipeline.

Examples
--------
Regenerate Table III on 4 worker processes, resuming from the result store::

    python -m repro.pipeline --experiment table3 --jobs 4 --resume

Re-running the same command completes almost instantly: every attack cell is
served from the content-addressed store.  Use ``--fresh`` to force
recomputation, ``--status`` to inspect which cells are cached, and
``--list`` to enumerate the experiment names.

Distribute the run across ``repro.serve`` worker daemons (sharing one
HTTP result store)::

    python -m repro.pipeline --experiment table3 --jobs 8 \
        --backend remote --workers hostA:7431,hostB:7431 \
        --store-url http://hostC:7433

Store maintenance subcommands::

    python -m repro.pipeline verify [--store DIR | --store-url URL]
    python -m repro.pipeline gc --max-bytes 2G [--max-entries N]
    python -m repro.pipeline store-serve --store DIR --port 7433
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import nullcontext
from typing import List, Optional

from .executors import BACKEND_NAMES
from .graph import merge_graphs
from .progress import ProgressReporter
from .resilience import FaultPlan, RetryPolicy
from .scheduler import run_graph
from .store import ResultStore, StoreBackend, open_store


def resilience_options(args) -> "tuple[Optional[RetryPolicy], Optional[FaultPlan]]":
    """Build the (retry policy, fault plan) pair from parsed CLI options.

    ``None`` for the policy means "scheduler default" (one retry, no
    deadline).  The fault plan falls back to ``$REPRO_FAULT_PLAN`` so chaos
    runs can be injected without touching the command line (CI does this).
    """
    retry: Optional[RetryPolicy] = None
    if args.retries is not None or args.task_timeout is not None:
        defaults = RetryPolicy()
        retry = RetryPolicy(
            max_attempts=(args.retries + 1 if args.retries is not None
                          else defaults.max_attempts),
            task_timeout=args.task_timeout)
    plan_text = args.fault_plan
    if plan_text is None:
        plan_text = os.environ.get("REPRO_FAULT_PLAN")
    faults = FaultPlan.parse(plan_text) if plan_text else None
    return retry, faults


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def byte_size(text: str) -> int:
    """``500M`` / ``2G`` / plain bytes → an integer byte count."""
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}
    raw = text.strip().upper().rstrip("IB") or text.strip().upper()
    try:
        if raw and raw[-1] in units:
            return int(float(raw[:-1]) * units[raw[-1]])
        return int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a size: {text!r} (use bytes or a K/M/G/T suffix)") from None


def nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--experiment", default="table3",
                        help="experiment name, or 'all' (see --list)")
    parser.add_argument("--jobs", type=positive_int, default=1, metavar="N",
                        help="worker processes (1 = serial, in-process)")
    parser.add_argument("--batch-scenes", type=positive_int, default=1,
                        metavar="B",
                        help="scenes driven per attack loop inside each cell "
                             "(amortises one forward/backward over B scenes; "
                             "results are identical at any value, so cached "
                             "cells are shared across settings)")
    parser.add_argument("--attack-mode", default="whitebox",
                        choices=("whitebox", "nes", "spsa", "boundary"),
                        help="threat model for every attack cell: white-box "
                             "gradients (default) or a black-box engine "
                             "(NES/SPSA gradient estimation, decision-based "
                             "boundary walk)")
    parser.add_argument("--query-budget", type=positive_int, default=None,
                        metavar="Q",
                        help="per-scene model-query budget of the black-box "
                             "modes (default: the attack profile's value)")
    parser.add_argument("--samples-per-step", type=positive_int, default=None,
                        metavar="S",
                        help="finite-difference directions per NES/SPSA step "
                             "(default: the attack profile's value)")
    parser.add_argument("--eot-samples", type=positive_int, default=None,
                        metavar="K",
                        help="defense samples per optimisation step of the "
                             "adaptive (defense-aware) attack cells, e.g. in "
                             "table_defenses (default: the experiment's own "
                             "value)")
    parser.add_argument("--tensor-backend", default="numpy",
                        choices=("numpy", "torch"),
                        help="tensor execution backend for compiled attack "
                             "plans: numpy (default, bitwise-reproducible) "
                             "or torch (allclose, not bitwise — results are "
                             "store-salted separately; requires the [torch] "
                             "extra)")
    parser.add_argument("--scale", default="default",
                        choices=("default", "paper", "tiny"),
                        help="experiment scale profile")
    parser.add_argument("--paper-scale", action="store_true",
                        help="shorthand for --scale paper")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="directory to write formatted tables into")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result store location "
                             "(default: <cache_dir>/results)")
    parser.add_argument("--store-url", default=None, metavar="URL",
                        help="shared HTTP result store (`python -m "
                             "repro.pipeline store-serve`); overrides "
                             "--store so a whole fleet memoises into one "
                             "content-addressed layer")
    parser.add_argument("--backend", default="auto", choices=BACKEND_NAMES,
                        help="executor backend: auto (serial when --jobs 1, "
                             "local pool otherwise), serial, local, or "
                             "remote — dispatch to repro.serve worker "
                             "daemons (requires --workers)")
    parser.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                        help="comma-separated repro.serve daemon addresses "
                             "(host:port or unix-socket paths) of the "
                             "remote backend")
    parser.add_argument("--resume", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="serve unchanged tasks from the result store "
                             "(default on; --no-resume recomputes but still "
                             "writes the store)")
    parser.add_argument("--fresh", action="store_true",
                        help="recompute every task, ignoring cached results "
                             "(alias of --no-resume)")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the result store entirely")
    parser.add_argument("--list", action="store_true",
                        help="list experiment names and exit")
    parser.add_argument("--status", action="store_true",
                        help="show cached/pending tasks per experiment "
                             "instead of running")
    parser.add_argument("--retries", type=nonnegative_int, default=None,
                        metavar="R",
                        help="retries per task after a transient failure — "
                             "worker crash, broken pool, timeout, injected "
                             "fault (default: 1, i.e. two attempts; 0 "
                             "disables retries; deterministic errors always "
                             "fail fast)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline per task attempt (parallel "
                             "runs only); a task past its deadline has its "
                             "worker terminated and the attempt counts as a "
                             "transient failure (default: no deadline)")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN",
                        help="deterministic fault injection for chaos "
                             "testing, e.g. 'table3/*=crash:1,*=fail:2' "
                             "(clauses PATTERN=MODE[:TIMES[:SECONDS]], MODE "
                             "in crash/hang/fail/corrupt; default: "
                             "$REPRO_FAULT_PLAN)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-task progress lines")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL telemetry trace of the run "
                             "(inspect with `python -m repro.telemetry "
                             "summarize PATH`)")
    return parser


def _build_config(args):
    from ..experiments.context import ExperimentConfig

    scale = "paper" if args.paper_scale else args.scale
    factory = {"default": ExperimentConfig.default,
               "paper": ExperimentConfig.paper_scale,
               "tiny": ExperimentConfig.tiny}[scale]
    return factory(seed=args.seed, batch_scenes=args.batch_scenes,
                   attack_mode=args.attack_mode,
                   query_budget=args.query_budget,
                   samples_per_step=args.samples_per_step,
                   eot_samples=args.eot_samples,
                   tensor_backend=args.tensor_backend)


def _print_status(name: str, graph, config, store: Optional[ResultStore]) -> None:
    from .scheduler import config_salt

    fingerprints = graph.fingerprints(config_salt(config))
    print(f"{name}: {len(graph)} tasks")
    for task in graph.topological_order():
        if not task.cacheable:
            state = "uncached"
        elif store is not None and store.contains(fingerprints[task.task_id],
                                                  count=False):
            state = "cached"
        else:
            state = "pending"
        print(f"  {state:<9s} {task.task_id}")


def _resolve_store(args) -> StoreBackend:
    """Store named by ``--store-url`` / ``--store`` (default location)."""
    if getattr(args, "store_url", None):
        return open_store(args.store_url)
    root = getattr(args, "store", None)
    if not root:
        from ..experiments.context import ExperimentConfig
        root = os.path.join(ExperimentConfig.default().cache_dir, "results")
    return open_store(root)


def _store_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result store location "
                             "(default: <cache_dir>/results)")
    parser.add_argument("--store-url", default=None, metavar="URL",
                        help="operate on a shared HTTP store daemon "
                             "instead of a local directory")
    parser.add_argument("--json", action="store_true",
                        help="print the raw audit dict as JSON")


def _verify_main(argv: List[str]) -> int:
    """``verify``: integrity-audit every store entry, quarantining damage."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline verify",
        description="Re-checksum every stored payload; corrupt payloads "
                    "and unreadable sidecars are quarantined (moved aside "
                    "for inspection, recomputed on the next run).")
    _store_args(parser)
    args = parser.parse_args(argv)
    store = _resolve_store(args)
    audit = store.verify()
    if args.json:
        print(json.dumps(audit, indent=2, sort_keys=True))
    else:
        print(f"checked {audit['checked']} entries: {audit['ok']} ok, "
              f"{audit['unchecksummed']} unchecksummed (pre-checksum era), "
              f"{len(audit['quarantined'])} quarantined")
        for key in audit["quarantined"]:
            print(f"  quarantined {key}")
    return 1 if audit["quarantined"] else 0


def _gc_main(argv: List[str]) -> int:
    """``gc``: evict least-recently-used entries down to a byte budget."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline gc",
        description="Evict least-recently-used store entries until the "
                    "store fits the given budgets.  Eviction is safe by "
                    "construction: the store is a cache, and an evicted "
                    "task is simply recomputed on its next run.")
    _store_args(parser)
    parser.add_argument("--max-bytes", type=byte_size, default=None,
                        metavar="SIZE",
                        help="payload byte budget, e.g. 500M or 2G")
    parser.add_argument("--max-entries", type=nonnegative_int, default=None,
                        metavar="N", help="entry-count budget")
    args = parser.parse_args(argv)
    if args.max_bytes is None and args.max_entries is None:
        parser.error("nothing to do: pass --max-bytes and/or --max-entries")
    store = _resolve_store(args)
    swept = store.gc(max_bytes=args.max_bytes, max_entries=args.max_entries)
    if args.json:
        print(json.dumps(swept, indent=2, sort_keys=True))
    else:
        evicted = len(swept["evicted"])
        print(f"evicted {evicted} of {evicted + swept['kept']} entries: "
              f"{swept['bytes_before']} -> {swept['bytes_after']} bytes")
    return 0


def _store_serve_main(argv: List[str]) -> int:
    """``store-serve``: expose one on-disk store to a fleet over HTTP."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline store-serve",
        description="Serve a result store over HTTP so distributed workers "
                    "and schedulers share one memoisation layer (point "
                    "--store-url / repro.serve --store at the printed URL).")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="store directory (default: <cache_dir>/results)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=nonnegative_int, default=0,
                        help="TCP port (0 binds an ephemeral port)")
    args = parser.parse_args(argv)
    root = args.store
    if not root:
        from ..experiments.context import ExperimentConfig
        root = os.path.join(ExperimentConfig.default().cache_dir, "results")
    from .store_http import StoreServer
    server = StoreServer(ResultStore(root), host=args.host, port=args.port)
    print(f"serving result store {root} at {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


#: ``python -m repro.pipeline <subcommand> ...`` store-maintenance verbs;
#: anything else falls through to the flag-style experiment runner.
SUBCOMMANDS = {"verify": _verify_main, "gc": _gc_main,
               "store-serve": _store_serve_main}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    args = build_parser().parse_args(argv)

    from ..experiments.plans import available_experiments, plan_experiment

    if args.list:
        for name in available_experiments():
            print(name)
        return 0

    names = (available_experiments() if args.experiment == "all"
             else [args.experiment])
    unknown = [name for name in names if name not in available_experiments()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        return 2

    if args.backend == "remote" and not args.workers:
        print("--backend remote requires --workers host:port,...")
        return 2

    config = _build_config(args)
    store: Optional[StoreBackend] = None
    if not args.no_store:
        store = open_store(args.store_url or args.store
                           or os.path.join(config.cache_dir, "results"))

    graphs = {name: plan_experiment(name, config) for name in names}
    if args.status:
        for name, graph in graphs.items():
            _print_status(name, graph, config, store)
        return 0

    # One merged graph: shared dataset/model tasks across experiments run
    # (and cache) once, on a single worker pool.
    merged = merge_graphs(list(graphs.values()))
    reporter = ProgressReporter(total=len(merged), enabled=not args.quiet)
    retry, faults = resilience_options(args)
    tracer_cm = nullcontext()
    if args.trace:
        from ..telemetry import build_manifest, trace_to
        from .scheduler import config_salt
        tracer_cm = trace_to(args.trace, manifest=build_manifest(
            salt=config_salt(config),
            extra={"experiments": names, "jobs": args.jobs,
                   "backend": args.backend,
                   "fault_plan": faults.text() if faults else None}))
    workers = ([w.strip() for w in args.workers.split(",") if w.strip()]
               if args.workers else None)
    with tracer_cm:
        result = run_graph(merged, config, jobs=args.jobs, store=store,
                           reporter=reporter,
                           refresh=args.fresh or not args.resume,
                           retry=retry, faults=faults,
                           backend=args.backend, workers=workers)
    print(result.report.summary())

    failures = 0
    for name, graph in graphs.items():
        if graph.result in result.outputs:
            table = result.outputs[graph.result]
            text = table.formatted()
            # Persist before printing: a closed stdout pipe (`... | head`)
            # must not cost the caller their output file.
            if args.output:
                os.makedirs(args.output, exist_ok=True)
                path = os.path.join(args.output, f"{table.name}.txt")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text + "\n")
            print(text)
            print()
        else:
            failures += 1
            errors = [record for record in result.report.failures()
                      if record.task_id in graph]
            detail = errors[0].error if errors and errors[0].error else \
                "an upstream task failed"
            print(f"{name} FAILED: {detail}")
    return 1 if failures else 0


__all__ = ["build_parser", "main", "resilience_options"]
