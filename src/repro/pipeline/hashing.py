"""Canonical hashing of task specifications.

The result store is *content addressed*: a task's output is filed under a
hash of everything that determines it — attack parameters, model and dataset
scale, seeds, and the fingerprints of its dependencies.  Two invocations that
describe the same computation therefore share one store entry, regardless of
dictionary ordering, tuple-vs-list spelling or numpy scalar types.
"""

from __future__ import annotations

import hashlib
import json
from enum import Enum
from typing import Any

import numpy as np


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to plain JSON types with a deterministic layout.

    * mappings become dicts (``json.dumps`` sorts the keys),
    * sequences become lists,
    * enums collapse to their ``value``,
    * numpy scalars/arrays collapse to python numbers / nested lists.

    Anything else must already be JSON serialisable; unsupported objects
    raise ``TypeError`` so unhashable specs fail loudly rather than
    colliding silently.
    """
    if isinstance(value, Enum):
        return canonicalize(value.value)
    if isinstance(value, np.ndarray):
        return canonicalize(value.tolist())
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(key): canonicalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [canonicalize(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} for hashing")


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering of ``value`` (sorted keys, no spaces)."""
    return json.dumps(canonicalize(value), sort_keys=True,
                      separators=(",", ":"), allow_nan=True)


def content_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


__all__ = ["canonicalize", "canonical_json", "content_hash"]
