"""Pluggable executor backends: where the scheduler's tasks actually run.

The scheduler (:mod:`.scheduler`) owns *policy* — readiness, caching,
retry classification, backoff, deadlines — and delegates *mechanism* to an
:class:`ExecutorBackend`:

* :class:`SerialBackend` — in-process execution (the historical
  ``jobs == 1`` path, and the degradation target when a worker pool keeps
  dying);
* :class:`LocalPoolBackend` — the multiprocessing pool of a single host;
* :class:`RemoteBackend` — a fleet of ``repro.serve`` daemons reached over
  the JSON socket protocol, scheduled depot-style: round-robin across
  healthy hosts, failover to the next host when one refuses a connection,
  and work-stealing of straggler shards onto a second host.

Every backend returns the same worker tuple as
:func:`~repro.pipeline.worker.run_task` — ``(task_id, ok,
payload_or_error, elapsed, stats, error_types)`` — through a
``concurrent.futures.Future``, so the scheduler's event loop, retry
machinery and telemetry attribution are backend-agnostic.  Remote
failures surface as *classified* error-type lists (a dead host is
transient, a config-salt mismatch is permanent), reusing the
:mod:`.resilience` vocabulary end to end.
"""

from __future__ import annotations

import base64
import multiprocessing
import pickle
import sys
import threading
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .graph import Task
from .resilience import FaultPlan, TaskTimeoutError, error_type_names
from .worker import execute_task, initialize_worker, run_task

#: The worker result tuple every backend resolves its futures to.
ResultTuple = Tuple[str, bool, Any, float,
                    Optional[Dict[str, Any]], Optional[List[str]]]

#: Names accepted by :func:`make_backend` (and the ``--backend`` flags).
BACKEND_NAMES = ("auto", "serial", "local", "remote")


def encode_deps(deps: Mapping[str, Any]) -> str:
    """Dependency payloads as a base64 pickle blob for the wire.

    The serve protocol is JSON lines; task dependencies are arbitrary
    Python payloads (numpy arrays, dataclasses), so they cross as an
    opaque blob.  Pickle implies a *trusted fleet*: worker daemons are
    operated by whoever runs the scheduler (see ``docs/SERVING.md``).
    """
    return base64.b64encode(
        pickle.dumps(dict(deps), protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_deps(blob: Optional[str]) -> Dict[str, Any]:
    if not blob:
        return {}
    return pickle.loads(base64.b64decode(blob))


class ExecutorBackend:
    """Contract between the scheduler's event loop and an execution
    substrate.

    Attributes
    ----------
    name:
        Stable label stamped onto task telemetry and the run report.
    preemptive:
        Whether the scheduler may enforce wall-clock deadlines by killing
        this backend's workers (:meth:`interrupt` + :meth:`recover`).
        Non-preemptive backends bound runaway tasks themselves (the
        remote backend turns the deadline into a request timeout; serial
        execution cannot be preempted at all).
    recoverable:
        Whether :meth:`recover` can rebuild the substrate after a
        breakage.  When it cannot (or the rebuild budget is exhausted)
        the scheduler degrades to a :class:`SerialBackend`.
    """

    name: str = "backend"
    preemptive: bool = False
    recoverable: bool = False

    def start(self) -> None:
        """Acquire resources (pools, sockets, watchdogs)."""

    def submit(self, task: Task, attempt: int, deps: Mapping[str, Any],
               timeout_s: Optional[float] = None,
               key: Optional[str] = None) -> "Future[ResultTuple]":
        """Dispatch one attempt; the future resolves to a result tuple.

        ``key`` is the task's store fingerprint — backends with access to
        a shared store (the remote daemons) use it for remote-side dedup.
        May raise when the substrate is broken (a dead local pool refuses
        submissions) — the scheduler treats that as a recovery trigger,
        never as a task failure.
        """
        raise NotImplementedError

    def worker_of(self, future: "Future[ResultTuple]") -> str:
        """Attribution label of the worker that resolved ``future``."""
        return self.name

    def interrupt(self) -> None:
        """Forcefully stop all in-flight work (preemptive backends)."""

    def recover(self, reason: str) -> None:
        """Rebuild the substrate after :meth:`interrupt`."""

    def shutdown(self, wait: bool = True) -> None:
        """Release resources; ``wait=False`` must not block on hung work."""

    def counters(self) -> Dict[str, int]:
        """Backend-level tallies for the run report (steals, failovers)."""
        return {}


# ---------------------------------------------------------------------- #
# Serial
# ---------------------------------------------------------------------- #
class SerialRunner:
    """In-process execution with a lazily-built (or borrowed) context."""

    def __init__(self, config: Any, context: Any = None) -> None:
        self._config = config
        self._context = context

    @property
    def context(self) -> Any:
        if self._context is None:
            from .scheduler import config_to_dict
            from ..experiments.context import (ExperimentConfig,
                                               ExperimentContext)
            self._context = ExperimentContext(
                ExperimentConfig(**config_to_dict(self._config)))
        return self._context

    def execute(self, task: Task, deps: Mapping[str, Any]) -> Any:
        return execute_task(task.kind, task.params, deps,
                            context=self.context)


class SerialBackend(ExecutorBackend):
    """Execute tasks synchronously in the scheduler's own process.

    ``submit`` returns an already-resolved future, so the generic event
    loop degenerates to serial execution with zero special-casing.  The
    historical serial semantics are preserved: an optional caller-provided
    context is borrowed instead of rebuilt, fault injection never really
    exits the process (``crash`` raises
    :class:`~.resilience.WorkerCrashError`), and deadlines are not
    enforced — in-process execution cannot be preempted.
    """

    name = "serial"

    def __init__(self, config: Any, context: Any = None,
                 faults: Optional[FaultPlan] = None) -> None:
        self._runner = SerialRunner(config, context)
        self._faults = faults

    def submit(self, task: Task, attempt: int, deps: Mapping[str, Any],
               timeout_s: Optional[float] = None,
               key: Optional[str] = None) -> "Future[ResultTuple]":
        from ..telemetry import collect_stats
        future: "Future[ResultTuple]" = Future()
        start = time.perf_counter()
        try:
            if self._faults is not None:
                self._faults.inject(task.task_id, attempt, allow_exit=False)
            with collect_stats() as collector:
                payload = self._runner.execute(task, deps)
        except BaseException as error:  # noqa: BLE001 — isolation by design
            future.set_result((task.task_id, False, traceback.format_exc(),
                               time.perf_counter() - start, None,
                               error_type_names(error)))
        else:
            future.set_result((task.task_id, True, payload,
                               time.perf_counter() - start,
                               collector.as_dict(), None))
        return future


# ---------------------------------------------------------------------- #
# Local multiprocessing pool
# ---------------------------------------------------------------------- #
def terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully stop a pool whose workers are dead or must die.

    ``shutdown(wait=True)`` can block forever behind a hung worker, so
    worker processes are terminated (then killed) first and the executor
    is released without waiting.  ``_processes`` is private but stable
    across supported CPythons; a missing attribute degrades to a plain
    non-waiting shutdown.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:  # noqa: BLE001
            pass
    for process in processes:
        try:
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
        except Exception:  # noqa: BLE001
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001
        pass


def pool_mp_context():
    """Prefer fork on Linux: workers inherit the executor registry
    (including any test-registered kinds) and the imported modules.
    Elsewhere use spawn — forking after BLAS/ObjC initialisation is unsafe
    on macOS — and rely on the lazy domain-executor import in the worker."""
    methods = multiprocessing.get_all_start_methods()
    use_fork = sys.platform.startswith("linux") and "fork" in methods
    return multiprocessing.get_context("fork" if use_fork else "spawn")


class LocalPoolBackend(ExecutorBackend):
    """The single-host ``ProcessPoolExecutor`` substrate.

    Workers are initialized once with the run's config/trace/fault plan
    and build their experiment context lazily; the scheduler enforces
    deadlines by interrupting the pool (``preemptive``) and rebuilds it
    through :meth:`recover` within its budget.
    """

    name = "local"
    preemptive = True
    recoverable = True

    def __init__(self, config: Any, jobs: int,
                 faults: Optional[FaultPlan] = None,
                 trace_path: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        from .scheduler import config_to_dict
        self.jobs = jobs
        self._config_dict = config_to_dict(config)
        self._fault_specs = faults.as_specs() if faults is not None else None
        self._trace_path = trace_path
        self._pool: Optional[ProcessPoolExecutor] = None

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=pool_mp_context(),
            initializer=initialize_worker,
            initargs=(self._config_dict, self._trace_path,
                      self._fault_specs))

    def start(self) -> None:
        if self._pool is None:
            self._pool = self._make_pool()

    def submit(self, task: Task, attempt: int, deps: Mapping[str, Any],
               timeout_s: Optional[float] = None,
               key: Optional[str] = None) -> "Future[ResultTuple]":
        return self._pool.submit(run_task, task.task_id, task.kind,
                                 dict(task.params), dict(deps), attempt)

    def interrupt(self) -> None:
        if self._pool is not None:
            terminate_pool(self._pool)
            self._pool = None

    def recover(self, reason: str) -> None:
        self.interrupt()
        self._pool = self._make_pool()

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is None:
            return
        if wait:
            self._pool.shutdown(wait=True)
            self._pool = None
        else:
            self.interrupt()


# ---------------------------------------------------------------------- #
# Remote fleet of repro.serve daemons
# ---------------------------------------------------------------------- #
class _Dispatch:
    """One task attempt travelling through the remote backend."""

    __slots__ = ("task", "attempt", "deps_blob", "timeout_s", "key",
                 "cacheable", "future", "started", "primary_host", "stolen")

    def __init__(self, task: Task, attempt: int, deps_blob: str,
                 timeout_s: Optional[float], key: Optional[str],
                 cacheable: bool, future: "Future[ResultTuple]") -> None:
        self.task = task
        self.attempt = attempt
        self.deps_blob = deps_blob
        self.timeout_s = timeout_s
        self.key = key
        self.cacheable = cacheable
        self.future = future
        self.started: Optional[float] = None    # set when dispatch begins
        self.primary_host: Optional[str] = None
        self.stolen = False


class _HostDown(Exception):
    """Connection-level failure: try the next host in the ring."""


class _RequestTimeout(Exception):
    """The socket timed out waiting for a daemon's answer.

    Carries the terminal result tuple; unlike a server-reported task
    timeout this says nothing definitive about the task itself (the
    host may simply have gone silent), so a *stolen* dispatch discards
    it while a primary dispatch still resolves with it.
    """

    def __init__(self, result: ResultTuple) -> None:
        super().__init__(result[2])
        self.result = result


class RemoteBackend(ExecutorBackend):
    """Dispatch tasks to a fleet of ``repro.serve`` daemons.

    Depot-style scheduling: hosts form a ring walked round-robin; a host
    that refuses connections is cooled down and skipped until its
    ``down_cooldown`` elapses (every host gets another chance once all
    are cooling).  A dispatch that cannot reach *any* host resolves to a
    transient failure, so the scheduler's :class:`~.resilience
    .RetryPolicy` backs off and redrives it — by which time a host may be
    back.  Stragglers are *stolen*: a watchdog duplicates a task that has
    been in flight longer than ``steal_after`` seconds onto a second
    host, and the first terminal result wins (tasks are deterministic and
    store writes canonical, so duplicate execution is harmless).

    The backend never raises out of :meth:`submit` and is therefore not
    ``recoverable`` — host failure is handled inside the dispatch path,
    not by the scheduler's pool-rebuild machinery.

    Parameters
    ----------
    workers:
        Worker daemon addresses (``host:port`` or unix-socket paths).
    config:
        The run's experiment config; its salt hash is attached to every
        dispatch so a daemon serving a different configuration rejects
        the task instead of silently computing the wrong thing.
    parallelism:
        Concurrent dispatches (defaults to 2 per host).
    steal_after:
        Straggler threshold in seconds (``None`` disables stealing).
    request_timeout:
        Socket timeout of one dispatch when the task carries no deadline.
    down_cooldown:
        Seconds a connection-refusing host is skipped in the ring.
    """

    name = "remote"
    preemptive = False
    recoverable = False

    def __init__(self, workers: Sequence[str], config: Any, *,
                 parallelism: Optional[int] = None,
                 steal_after: Optional[float] = 30.0,
                 request_timeout: float = 3600.0,
                 down_cooldown: float = 5.0) -> None:
        hosts = [str(worker).strip() for worker in workers
                 if str(worker).strip()]
        if not hosts:
            raise ValueError("remote backend needs at least one worker "
                             "address (host:port)")
        self.hosts = hosts
        self.salt_hash = compute_salt_hash(config)
        self.parallelism = parallelism or max(2 * len(hosts), 2)
        self.steal_after = steal_after
        self.request_timeout = request_timeout
        self.down_cooldown = down_cooldown
        self._lock = threading.Lock()
        self._ring = 0
        self._down: Dict[str, float] = {}       # host -> monotonic retry time
        self._threads: Optional[ThreadPoolExecutor] = None
        self._watchdog: Optional[threading.Thread] = None
        self._inflight: Set[_Dispatch] = set()
        self._workers_by_future: Dict[Any, str] = {}
        self._counters = {"dispatches": 0, "failovers": 0, "steals": 0,
                          "host_failures": 0, "remote_hits": 0}
        self._closed = threading.Event()
        self._open_sockets: Set[Any] = set()

    # -------------------------------------------------------------- #
    # Ring management
    # -------------------------------------------------------------- #
    def _healthy_hosts(self) -> List[str]:
        now = time.monotonic()
        with self._lock:
            return [host for host in self.hosts
                    if self._down.get(host, 0.0) <= now]

    def _next_host(self, exclude: Set[str]) -> Optional[str]:
        candidates = [host for host in self._healthy_hosts()
                      if host not in exclude]
        if not candidates:
            # Everyone is cooling down (or excluded): give the cooled
            # hosts another chance rather than stalling the ring.
            candidates = [host for host in self.hosts
                          if host not in exclude]
        if not candidates:
            return None
        with self._lock:
            self._ring += 1
            return candidates[self._ring % len(candidates)]

    def _mark_down(self, host: str, error: Exception) -> None:
        with self._lock:
            self._down[host] = time.monotonic() + self.down_cooldown
            self._counters["host_failures"] += 1
        from ..telemetry import get_tracer
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("remote_host_down", host=host, error=repr(error),
                        cooldown_s=self.down_cooldown)

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def start(self) -> None:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.parallelism + 1,
                thread_name_prefix="remote-dispatch")
        if self.steal_after and self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watch_stragglers, name="remote-steal",
                daemon=True)
            self._watchdog.start()

    def shutdown(self, wait: bool = True) -> None:
        import socket

        self._closed.set()
        # Abort requests still on the wire: once the scheduler is done
        # with the backend their results are unneeded, and a half-dead
        # host (accepted connection, no answer) must not pin shutdown
        # for up to ``request_timeout`` seconds.
        with self._lock:
            lingering = list(self._open_sockets)
            self._open_sockets.clear()
        for sock in lingering:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._threads is not None:
            self._threads.shutdown(wait=wait, cancel_futures=not wait)
            self._threads = None

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    # -------------------------------------------------------------- #
    # Dispatch
    # -------------------------------------------------------------- #
    def submit(self, task: Task, attempt: int, deps: Mapping[str, Any],
               timeout_s: Optional[float] = None,
               key: Optional[str] = None) -> "Future[ResultTuple]":
        future: "Future[ResultTuple]" = Future()
        dispatch = _Dispatch(task, attempt, encode_deps(deps), timeout_s,
                             key, task.cacheable, future)
        with self._lock:
            self._counters["dispatches"] += 1
        self._threads.submit(self._dispatch, dispatch, steal=False)
        return future

    def worker_of(self, future: "Future[ResultTuple]") -> str:
        return self._workers_by_future.pop(future, self.name)

    def _resolve(self, dispatch: _Dispatch, result: ResultTuple,
                 worker: str, *, steal: bool, infra_failure: bool) -> None:
        """First terminal result wins; late duplicates are dropped.

        A *stolen* dispatch may only resolve the task with real execution
        outcomes — its own infrastructure failures (host unreachable) are
        discarded, because the primary dispatch is still in flight and
        may well succeed.
        """
        if steal and infra_failure:
            return
        with self._lock:
            if dispatch.future.done():
                return
            self._workers_by_future[dispatch.future] = worker
            self._inflight.discard(dispatch)
            dispatch.future.set_result(result)

    def _dispatch(self, dispatch: _Dispatch, steal: bool,
                  exclude: Optional[Set[str]] = None) -> None:
        if dispatch.future.done() or self._closed.is_set():
            return
        dispatch.started = time.monotonic()
        if not steal:
            with self._lock:
                self._inflight.add(dispatch)
        tried: Set[str] = set(exclude or ())
        while not dispatch.future.done() and not self._closed.is_set():
            host = self._next_host(tried)
            if host is None:
                message = (f"no worker daemon reachable for "
                           f"{dispatch.task.task_id!r} (tried "
                           f"{sorted(tried) or self.hosts})")
                self._resolve(
                    dispatch,
                    (dispatch.task.task_id, False, message, 0.0, None,
                     ["HostUnavailableError", "TransientTaskError",
                      "RuntimeError"]),
                    worker="unreachable", steal=steal, infra_failure=True)
                return
            if not steal and dispatch.primary_host is None:
                dispatch.primary_host = host
            tried.add(host)
            try:
                result = self._request(host, dispatch)
            except _HostDown as error:
                self._mark_down(host, error)
                with self._lock:
                    self._counters["failovers"] += 1
                continue
            except _RequestTimeout as error:
                # A silent host is indistinguishable from a slow task:
                # terminal for the primary dispatch, but a steal must not
                # overrule a primary that may still answer.
                self._resolve(dispatch, error.result, worker=host,
                              steal=steal, infra_failure=True)
                return
            self._resolve(dispatch, result, worker=host, steal=steal,
                          infra_failure=False)
            return

    def _request(self, host: str, dispatch: _Dispatch) -> ResultTuple:
        """One ``task`` op against one daemon.

        Connection-level failures raise :class:`_HostDown` (failover);
        everything else — success, a task that failed remotely, a request
        that timed out — is a terminal result for the scheduler to
        classify.
        """
        import socket

        from ..serve.client import Client, ServeError
        from ..serve.protocol import ProtocolError, parse_address

        task = dispatch.task
        timeout = dispatch.timeout_s or self.request_timeout
        try:
            parsed_host, port, unix_path = parse_address(host)
        except ValueError as error:
            raise _HostDown(error) from None
        address: Any = unix_path if unix_path else (parsed_host, port)
        client = Client(address, timeout=timeout)
        message = {"op": "task", "task_id": task.task_id, "kind": task.kind,
                   "params": dict(task.params), "attempt": dispatch.attempt,
                   "deps": dispatch.deps_blob, "key": dispatch.key,
                   "cacheable": dispatch.cacheable, "salt": self.salt_hash,
                   "timeout": dispatch.timeout_s}
        started = time.perf_counter()
        tracked: List[Any] = []

        def _register(sock: Any) -> None:
            # Shutdown aborts whatever is registered here, so a blocked
            # recv can never outlive the backend (see :meth:`shutdown`).
            tracked.append(sock)
            with self._lock:
                self._open_sockets.add(sock)

        try:
            try:
                response = client.request(message, on_socket=_register)
            finally:
                with self._lock:
                    for sock in tracked:
                        self._open_sockets.discard(sock)
        except ServeError as error:
            response = error.response
            error_types = response.get("error_types") or ["RemoteTaskError"]
            return (task.task_id, False,
                    str(response.get("error", "remote task failed")),
                    float(response.get("elapsed") or 0.0), None,
                    list(error_types))
        except socket.timeout:
            message_text = (f"remote task {task.task_id!r} on {host} "
                            f"exceeded its {timeout:.1f}s deadline")
            raise _RequestTimeout(
                (task.task_id, False, message_text,
                 time.perf_counter() - started, None,
                 error_type_names(TaskTimeoutError(message_text)))) from None
        except (ConnectionError, ProtocolError, OSError) as error:
            raise _HostDown(error) from None
        if response.get("hit"):
            with self._lock:
                self._counters["remote_hits"] += 1
        try:
            payload = pickle.loads(base64.b64decode(response["blob"]))
        except (KeyError, ValueError, pickle.UnpicklingError, EOFError) \
                as error:
            return (task.task_id, False,
                    f"undecodable remote payload from {host}: {error!r}",
                    time.perf_counter() - started, None,
                    ["RemotePayloadError", "TransientTaskError",
                     "RuntimeError"])
        return (task.task_id, True, payload,
                float(response.get("elapsed") or 0.0),
                response.get("stats"), None)

    # -------------------------------------------------------------- #
    # Work-stealing watchdog
    # -------------------------------------------------------------- #
    def _watch_stragglers(self) -> None:
        interval = max(min(self.steal_after / 4.0, 0.5), 0.05)
        while not self._closed.wait(interval):
            now = time.monotonic()
            with self._lock:
                stragglers = [d for d in self._inflight
                              if not d.stolen and d.started is not None
                              and now - d.started >= self.steal_after]
            if not stragglers:
                continue
            healthy = self._healthy_hosts()
            for dispatch in stragglers:
                if dispatch.future.done():
                    continue
                # Steal only when another host can plausibly do better:
                # either a second healthy host exists, or the straggler's
                # own primary has since been marked down (its socket may
                # never answer — re-running elsewhere is the only rescue).
                primary_down = (dispatch.primary_host is not None
                                and dispatch.primary_host not in healthy)
                if len(healthy) < 2 and not primary_down:
                    continue
                dispatch.stolen = True
                with self._lock:
                    self._counters["steals"] += 1
                exclude = ({dispatch.primary_host}
                           if dispatch.primary_host else set())
                from ..telemetry import get_tracer
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.emit("remote_steal",
                                task_id=dispatch.task.task_id,
                                primary=dispatch.primary_host,
                                inflight_s=now - (dispatch.started or now))
                if self._threads is not None:
                    self._threads.submit(self._dispatch, dispatch,
                                         steal=True, exclude=exclude)


# ---------------------------------------------------------------------- #
# Factory
# ---------------------------------------------------------------------- #
def compute_salt_hash(config: Any) -> str:
    """Content hash of the run's full config/compute-policy salt.

    Attached to every remote dispatch and checked by the daemon, so a
    fleet member running a different configuration rejects work instead
    of computing (and caching) the wrong thing.
    """
    from .hashing import content_hash
    from .scheduler import config_salt
    return content_hash(config_salt(config))


def make_backend(spec: Any, *, config: Any, jobs: int = 1,
                 workers: Optional[Sequence[str]] = None,
                 context: Any = None, faults: Optional[FaultPlan] = None,
                 trace_path: Optional[str] = None,
                 steal_after: Optional[float] = 30.0) -> ExecutorBackend:
    """Build an executor backend from a name (or pass one through).

    ``auto`` (or ``None``) preserves the historical behaviour: serial for
    ``jobs == 1``, the local pool otherwise.  ``remote`` requires
    ``workers`` — the daemon addresses of the fleet.
    """
    if isinstance(spec, ExecutorBackend):
        return spec
    name = (spec or "auto").lower() if isinstance(spec, str) or spec is None \
        else spec
    if name == "auto":
        name = "serial" if jobs == 1 else "local"
    if name == "serial":
        return SerialBackend(config, context=context, faults=faults)
    if name == "local":
        return LocalPoolBackend(config, jobs=jobs, faults=faults,
                                trace_path=trace_path)
    if name == "remote":
        if not workers:
            raise ValueError("--backend remote requires worker addresses "
                             "(--workers host:port,host:port,...)")
        worker_list = list(workers)
        return RemoteBackend(worker_list, config,
                             parallelism=max(jobs, len(worker_list)),
                             steal_after=steal_after)
    raise ValueError(f"unknown executor backend {spec!r}; expected one of "
                     f"{BACKEND_NAMES}")


__all__ = [
    "BACKEND_NAMES",
    "ExecutorBackend",
    "LocalPoolBackend",
    "RemoteBackend",
    "SerialBackend",
    "SerialRunner",
    "compute_salt_hash",
    "decode_deps",
    "encode_deps",
    "make_backend",
    "pool_mp_context",
    "terminate_pool",
]
