"""Run bookkeeping and progress reporting for pipeline executions."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

#: Terminal task states.
RAN = "ran"
CACHED = "cached"
FAILED = "failed"
SKIPPED = "skipped"


@dataclass
class TaskRecord:
    """What happened to one task during a run."""

    task_id: str
    kind: str
    status: str                      # one of RAN / CACHED / FAILED / SKIPPED
    elapsed: float = 0.0
    error: Optional[str] = None      # traceback text for FAILED tasks
    key: Optional[str] = None        # result-store key (content fingerprint)


@dataclass
class RunReport:
    """Aggregate outcome of one pipeline run."""

    records: List[TaskRecord] = field(default_factory=list)
    wall_time: float = 0.0
    jobs: int = 1

    def add(self, record: TaskRecord) -> TaskRecord:
        self.records.append(record)
        return record

    def by_status(self) -> Dict[str, List[TaskRecord]]:
        grouped: Dict[str, List[TaskRecord]] = {RAN: [], CACHED: [],
                                                FAILED: [], SKIPPED: []}
        for record in self.records:
            grouped.setdefault(record.status, []).append(record)
        return grouped

    def count(self, status: str) -> int:
        return sum(1 for record in self.records if record.status == status)

    @property
    def succeeded(self) -> bool:
        return self.count(FAILED) == 0 and self.count(SKIPPED) == 0

    def failures(self) -> List[TaskRecord]:
        return [record for record in self.records if record.status == FAILED]

    def summary(self) -> str:
        """One-line human summary, e.g. ``18 tasks: 12 ran, 6 cached``."""
        detail = ", ".join(f"{self.count(status)} {status}"
                           for status in (RAN, CACHED, FAILED, SKIPPED)
                           if self.count(status))
        return f"{len(self.records)} tasks: {detail or 'nothing to do'} " \
               f"in {self.wall_time:.1f}s (jobs={self.jobs})"


class ProgressReporter:
    """Prints one status line per completed task.

    The scheduler calls :meth:`task_done` from the main process as results
    arrive, so output order reflects completion order, not submission order.
    """

    _MARKS = {RAN: "+", CACHED: "=", FAILED: "!", SKIPPED: "-"}

    def __init__(self, total: int, stream: Optional[TextIO] = None,
                 enabled: bool = True) -> None:
        self.total = total
        self.stream = stream or sys.stdout
        self.enabled = enabled
        self.done = 0

    def task_done(self, record: TaskRecord) -> None:
        self.done += 1
        if not self.enabled:
            return
        mark = self._MARKS.get(record.status, "?")
        line = (f"[{self.done:3d}/{self.total}] {mark} {record.status:<7s} "
                f"{record.task_id}")
        if record.status == RAN:
            line += f" ({record.elapsed:.1f}s)"
        print(line, file=self.stream, flush=True)
        if record.status == FAILED and record.error:
            indented = "\n".join(f"    {l}" for l in record.error.splitlines())
            print(indented, file=self.stream, flush=True)


__all__ = ["TaskRecord", "RunReport", "ProgressReporter",
           "RAN", "CACHED", "FAILED", "SKIPPED"]
