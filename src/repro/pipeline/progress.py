"""Run bookkeeping and progress reporting for pipeline executions."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO

#: Terminal task states.
RAN = "ran"
CACHED = "cached"
FAILED = "failed"
SKIPPED = "skipped"


@dataclass
class TaskRecord:
    """What happened to one task during a run."""

    task_id: str
    kind: str
    status: str                      # one of RAN / CACHED / FAILED / SKIPPED
    elapsed: float = 0.0
    error: Optional[str] = None      # traceback text for FAILED tasks
    key: Optional[str] = None        # result-store key (content fingerprint)
    stats: Optional[Dict[str, Any]] = None  # telemetry: cache/attack counters
    attempts: int = 1                # execution attempts consumed (retries + 1)
    worker: Optional[str] = None     # executing worker (remote host, "serial")


@dataclass
class RunReport:
    """Aggregate outcome of one pipeline run."""

    records: List[TaskRecord] = field(default_factory=list)
    wall_time: float = 0.0
    jobs: int = 1
    backend: Optional[str] = None  # executor backend (serial/local/remote)
    store_stats: Optional[Dict[str, Any]] = None  # ResultStore.session_stats()
    # Backend-level tallies (remote steals/failovers; empty for local runs).
    backend_stats: Optional[Dict[str, int]] = None
    # Resilience rollups (see repro.pipeline.resilience).
    retries: int = 0            # transient-failure retries across all tasks
    timeouts: int = 0           # attempts killed at their deadline
    pool_rebuilds: int = 0      # broken worker pools rebuilt mid-run
    degraded: bool = False      # pool kept dying; finished in-process serial

    def add(self, record: TaskRecord) -> TaskRecord:
        self.records.append(record)
        return record

    def by_status(self) -> Dict[str, List[TaskRecord]]:
        grouped: Dict[str, List[TaskRecord]] = {RAN: [], CACHED: [],
                                                FAILED: [], SKIPPED: []}
        for record in self.records:
            grouped.setdefault(record.status, []).append(record)
        return grouped

    def count(self, status: str) -> int:
        return sum(1 for record in self.records if record.status == status)

    @property
    def succeeded(self) -> bool:
        return self.count(FAILED) == 0 and self.count(SKIPPED) == 0

    def failures(self) -> List[TaskRecord]:
        return [record for record in self.records if record.status == FAILED]

    def host_breakdown(self) -> Dict[str, int]:
        """Executed-task counts per worker label (remote host breakdown)."""
        hosts: Dict[str, int] = {}
        for record in self.records:
            if record.worker and record.status in (RAN, FAILED):
                hosts[record.worker] = hosts.get(record.worker, 0) + 1
        return hosts

    def cache_stats(self) -> Dict[str, int]:
        """Neighbourhood-cache counters summed over all task records."""
        totals: Dict[str, int] = {"exact_hits": 0, "stale_hits": 0,
                                  "misses": 0, "tree_hits": 0,
                                  "attacks": 0, "attack_steps": 0}
        for record in self.records:
            if not record.stats:
                continue
            for name in totals:
                value = record.stats.get(name)
                if isinstance(value, (int, float)):
                    totals[name] += int(value)
        return totals

    def summary(self) -> str:
        """One-line human summary, e.g. ``18 tasks: 12 ran, 6 cached``."""
        detail = ", ".join(f"{self.count(status)} {status}"
                           for status in (RAN, CACHED, FAILED, SKIPPED)
                           if self.count(status))
        mode = f"jobs={self.jobs}"
        if self.backend and self.backend not in ("serial", "local"):
            mode += f", backend={self.backend}"
        line = f"{len(self.records)} tasks: {detail or 'nothing to do'} " \
               f"in {self.wall_time:.1f}s ({mode})"
        if self.backend == "remote":
            hosts = self.host_breakdown()
            if hosts:
                line += "; hosts " + ", ".join(
                    f"{host}:{count}"
                    for host, count in sorted(hosts.items()))
        cache = self.cache_stats()
        lookups = cache["exact_hits"] + cache["stale_hits"] + cache["misses"]
        if lookups:
            hits = cache["exact_hits"] + cache["stale_hits"]
            line += (f"; nbr-cache {hits}/{lookups} hits "
                     f"({100.0 * hits / lookups:.0f}%)")
        if self.store_stats:
            line += (f"; store {self.store_stats.get('hits', 0)} hits / "
                     f"{self.store_stats.get('misses', 0)} misses")
            if self.store_stats.get("quarantined"):
                line += (f" / {self.store_stats['quarantined']} quarantined")
        resilience = []
        if self.retries:
            resilience.append(f"{self.retries} retries")
        if self.timeouts:
            resilience.append(f"{self.timeouts} timeouts")
        if self.pool_rebuilds:
            resilience.append(f"{self.pool_rebuilds} pool rebuilds")
        if resilience:
            line += "; " + ", ".join(resilience)
        if self.degraded:
            line += " (degraded to serial)"
        return line


class ProgressReporter:
    """Prints one status line per completed task.

    The scheduler calls :meth:`task_done` from the main process as results
    arrive, so output order reflects completion order, not submission order.
    """

    _MARKS = {RAN: "+", CACHED: "=", FAILED: "!", SKIPPED: "-"}

    def __init__(self, total: int, stream: Optional[TextIO] = None,
                 enabled: bool = True) -> None:
        self.total = total
        self.stream = stream or sys.stdout
        self.enabled = enabled
        self.done = 0
        # When the stream is not a terminal (piped logs, CI), stay on plain
        # line-buffered output: one full line per update, flushed immediately,
        # so a follower (``tail -f``) never sees a torn or stalled line.
        try:
            self.is_tty = bool(self.stream.isatty())
        except (AttributeError, ValueError, OSError):
            self.is_tty = False
        self._flush_ok = True

    def _emit(self, text: str) -> None:
        """Write one line and flush; a dead stream disables future flushes."""
        try:
            self.stream.write(text + "\n")
            if self._flush_ok:
                self.stream.flush()
        except (ValueError, OSError):
            # Closed/broken pipe: progress output is best-effort, never fatal.
            self._flush_ok = False

    def task_done(self, record: TaskRecord) -> None:
        self.done += 1
        if not self.enabled:
            return
        mark = self._MARKS.get(record.status, "?")
        line = (f"[{self.done:3d}/{self.total}] {mark} {record.status:<7s} "
                f"{record.task_id}")
        if record.status == RAN:
            line += f" ({record.elapsed:.1f}s)"
        if record.attempts > 1:
            line += f" [attempt {record.attempts}]"
        self._emit(line)
        if record.status == FAILED and record.error:
            self._emit("\n".join(f"    {l}"
                                 for l in record.error.splitlines()))

    def task_retry(self, task_id: str, attempt: int, max_attempts: int,
                   error: str, delay: float) -> None:
        """One line per retry, so a stuttering run is visible as it happens."""
        if not self.enabled:
            return
        self._emit(f"[{self.done:3d}/{self.total}] ~ retry   {task_id} "
                   f"(attempt {attempt}/{max_attempts} failed: {error}; "
                   f"backoff {delay:.2f}s)")

    def note(self, message: str) -> None:
        """Free-form run-level message (pool rebuilds, degradation)."""
        if self.enabled:
            self._emit(f"[{self.done:3d}/{self.total}] * {message}")


__all__ = ["TaskRecord", "RunReport", "ProgressReporter",
           "RAN", "CACHED", "FAILED", "SKIPPED"]
