"""Fault-tolerant execution policy: retries, timeouts, fault injection.

The scheduler (:mod:`.scheduler`) treats failures as classified events
rather than terminal facts:

* a :class:`RetryPolicy` decides how many attempts a task gets, how long
  to back off between them (exponential, with a *deterministic* per
  ``(task_id, attempt)`` jitter so re-runs of the same faulted workload
  replay the same schedule), whether tasks carry wall-clock deadlines and
  how many times a broken worker pool may be rebuilt before the run
  degrades to in-process serial execution;
* :func:`classify_error` splits failures into *transient* (worth
  retrying: a broken process pool, an OS-level error, a timeout, an
  injected fault) and *permanent* (a deterministic executor exception —
  retrying would only repeat it, so these fail fast after one attempt);
* a :class:`FaultPlan` injects failures deterministically — crash the
  worker on the first N executions of a task, hang it, corrupt the
  payload the store writes, or fail with a transient error K times and
  then succeed.  It is both the test harness for the whole resilience
  layer and a user-facing chaos knob (``--fault-plan`` /
  ``REPRO_FAULT_PLAN``).

Nothing here touches the content-addressed store salt: retries re-run
pure tasks, so a run that retried produces bit-for-bit the same payloads
as an unfaulted run.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

#: Classification labels returned by :func:`classify_error`.
TRANSIENT = "transient"
PERMANENT = "permanent"

#: Exception-class names (matched against the whole MRO, so subclasses
#: count) whose failures are worth retrying.  ``OSError`` covers the
#: connection/timeout/broken-pipe family; ``BrokenProcessPool`` (a
#: ``BrokenExecutor``) is how a killed worker surfaces in the parent;
#: ``EOFError`` is a torn multiprocessing pipe; ``TransientTaskError`` is
#: the explicit opt-in base class (fault injection and infrastructure
#: wrappers below derive from it).
TRANSIENT_ERROR_TYPES = frozenset({
    "BrokenProcessPool",
    "BrokenExecutor",
    "EOFError",
    "OSError",
    "TimeoutError",
    "TransientTaskError",
})


class TransientTaskError(RuntimeError):
    """Base class for failures that are safe to retry.

    Executors may raise (or subclass) this to mark a failure as
    recoverable — e.g. a remote fetch that lost its connection — without
    the classifier having to know about the concrete error.
    """


class InjectedFault(TransientTaskError):
    """A failure produced by a :class:`FaultPlan` ``fail`` clause."""


class WorkerCrashError(TransientTaskError):
    """A worker process died while executing a task.

    Raised in-process when a ``crash`` fault fires in serial execution
    (killing the scheduler itself would be absurd), and used as the
    classification marker when a pool breaks under a task.
    """


class TaskTimeoutError(TransientTaskError):
    """A task exceeded its wall-clock deadline and its worker was killed."""


def error_type_names(error: BaseException) -> List[str]:
    """The exception's class names along its MRO (most specific first).

    Workers ship this list back to the scheduler instead of the exception
    object (tracebacks pickle reliably, arbitrary exceptions do not), so
    the parent can classify transient vs permanent without string-matching
    formatted tracebacks.
    """
    return [cls.__name__ for cls in type(error).__mro__
            if cls not in (object, BaseException)]


def classify_error(error_types: Optional[Sequence[str]]) -> str:
    """``TRANSIENT`` or ``PERMANENT`` for an exception's MRO name list."""
    if error_types and TRANSIENT_ERROR_TYPES.intersection(error_types):
        return TRANSIENT
    return PERMANENT


# ---------------------------------------------------------------------- #
# Retry policy
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """How failures are retried, bounded, and recovered from.

    Attributes
    ----------
    max_attempts:
        Total execution attempts per task (1 = never retry).  Only
        *transient* failures consume the extra budget; permanent failures
        fail fast after the first attempt regardless.
    backoff_base / backoff_factor / backoff_max:
        Attempt ``k`` (1-based) sleeps ``base * factor**(k-1)`` seconds
        before attempt ``k+1``, capped at ``backoff_max``.
    jitter:
        Relative jitter amplitude: the delay is scaled by a factor in
        ``[1 - jitter, 1 + jitter]`` derived deterministically from
        ``(task_id, attempt)``, so concurrent retries de-synchronise
        without making runs irreproducible.
    task_timeout:
        Default per-task wall-clock deadline in seconds (``None`` = no
        deadline).  A :class:`~.graph.Task` may override it per task.
        Enforced by the parallel event loop; serial in-process execution
        cannot be preempted and ignores it.
    max_pool_rebuilds:
        How many times a broken worker pool is rebuilt before the
        scheduler degrades the remainder of the run to in-process serial
        execution (so a run always makes forward progress).
    """

    max_attempts: int = 2
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.25
    task_timeout: Optional[float] = None
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")

    def retryable(self, attempt: int) -> bool:
        """Whether another attempt remains after ``attempt`` failed."""
        return attempt < self.max_attempts

    def delay(self, task_id: str, attempt: int) -> float:
        """Backoff before the attempt following ``attempt`` (1-based).

        Deterministic: the jitter factor is derived from a hash of
        ``(task_id, attempt)``, not from a live RNG, so a re-run of the
        same faulted workload backs off identically.

        ``backoff_max`` caps the *final* delay: jitter is applied to the
        exponential term first and the cap last, so the documented bound
        really bounds the sleep (capping before jittering would let the
        actual delay exceed it by up to ``jitter``).
        """
        raw = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.jitter:
            digest = hashlib.sha256(f"{task_id}:{attempt}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0, 1)
            raw *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return min(raw, self.backoff_max)


# ---------------------------------------------------------------------- #
# Deterministic fault injection
# ---------------------------------------------------------------------- #
_FAULT_MODES = ("crash", "hang", "fail", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One injection clause of a :class:`FaultPlan`.

    Attributes
    ----------
    task:
        ``fnmatch`` pattern over task ids (``table3/*``, ``*``, ...).
    mode:
        ``crash`` — kill the worker process mid-task (serial execution
        raises :class:`WorkerCrashError` instead); ``hang`` — sleep for
        ``seconds`` before executing (long enough to trip a task
        timeout); ``fail`` — raise :class:`InjectedFault`, a transient
        error; ``corrupt`` — flip bytes in the payload the result store
        just wrote, so integrity checking sees a checksum mismatch on
        the next read.
    times:
        Inject on execution attempts ``1..times`` of each matching task
        (``fail`` with ``times=K`` fails K times then succeeds; ``crash``
        with ``times=N`` crashes the first N attempts).
    seconds:
        Sleep duration of ``hang``.
    """

    task: str
    mode: str
    times: int = 1
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in _FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; "
                             f"expected one of {_FAULT_MODES}")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")

    def matches(self, task_id: str, attempt: int) -> bool:
        return attempt <= self.times and fnmatch.fnmatchcase(task_id, self.task)


class FaultPlan:
    """A deterministic set of :class:`FaultSpec` clauses.

    Text form (CLI ``--fault-plan`` / env ``REPRO_FAULT_PLAN``): clauses
    separated by ``,`` or ``;``, each ``PATTERN=MODE[:TIMES[:SECONDS]]``::

        table3/pct/unbounded=crash
        table3/*=fail:2,table3/resgcn/*=hang:1:20

    The plan crosses process boundaries as plain data
    (:meth:`as_specs` / :meth:`from_specs`) so pool initializers can
    rebuild it in every worker.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs = list(specs)
        self._corruptions: Dict[str, int] = {}   # task_id -> payloads corrupted

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.text()!r})"

    # ------------------------------------------------------------------ #
    # (De)serialisation
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        specs: List[FaultSpec] = []
        for clause in (text or "").replace(";", ",").split(","):
            clause = clause.strip()
            if not clause:
                continue
            pattern, _, spec_text = clause.partition("=")
            if not pattern or not spec_text:
                raise ValueError(
                    f"malformed fault clause {clause!r}; expected "
                    f"PATTERN=MODE[:TIMES[:SECONDS]]")
            parts = spec_text.split(":")
            mode = parts[0].strip().lower()
            try:
                times = int(parts[1]) if len(parts) > 1 else 1
                seconds = float(parts[2]) if len(parts) > 2 else 30.0
            except ValueError:
                raise ValueError(f"malformed fault clause {clause!r}: "
                                 f"TIMES must be an int, SECONDS a float") \
                    from None
            specs.append(FaultSpec(task=pattern.strip(), mode=mode,
                                   times=times, seconds=seconds))
        return cls(specs)

    def text(self) -> str:
        return ",".join(f"{s.task}={s.mode}:{s.times}:{s.seconds:g}"
                        for s in self.specs)

    def as_specs(self) -> List[Dict[str, Any]]:
        """Plain-data form, safe to ship through pool ``initargs``."""
        return [{"task": s.task, "mode": s.mode, "times": s.times,
                 "seconds": s.seconds} for s in self.specs]

    @classmethod
    def from_specs(cls, specs: Optional[Sequence[Dict[str, Any]]]
                   ) -> Optional["FaultPlan"]:
        if not specs:
            return None
        return cls([FaultSpec(**spec) for spec in specs])

    # ------------------------------------------------------------------ #
    # Injection
    # ------------------------------------------------------------------ #
    def inject(self, task_id: str, attempt: int, *,
               allow_exit: bool = False) -> None:
        """Fire any execution-side fault for ``(task_id, attempt)``.

        Called at the top of task execution.  ``allow_exit`` is True only
        inside pool worker processes, where a ``crash`` fault may really
        kill the process (``os._exit``, so no cleanup handlers soften the
        blow — exactly like an OOM kill).  In-process execution converts
        ``crash`` into a :class:`WorkerCrashError` instead.
        """
        for spec in self.specs:
            if not spec.matches(task_id, attempt):
                continue
            if spec.mode == "crash":
                if allow_exit:
                    os._exit(99)
                raise WorkerCrashError(
                    f"injected worker crash on {task_id!r} "
                    f"(attempt {attempt})")
            if spec.mode == "hang":
                time.sleep(spec.seconds)
            elif spec.mode == "fail":
                raise InjectedFault(
                    f"injected transient failure on {task_id!r} "
                    f"(attempt {attempt}/{spec.times})")
            # "corrupt" acts on the store write, not on execution.

    def take_corruption(self, task_id: str) -> bool:
        """Whether the payload just written for ``task_id`` should be
        corrupted (consumes one of the clause's ``times`` injections)."""
        used = self._corruptions.get(task_id, 0)
        for spec in self.specs:
            if spec.mode == "corrupt" and spec.matches(task_id, used + 1):
                self._corruptions[task_id] = used + 1
                return True
        return False


def corrupt_payload_file(path: str) -> None:
    """Flip bytes in the middle of ``path`` (the ``corrupt`` fault body).

    Deliberately not atomic — this *is* the fault.  The file keeps its
    length, so only checksum verification (not a size check) catches it.
    """
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(size // 2)
        original = handle.read(1)
        handle.seek(size // 2)
        handle.write(bytes([original[0] ^ 0xFF]) if original else b"\xff")


__all__ = [
    "PERMANENT",
    "TRANSIENT",
    "TRANSIENT_ERROR_TYPES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "TaskTimeoutError",
    "TransientTaskError",
    "WorkerCrashError",
    "classify_error",
    "corrupt_payload_file",
    "error_type_names",
]
