"""Shared result store over HTTP: a stdlib daemon plus a client backend.

One :class:`StoreServer` fronts an on-disk
:class:`~repro.pipeline.store.ResultStore`; any number of schedulers,
``repro.serve`` daemons and ad-hoc scripts point a :class:`RemoteStore`
at it (``--store-url http://host:port``) and share one content-addressed
memoisation layer.  Sharing is safe by construction — every key carries
the full config/compute-policy salt — and payload bytes are canonical
(see :func:`~repro.pipeline.store.canonical_payload_bytes`), so whichever
fleet member computes a cell first stores exactly the bytes every other
member would have.

The protocol is plain HTTP/1.1 on the standard library only:

===========================  =================================================
``HEAD /entry/<key>``        existence probe (``200`` / ``404``)
``GET /entry/<key>``         payload bytes; ``X-Repro-Checksum`` header
``PUT /entry/<key>``         store payload bytes; metadata rides in the
                             ``X-Repro-Meta`` header (base64 JSON)
``DELETE /entry/<key>``      discard one entry
``GET /meta/<key>``          metadata sidecar as JSON
``GET /keys``                JSON list of stored keys
``GET /stats``               inventory + session counters
``POST /verify``             checksum audit (quarantines corrupt entries)
``POST /gc``                 LRU eviction; ``max_bytes`` / ``max_entries``
                             query parameters
``POST /corrupt/<key>``      chaos hook: flip payload bytes in place
===========================  =================================================

Integrity checking stays server-side where the bytes live: ``GET`` runs
the same verify-or-quarantine path as a local read, and the client
re-checks the transported bytes against the checksum header so a torn
proxy cannot serve damage silently.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .resilience import TransientTaskError, corrupt_payload_file
from .store import ResultStore, StoreBackend, canonical_payload_bytes

#: Metadata header: base64(JSON) keeps arbitrary text header-safe.
META_HEADER = "X-Repro-Meta"
CHECKSUM_HEADER = "X-Repro-Checksum"


class StoreUnavailableError(TransientTaskError):
    """The store daemon could not be reached (connection-level failure).

    Derives from :class:`~repro.pipeline.resilience.TransientTaskError`
    so a scheduler seeing one through a task failure retries it.
    """


# ---------------------------------------------------------------------- #
# Server
# ---------------------------------------------------------------------- #
class _StoreHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-store/1"

    # The daemon is a cache, not an access log.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def store(self) -> ResultStore:
        return self.server.result_store  # type: ignore[attr-defined]

    def _send(self, code: int, body: bytes,
              content_type: str = "application/json",
              headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_json(self, code: int, payload: Any) -> None:
        self._send(code, json.dumps(payload, default=str).encode("utf-8"))

    def _route(self) -> Tuple[str, str, Dict[str, List[str]]]:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        head = parts[0] if parts else ""
        rest = parts[1] if len(parts) > 1 else ""
        return head, rest, parse_qs(parsed.query)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # -------------------------------------------------------------- #
    def do_HEAD(self) -> None:  # noqa: N802
        head, key, _ = self._route()
        if head == "entry" and key:
            if self.store.contains(key, count=False):
                self._send(200, b"")
            else:
                self._send_json(404, {"error": "not found", "key": key})
        else:
            self._send_json(404, {"error": "unknown path"})

    def do_GET(self) -> None:  # noqa: N802
        head, key, _ = self._route()
        if head == "entry" and key:
            try:
                blob = self.store.get_bytes(key)
            except KeyError as error:
                self._send_json(404, {"error": str(error), "key": key})
                return
            checksum = "sha256:" + hashlib.sha256(blob).hexdigest()
            self._send(200, blob, content_type="application/octet-stream",
                       headers={CHECKSUM_HEADER: checksum})
        elif head == "meta" and key:
            meta = self.store.metadata(key)
            self._send_json(200 if meta else 404, meta)
        elif head == "keys":
            self._send_json(200, list(self.store.keys()))
        elif head == "stats":
            stats = self.store.stats()
            stats["session"] = self.store.session_stats()
            self._send_json(200, stats)
        elif head == "health":
            self._send_json(200, {"ok": True, "pid": os.getpid()})
        else:
            self._send_json(404, {"error": "unknown path"})

    def do_PUT(self) -> None:  # noqa: N802
        head, key, _ = self._route()
        if head != "entry" or not key:
            self._send_json(404, {"error": "unknown path"})
            return
        blob = self._read_body()
        metadata: Dict[str, Any] = {}
        header = self.headers.get(META_HEADER)
        if header:
            try:
                metadata = json.loads(base64.b64decode(header))
            except (ValueError, json.JSONDecodeError):
                self._send_json(400, {"error": "malformed metadata header"})
                return
        self.store.put_bytes(key, blob, metadata=metadata)
        self._send_json(200, {"stored": key, "bytes": len(blob)})

    def do_DELETE(self) -> None:  # noqa: N802
        head, key, _ = self._route()
        if head == "entry" and key:
            self._send_json(200, {"removed": self.store.discard(key)})
        else:
            self._send_json(404, {"error": "unknown path"})

    def do_POST(self) -> None:  # noqa: N802
        head, key, query = self._route()
        if head == "verify":
            self._send_json(200, self.store.verify())
        elif head == "gc":
            def _int(name: str) -> Optional[int]:
                values = query.get(name)
                return int(values[0]) if values else None
            try:
                summary = self.store.gc(max_bytes=_int("max_bytes"),
                                        max_entries=_int("max_entries"))
            except ValueError as error:
                self._send_json(400, {"error": str(error)})
                return
            self._send_json(200, summary)
        elif head == "corrupt" and key:
            try:
                corrupt_payload_file(self.store.payload_path(key))
            except OSError as error:
                self._send_json(404, {"error": str(error), "key": key})
                return
            self._send_json(200, {"corrupted": key})
        else:
            self._send_json(404, {"error": "unknown path"})


class StoreServer:
    """A shared result-store daemon over a directory.

    Standard library only (``ThreadingHTTPServer``): one thread per
    request over an on-disk :class:`ResultStore` whose writes are atomic,
    so concurrent writers — even of the same key — are safe.
    """

    def __init__(self, store: Any, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.store = store if isinstance(store, ResultStore) \
            else ResultStore(str(store))
        self._httpd = ThreadingHTTPServer((host, port), _StoreHandler)
        self._httpd.daemon_threads = True
        self._httpd.result_store = self.store  # type: ignore[attr-defined]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()


class StoreServerThread:
    """Run a :class:`StoreServer` on a background thread (tests, benches).

    ::

        with StoreServerThread(tmpdir) as url:
            store = RemoteStore(url)
    """

    def __init__(self, store: Any, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.server = StoreServer(store, host=host, port=port)
        self._thread: Optional[threading.Thread] = None

    def start(self) -> str:
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        name="repro-store", daemon=True)
        self._thread.start()
        return self.server.url

    def stop(self, timeout: float = 10.0) -> None:
        self.server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# ---------------------------------------------------------------------- #
# Client
# ---------------------------------------------------------------------- #
class RemoteStore(StoreBackend):
    """Client backend against a :class:`StoreServer` URL.

    One connection per request keeps the client trivially thread-safe (the
    scheduler's cache probes and the remote backend's dispatch threads all
    share one instance).  Connection-level failures raise
    :class:`StoreUnavailableError` — transient, so callers retry — while a
    missing or quarantined entry is an ordinary ``KeyError`` miss.
    """

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        parsed = urlparse(url)
        if parsed.scheme not in ("http", "https") or not parsed.hostname:
            raise ValueError(f"store URL {url!r} is not http(s)://host:port")
        self.url = url.rstrip("/")
        self.root = self.url          # duck-type ResultStore.root for display
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout
        self._session = {"hits": 0, "misses": 0, "quarantined": 0,
                         "bytes_read": 0, "bytes_written": 0}

    # -------------------------------------------------------------- #
    def _request(self, method: str, path: str, body: bytes = b"",
                 headers: Optional[Dict[str, str]] = None
                 ) -> Tuple[int, bytes, Dict[str, str]]:
        connection = HTTPConnection(self._host, self._port,
                                    timeout=self._timeout)
        try:
            connection.request(method, path, body=body or None,
                               headers=headers or {})
            response = connection.getresponse()
            payload = response.read()
            return (response.status, payload,
                    {name.title(): value
                     for name, value in response.getheaders()})
        except (OSError, ConnectionError) as error:
            raise StoreUnavailableError(
                f"store daemon {self.url} unreachable: {error}") from None
        finally:
            connection.close()

    @staticmethod
    def _json(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}

    # -------------------------------------------------------------- #
    def contains(self, key: str, count: bool = True) -> bool:
        status, _, _ = self._request("HEAD", f"/entry/{key}")
        present = status == 200
        if not present and count:
            self._session["misses"] += 1
        return present

    __contains__ = contains

    def get_bytes(self, key: str) -> bytes:
        status, blob, headers = self._request("GET", f"/entry/{key}")
        if status != 200:
            self._session["misses"] += 1
            if b"quarantined" in blob:
                self._session["quarantined"] += 1
            raise KeyError(f"{key} ({self._json(blob).get('error', status)})")
        expected = headers.get(CHECKSUM_HEADER.title())
        if expected and \
                "sha256:" + hashlib.sha256(blob).hexdigest() != expected:
            self._session["misses"] += 1
            raise KeyError(f"{key} (payload damaged in transit)")
        return blob

    def get(self, key: str) -> Any:
        import pickle
        blob = self.get_bytes(key)
        try:
            payload = pickle.loads(blob)
        except Exception as error:  # noqa: BLE001 — treat as a miss
            self._session["misses"] += 1
            raise KeyError(f"{key} (unpicklable payload: {error})") from None
        self._session["hits"] += 1
        self._session["bytes_read"] += len(blob)
        return payload

    def put(self, key: str, payload: Any,
            metadata: Optional[Dict[str, Any]] = None) -> str:
        return self.put_bytes(key, canonical_payload_bytes(payload),
                              metadata=metadata)

    def put_bytes(self, key: str, blob: bytes,
                  metadata: Optional[Dict[str, Any]] = None) -> str:
        headers = {"Content-Type": "application/octet-stream"}
        if metadata:
            headers[META_HEADER] = base64.b64encode(
                json.dumps(metadata, default=str).encode("utf-8")
            ).decode("ascii")
        status, body, _ = self._request("PUT", f"/entry/{key}", body=blob,
                                        headers=headers)
        if status != 200:
            raise StoreUnavailableError(
                f"store daemon {self.url} refused PUT {key}: "
                f"{self._json(body).get('error', status)}")
        self._session["bytes_written"] += len(blob)
        return f"{self.url}/entry/{key}"

    def metadata(self, key: str) -> Dict[str, Any]:
        status, body, _ = self._request("GET", f"/meta/{key}")
        return self._json(body) if status == 200 else {}

    def discard(self, key: str) -> bool:
        status, body, _ = self._request("DELETE", f"/entry/{key}")
        return status == 200 and bool(self._json(body).get("removed"))

    def keys(self) -> Iterator[str]:
        status, body, _ = self._request("GET", "/keys")
        if status != 200:
            return iter(())
        return iter(self._json(body) or [])

    def verify(self) -> Dict[str, Any]:
        status, body, _ = self._request("POST", "/verify")
        return self._json(body) if status == 200 else {}

    def gc(self, max_bytes: Optional[int] = None,
           max_entries: Optional[int] = None) -> Dict[str, Any]:
        query = "&".join(f"{name}={value}" for name, value in
                         (("max_bytes", max_bytes),
                          ("max_entries", max_entries)) if value is not None)
        status, body, _ = self._request("POST",
                                        "/gc" + (f"?{query}" if query else ""))
        summary = self._json(body)
        if status != 200:
            raise ValueError(summary.get("error", f"gc failed ({status})"))
        return summary

    def corrupt_entry(self, key: str) -> None:
        """Chaos hook: damage the stored payload bytes server-side."""
        self._request("POST", f"/corrupt/{key}")

    def stats(self) -> Dict[str, Any]:
        status, body, _ = self._request("GET", "/stats")
        stats = self._json(body) if status == 200 else {}
        stats["url"] = self.url
        return stats

    def session_stats(self) -> Dict[str, int]:
        return dict(self._session)

    def ping(self) -> bool:
        try:
            status, _, _ = self._request("GET", "/health")
        except StoreUnavailableError:
            return False
        return status == 200


__all__ = ["CHECKSUM_HEADER", "META_HEADER", "RemoteStore", "StoreServer",
           "StoreServerThread", "StoreUnavailableError"]
